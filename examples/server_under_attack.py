#!/usr/bin/env python3
"""A production server under a live BROP campaign.

The operational view the paper's evaluation implies but never plots:
legitimate clients keep hitting an Nginx-style forking server while an
attacker interleaves byte-by-byte probes.  Under SSP the campaign walks
through the canary in about a thousand probes and ends in remote code
execution; under P-SSP the same traffic pattern never converges — the
defender sees an elevated worker-crash rate (the paper's observable
symptom of a brute-force attempt) and nothing else.

Run:  python examples/server_under_attack.py
"""

from repro import Kernel, build, deploy
from repro.attacks import (
    CrashRateMonitor,
    ForkingServer,
    byte_by_byte_attack,
    frame_map,
)

#: Nginx-like request handler with the classic unchecked-read bug: the
#: recv buffer is 256 bytes but the handler accepts up to 1024.
VULNERABLE_SERVER = """
int handler(int n) {
    char request[256];
    char path[96];
    int len; int i; int j;
    len = read(0, request, 1024);
    i = 0;
    while (i < len && request[i] != ' ') { i = i + 1; }
    while (i < len && request[i] == ' ') { i = i + 1; }
    j = 0;
    while (i < len && request[i] != ' ' && j < 95) {
        path[j] = request[i];
        i = i + 1;
        j = j + 1;
    }
    path[j] = 0;
    puts(path);
    return 1;
}

int main() { return 0; }
"""


def campaign(scheme: str, seed: int = 2018) -> None:
    kernel = Kernel(seed)
    binary = build(VULNERABLE_SERVER, scheme, name="nginx")
    parent, _ = deploy(kernel, binary, scheme)
    # The defender's dashboard wraps the server: a crash-rate alarm.
    server = CrashRateMonitor(ForkingServer(kernel, parent),
                              window=50, threshold=0.5)
    frame = frame_map(binary, "handler", buffer="request")

    # Legitimate traffic baseline.
    legit_ok = 0
    for i in range(20):
        response = server.handle_request(f"GET /page{i} HTTP/1.1".encode())
        legit_ok += int(not response.crashed)

    # The attack campaign.
    report = byte_by_byte_attack(server, frame, max_trials=5000)

    # Service health after the campaign: the parent still forks workers.
    post_ok = 0
    for i in range(20):
        response = server.handle_request(f"GET /after{i} HTTP/1.1".encode())
        post_ok += int(not response.crashed)

    stats = server.stats()
    print(f"--- {scheme} ---")
    print(f"legit traffic before attack: {legit_ok}/20 served")
    print(f"attack probes:               {report.trials} "
          f"(window crash rate {stats.window_crash_rate:.1%})")
    if server.alarmed_at is not None:
        print(f"DEFENDER ALARM tripped at request #{server.alarmed_at}")
    if report.success:
        print(f"OUTCOME: canary recovered ({report.recovered.hex()}) — "
              f"server compromised")
    else:
        print(f"OUTCOME: attack stalled after {len(report.recovered)} "
              f"'recovered' bytes — defence held")
    print(f"legit traffic after attack:  {post_ok}/20 served")
    print()


def main() -> None:
    print("Byte-by-byte campaign against a vulnerable Nginx-style server\n")
    campaign("ssp")
    campaign("pssp")
    print("Either way the *service* stays up (crashed workers are")
    print("replaced) — the difference is whether the attacker walks away")
    print("with the canary. Watch your worker-crash-rate dashboards.")


if __name__ == "__main__":
    main()
