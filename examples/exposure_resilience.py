#!/usr/bin/env python3
"""P-SSP-OWF: surviving canary exposure (the paper's §IV-C).

Scenario: one function has a memory-disclosure bug that leaks its own
stack canary.  The attacker replays the leaked material while overflowing
a *different* function, redirecting its return address to a ``win``
gadget.

* SSP / P-SSP / P-SSP-NT: one leaked canary (pair) unlocks every frame in
  the process — the single point of failure.
* P-SSP-OWF: the canary is AES(key, rdtsc || return-address); material
  leaked from one frame never verifies in another.
* P-SSP-GB: the buffer-resident half of the pair is not on the stack, so
  the attacker cannot compose a consistent pair for the target frame.

Run:  python examples/exposure_resilience.py
"""

from repro import Kernel, build, deploy
from repro.attacks import leak_and_replay

VICTIM = """
int win() {
    puts("PWNED");
    return 1;
}

int leaky(int n) {
    char buf[32];
    buf[0] = 1;            // imagine a format-string bug printing the
    return buf[0];         // canary words of this very frame
}

int target(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}

int main() { return 0; }
"""


def main() -> None:
    print(f"{'scheme':10s} {'hijacked':>9s} {'detected':>9s}   leaked material")
    print("-" * 72)
    for scheme in ("ssp", "pssp", "pssp-nt", "pssp-owf", "pssp-gb"):
        kernel = Kernel(seed=1806)
        binary = build(VICTIM, scheme, name="victim")
        process, _ = deploy(kernel, binary, scheme)
        report = leak_and_replay(kernel, process, binary)
        material = ", ".join(
            f"[rbp-{slot}]={value:#x}" for slot, value in sorted(report.leaked.items())
        )
        print(f"{scheme:10s} {str(report.hijacked):>9s} "
              f"{str(report.detected):>9s}   {material[:60]}")
    print()
    print("Only the one-way-function extension (and the global-buffer")
    print("variant) confine the damage of a leaked canary to its own frame.")


if __name__ == "__main__":
    main()
