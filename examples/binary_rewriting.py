#!/usr/bin/env python3
"""Static binary rewriting: upgrade a legacy SSP binary to P-SSP.

Mirrors the paper's §V-C/§V-D deployment path:

1. Compile a program the "legacy" way (SSP — the distro default).
2. Rewrite it in place: prologues retarget the TLS shadow canary;
   epilogues pass the packed canary to the modified ``__stack_chk_fail``
   — all without moving a single byte (address-layout preservation).
3. For a statically linked binary, hook the embedded ``fork`` and
   ``__stack_chk_fail`` Dyninst-style and append the new code section.

Run:  python examples/binary_rewriting.py
"""

from repro import Kernel, deploy
from repro.binfmt.diffing import diff_binaries
from repro.binfmt.elf import STATIC, merge_binaries
from repro.compiler.codegen import compile_source
from repro.libc.glibc_sim import build_static_glibc
from repro.rewriter import instrument_binary, instrument_static_binary

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}

int main() { return 0; }
"""


def show_tail(binary, function, count=12, title=""):
    print(title)
    body = binary.function(function).body
    for instruction in body[-count:]:
        print(f"    {instruction}")
    print()


def dynamic_path():
    print("=" * 64)
    print("dynamic binary: layout-preserving rewrite")
    print("=" * 64)
    legacy = compile_source(VICTIM, protection="ssp", name="legacy")
    rewritten = instrument_binary(legacy)

    print(f"legacy size:    {legacy.total_size()} bytes")
    print(f"rewritten size: {rewritten.total_size()} bytes "
          f"(expansion: {rewritten.total_size() - legacy.total_size()})")
    show_tail(legacy, "handler", title="SSP epilogue (before):")
    show_tail(rewritten, "handler", title="P-SSP epilogue (after — Code 6):")
    print("structural diff:")
    print(diff_binaries(legacy, rewritten).render())
    print()

    # Prove it still works and still protects.
    kernel = Kernel(99)
    process, _ = deploy(kernel, rewritten, "pssp-binary")
    process.feed_stdin(b"benign")
    print("benign run:", process.call("handler", (6,)).state)
    process2, _ = deploy(kernel, rewritten, "pssp-binary")
    process2.feed_stdin(b"A" * 200)
    result = process2.call("handler", (200,))
    print("overflow run:", result.state, "-", result.crash)
    print()


def static_path():
    print("=" * 64)
    print("static binary: Dyninst-style hooks + new section")
    print("=" * 64)
    legacy = merge_binaries(
        compile_source(VICTIM, protection="ssp", name="legacy-static",
                       link_type=STATIC),
        build_static_glibc(),
        name="legacy-static",
    )
    instrumented = instrument_static_binary(legacy)
    growth = instrumented.total_size() - legacy.total_size()
    print(f"static size: {legacy.total_size()} -> {instrumented.total_size()} "
          f"bytes (+{growth}, the new section)")
    print("hooked fork:")
    for instruction in instrumented.function("fork").body[:2]:
        print(f"    {instruction}")
    print("new-section functions:",
          [n for n in instrumented.functions if n.startswith("__pssp")])

    kernel = Kernel(100)
    process, _ = deploy(kernel, instrumented, "pssp-binary-static")
    process.feed_stdin(b"A" * 200)
    result = process.call("handler", (200,))
    print("overflow run:", result.state, "-", result.crash)


def main():
    dynamic_path()
    static_path()


if __name__ == "__main__":
    main()
