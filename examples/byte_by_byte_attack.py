#!/usr/bin/env python3
"""The paper's headline experiment: the byte-by-byte (BROP-style) attack
against a forking server, under SSP and under P-SSP.

Under SSP every forked worker inherits the same canary, so the attacker
confirms one byte at a time (~1024 trials for 8 bytes).  Under P-SSP the
preload library re-randomizes the child's stack canary on every fork, so
confirmations never accumulate and the attack stalls.

Run:  python examples/byte_by_byte_attack.py
"""

from repro import Kernel, build, deploy
from repro.attacks import ForkingServer, byte_by_byte_attack, frame_map
from repro.attacks.byte_by_byte import expected_ssp_trials

SERVER = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}

int main() { return 0; }
"""


def attack(scheme: str, seed: int = 20180628) -> None:
    kernel = Kernel(seed)
    binary = build(SERVER, scheme, name="server")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")

    print(f"--- attacking {scheme}-compiled server ---")
    print(f"canary region: {frame.canary_region_size} bytes "
          f"starting {frame.canary_region_start} bytes into the payload")
    report = byte_by_byte_attack(server, frame, max_trials=6000)
    if report.success:
        print(f"ATTACK SUCCEEDED after {report.trials} trials")
        print(f"  recovered canary: {report.recovered.hex()}")
        print(f"  per-byte trials:  {report.per_byte_trials}")
        worker = server.worker()
        print(f"  ground truth:     {worker.tls.canary:#018x}")
    else:
        print(f"attack FAILED after {report.trials} trials "
              f"({len(report.recovered)} bytes of false progress)")
    print(f"workers forked: {server.requests_served}")
    print()


def main() -> None:
    print(f"analytic expectation vs SSP: ~{expected_ssp_trials():.0f} trials\n")
    attack("ssp")
    attack("pssp")
    attack("pssp-nt")


if __name__ == "__main__":
    main()
