#!/usr/bin/env python3
"""Quickstart: compile a vulnerable server with P-SSP and watch the canary
catch a stack buffer overflow.

Run:  python examples/quickstart.py
"""

from repro import Kernel, build, deploy

# A classic vulnerable request handler: 64-byte buffer, unchecked read.
VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    puts("request handled");
    return 0;
}

int main() { return 0; }
"""


def demo(scheme: str) -> None:
    print(f"--- scheme: {scheme} ---")
    kernel = Kernel(seed=2018)
    binary = build(VICTIM, scheme, name="victim")
    print(f"built {binary!r}")

    # Benign request: fits in the buffer, handler completes.
    process, _ = deploy(kernel, binary, scheme)
    process.feed_stdin(b"GET /index.html")
    result = process.call("handler", (15,))
    print(f"benign request   -> {result.state} (stdout: {process.stdout_text().strip()!r})")

    # Malicious request: 200 bytes through a 64-byte buffer.
    process, _ = deploy(kernel, binary, scheme)
    process.feed_stdin(b"A" * 200)
    result = process.call("handler", (200,))
    outcome = str(result.crash) if result.crashed else "no detection!"
    print(f"overflow request -> {result.state}: {outcome}")
    print()


def main() -> None:
    for scheme in ("none", "ssp", "pssp", "pssp-nt", "pssp-owf"):
        demo(scheme)
    print("Note how 'none' dies with SIGSEGV on a corrupted return address")
    print("(or silently, for small overflows), while every canary scheme")
    print("aborts with 'stack smashing detected' before the return executes.")


if __name__ == "__main__":
    main()
