#!/usr/bin/env python3
"""P-SSP-LV: protecting local variables, not just the return address.

The paper's motivating scenario (§IV-B): an overflow that corrupts a
*neighbouring local variable* — say, an ``is_admin`` flag or a crypto key
— and never touches the return address.  SSP's single canary sits above
all locals, so such an attack is invisible to it; P-SSP-LV interleaves a
canary above every critical variable and additionally checks after
overflow-prone libc calls, catching the corruption the moment it happens.

Run:  python examples/local_variable_protection.py
"""

from repro import Kernel, build, deploy

# `secret` sits above `buf` in memory; a modest overflow of buf rewrites
# secret and stops — the return address and SSP's canary stay intact.
VICTIM = """
int check_login(int n) {
    critical char secret[8];
    critical char buf[16];
    secret[0] = 0;                 // not authenticated
    read(0, buf, 4096);            // attacker-controlled length
    if (secret[0]) {
        puts("access granted!");
        return 1;
    }
    puts("access denied");
    return 0;
}

int main() { return 0; }
"""


def attempt(scheme: str, payload: bytes) -> None:
    kernel = Kernel(seed=4242)
    binary = build(VICTIM, scheme, name="login")
    process, _ = deploy(kernel, binary, scheme)
    process.feed_stdin(payload)
    result = process.call("check_login", (len(payload),))
    if result.crashed:
        print(f"{scheme:8s} -> {result.signal}: {result.crash}")
    else:
        granted = b"granted" in process.stdout
        print(f"{scheme:8s} -> exited; access granted: {granted}")


def main() -> None:
    # 16 bytes fill the buffer; the next bytes flip the flag above it.
    payload = b"A" * 16 + b"\x01" * 8

    print("benign login attempt:")
    attempt("ssp", b"password")
    attempt("pssp-lv", b"password")

    print("\nlocal-variable overflow (never reaches the return address):")
    attempt("none", payload)      # silent privilege escalation
    attempt("ssp", payload)       # SSP is blind to this too...
    attempt("pssp-lv", payload)   # ...P-SSP-LV aborts at the read()

    print("\nP-SSP-LV places a fresh random canary above each critical")
    print("variable (XOR of all canaries == TLS canary) and inspects them")
    print("right after overflow-prone calls — postmortem-at-return would")
    print("be too late to stop the corrupted flag from being used.")


if __name__ == "__main__":
    main()
