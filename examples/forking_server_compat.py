#!/usr/bin/env python3
"""Compatibility: P-SSP and SSP code sharing one process (paper §VI-C).

Two claims to demonstrate:

1. **RAF-SSP's correctness failure** — renewing the TLS canary on fork
   kills children that return through frames inherited from the parent.
2. **P-SSP's full compatibility** — a P-SSP-compiled application calling
   SSP-compiled library code (and vice versa) forks and returns through
   mixed frames with zero false positives, because P-SSP never changes
   the TLS canary both kinds of epilogue check against.

Run:  python examples/forking_server_compat.py
"""

from repro import Kernel, deploy
from repro.attacks import probe_fork_correctness
from repro.binfmt.elf import merge_binaries
from repro.compiler.codegen import compile_source

APP = """
int serve(int jobs) {
    char scratch[32];
    int done;
    int j;
    scratch[0] = 1;
    done = 0;
    for (j = 0; j < jobs; j = j + 1) {
        done = done + lib_render(j);
    }
    return done;
}

int main() {
    int pid;
    pid = fork();
    return serve(5) & 127;
}
"""

LIB = """
int lib_render(int job) {
    char canvas[24];
    sprintf(canvas, "frame-%d", job);
    return strlen(canvas);
}
"""


def correctness_matrix() -> None:
    print("fork-correctness probe (child returns through a pre-fork frame):")
    print(f"{'scheme':14s} {'parent ok':>10s} {'child ok':>9s} {'signal':>8s}")
    for scheme in ("ssp", "raf-ssp", "pssp", "dynaguard", "dcr"):
        report = probe_fork_correctness(scheme)
        print(f"{scheme:14s} {str(report.parent_ok):>10s} "
              f"{str(report.child_ok):>9s} {report.child_signal:>8s}")
    print()


def mixed_builds() -> None:
    print("mixed-protection builds under the P-SSP runtime:")
    for app_scheme, lib_scheme in (("pssp", "ssp"), ("ssp", "pssp")):
        kernel = Kernel(seed=7)
        app = compile_source(APP, protection=app_scheme, name="app")
        lib = compile_source(LIB, protection=lib_scheme, name="lib")
        merged = merge_binaries(app, lib, name="app+lib")
        process, _ = deploy(kernel, merged, "pssp")
        result = process.run()
        children_ok = all(
            r.state == "exited" for _, r in getattr(process, "child_results", [])
        )
        print(f"  app={app_scheme:5s} lib={lib_scheme:5s} -> parent "
              f"{result.state}, children clean: {children_ok}")
    print()
    print("No false positives: P-SSP frames check C0^C1 against the TLS")
    print("canary, SSP frames check their copy against the same canary —")
    print("and the fork hook only ever refreshes the *shadow* pair.")


def main() -> None:
    correctness_matrix()
    mixed_builds()


if __name__ == "__main__":
    main()
