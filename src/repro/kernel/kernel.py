"""The kernel: process creation, fork, and thread spawning.

Responsibilities that matter to the paper's experiments:

* **spawn (execve)** — build a fresh address space, map the binary plus any
  ``LD_PRELOAD`` objects, draw a brand-new TLS canary (the dynamic loader's
  job on Linux), and run constructors (which is where the P-SSP preload's
  ``setup_p-ssp`` initialises the shadow canary).
* **fork** — clone memory (TLS *and* the whole stack, inherited frames
  included) and registers; then run the parent's registered fork hooks on
  the child.  The hooks model the preload library's wrapped ``fork``:
  vanilla SSP has no hooks, P-SSP refreshes the child's *shadow* canary,
  RAF-SSP refreshes the child's TLS canary itself (which is what breaks
  its correctness), DynaGuard/DCR walk their canary lists.
* **threads** — a new register file, stack, and TLS block sharing the
  process memory, with thread hooks mirroring the wrapped
  ``pthread_create``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .. import telemetry
from ..binfmt.elf import Binary
from ..binfmt.loader import load
from ..crypto.random import EntropySource, terminator_free_word
from ..errors import KernelError, TransientForkFailure
from ..machine.cpu import NativeFunction
from ..machine.memory import (
    ASLR_SLIDE_PAGES,
    CODE_BASE,
    PAGE,
    Segment,
    standard_memory,
)
from ..machine.tls import TLS_MIN_SIZE
from .process import Process

#: Virtual-address strides for per-thread stacks and TLS blocks.
_THREAD_STACK_STRIDE = 0x100000
_THREAD_TLS_STRIDE = 0x1000


class Kernel:
    """Owner of all simulated processes.

    Parameters
    ----------
    seed:
        Root seed; every process derives its entropy from this, so a whole
        experiment (attack campaign, benchmark run) replays identically.
    fault_plane:
        Optional :class:`~repro.faults.plane.FaultPlane`; when set, every
        process's devices and this kernel's ``fork`` consult it for
        scheduled fault injection.
    """

    def __init__(self, seed: Optional[int] = None, *, fault_plane=None) -> None:
        self.entropy = EntropySource(seed)
        self.fault_plane = fault_plane
        self.processes: Dict[int, Process] = {}
        self._next_pid = 100
        #: Total forks performed (the attack-cost metric in §VI-C).
        self.fork_count = 0
        #: Wall-clock TSC epoch: real time keeps flowing between forks, so
        #: two children forked at different moments observe different
        #: timestamp counters (the property P-SSP-OWF's nonce relies on).
        self._wall_tsc = self.entropy.word(40)

    def _elapse_wall_time(self) -> int:
        """Advance the global TSC epoch by a fork/accept-loop interval."""
        self._wall_tsc += 20_000 + self.entropy.randrange(100_000)
        return self._wall_tsc

    # -- process creation --------------------------------------------------------

    def spawn(
        self,
        binary: Binary,
        *,
        preloads: Iterable[Binary] = (),
        natives: Optional[Dict[str, NativeFunction]] = None,
        dbi_multiplier: float = 1.0,
        cycle_limit: int = 50_000_000,
        stack_size: int = 0x40000,
        run_constructors: bool = True,
        aslr: bool = False,
        fast: bool = True,
        image: Optional["SpawnImage"] = None,
    ) -> Process:
        """execve: create a process from ``binary``.

        ``natives`` is the host-implemented symbol table (libc).  Preload
        binaries interpose simulated symbols; native interposition is done
        by mutating the natives dict before spawning.

        ``aslr`` randomizes segment bases and the code load address per
        spawn (§VII-B: complementary to canaries — an attacker who must
        *guess* a gadget address on top of guessing the canary).

        ``image`` is an optional warmed
        :class:`~repro.machine.snapshot.SpawnImage` for the same binary,
        preloads, and stack size: the address space is then COW-cloned
        from the frozen post-load state instead of being rebuilt, which
        skips the whole layout/rodata pass.  Spawn images are captured
        before any entropy draw, so the image path consumes the kernel
        entropy stream identically to a cold spawn and produces a
        bit-identical process.  Incompatible with ``aslr`` (a slid
        layout is per-spawn by definition).
        """
        preloads = list(preloads)
        if image is not None and not aslr:
            memory, loaded = image.instantiate()
            telemetry.count(
                "kernel_image_spawns_total",
                help="processes booted from a warmed spawn image",
            )
            return self._finish_spawn(
                binary, preloads, memory, loaded,
                natives=natives, dbi_multiplier=dbi_multiplier,
                cycle_limit=cycle_limit, run_constructors=run_constructors,
                fast=fast,
            )
        aslr_entropy = self.entropy.fork() if aslr else None
        memory = standard_memory(
            stack_size=stack_size,
            tls_size=max(TLS_MIN_SIZE, 0x1000),
            aslr=aslr_entropy,
        )
        code_base = CODE_BASE
        if aslr_entropy is not None:
            code_base += aslr_entropy.randrange(ASLR_SLIDE_PAGES) * PAGE
        loaded = load(binary, memory, preloads=preloads, code_base=code_base)
        return self._finish_spawn(
            binary, preloads, memory, loaded,
            natives=natives, dbi_multiplier=dbi_multiplier,
            cycle_limit=cycle_limit, run_constructors=run_constructors,
            fast=fast,
        )

    def _finish_spawn(
        self,
        binary: Binary,
        preloads: List[Binary],
        memory,
        image,
        *,
        natives,
        dbi_multiplier: float,
        cycle_limit: int,
        run_constructors: bool,
        fast: bool,
    ) -> Process:
        """The seed-consuming half of spawn, shared by cold and image boots."""
        pid = self._next_pid
        self._next_pid += 1
        process = Process(
            self,
            pid,
            binary.name,
            memory,
            image,
            dict(natives or {}),
            self.entropy.fork(),
            dbi_multiplier=dbi_multiplier,
            cycle_limit=cycle_limit,
            tsc_base=self._elapse_wall_time(),
            fast=fast,
            fault_plane=self.fault_plane,
        )
        process.entry = binary.entry
        process.binary = binary
        #: Recorded for snapshot/restore: rebuilding the code layout needs
        #: the preload set that shaped it (interposition order).
        process.preloads = preloads
        self.processes[pid] = process

        # The dynamic loader draws the stack guard before anything runs.
        process.tls.canary = terminator_free_word(process.entropy)
        telemetry.count("kernel_spawns_total", help="processes created (execve)")

        if run_constructors:
            for source in (*preloads, binary):
                for constructor in source.constructors:
                    result = process.call(constructor)
                    if result.crashed:
                        raise KernelError(
                            f"constructor {constructor} crashed: {result.crash}"
                        )
        return process

    # -- fork -------------------------------------------------------------------

    def fork(self, parent: Process) -> Process:
        """Clone ``parent`` into a new child process.

        The child gets a deep copy of the address space (TLS canary and
        all existing stack frames included — the heart of the byte-by-byte
        attack surface) and a snapshot of the registers.  Fork hooks
        registered on the parent (by a preload library) then run against
        the child.
        """
        if parent.state == "crashed":
            # A crashed process is gone; forking it is harness misuse.
            # (An *exited* Process object may still be forked: server
            # harnesses fork fresh workers off a parent whose last call
            # returned.)
            raise KernelError(f"cannot fork crashed pid {parent.pid}")
        if self.fault_plane is not None and self.fault_plane.fork_verdict():
            raise TransientForkFailure(
                "fork: resource temporarily unavailable (EAGAIN)"
            )
        pid = self._next_pid
        self._next_pid += 1
        # The COW clone below freezes the parent's private pages; drop
        # the parent CPU's compiled superblocks so no JIT code outlives
        # a memory-sharing boundary (the child's fresh CPU starts cold).
        parent.cpu.flush_jit_cache()
        child = Process(
            parent.kernel,
            pid,
            parent.name,
            parent.memory.clone(),
            parent.image,
            dict(parent.natives),
            parent.entropy.fork(),
            ppid=parent.pid,
            dbi_multiplier=parent.cpu.dbi_multiplier,
            cycle_limit=parent.cpu.cycle_limit,
            tsc_base=max(parent.cpu.tsc.value, self._elapse_wall_time()),
            fast=parent.cpu.fast,
            fault_plane=self.fault_plane,
        )
        child.entry = parent.entry
        child.binary = getattr(parent, "binary", None)
        child.preloads = list(getattr(parent, "preloads", ()))
        child.registers.gpr.update(parent.registers.gpr)
        child.registers.xmm.update(parent.registers.xmm)
        child.registers.fs_base = parent.registers.fs_base
        child.registers.rip = parent.registers.rip
        child.registers.zf = parent.registers.zf
        child.registers.sf = parent.registers.sf
        child.registers.cf = parent.registers.cf
        child.stdin = bytearray(parent.stdin)
        child.brk = parent.brk
        child.fork_hooks = list(parent.fork_hooks)
        child.thread_hooks = list(parent.thread_hooks)
        if hasattr(parent, "jmp_bufs"):
            # jmp_buf contents refer to addresses valid in the cloned
            # address space, so the child may longjmp through them too.
            child.jmp_bufs = dict(parent.jmp_bufs)
        self.processes[pid] = child
        self.fork_count += 1
        # Fork is all-or-nothing: if a hook fails (e.g. the preload's
        # shadow-pair refresh fails closed), unregister the child so no
        # retry or caller can observe a half-initialised process carrying
        # the parent's stale pair.
        try:
            for hook in parent.fork_hooks:
                hook(child, parent)
        except Exception:
            self.processes.pop(pid, None)
            self.fork_count -= 1
            raise
        # Counted only after the hooks commit: the counter is monotonic,
        # so it must track forks that stayed registered (== fork_count).
        telemetry.count("kernel_forks_total", help="successful forks")
        return child

    # -- threads -------------------------------------------------------------------

    def create_thread(self, process: Process, *, stack_size: int = 0x20000) -> Process:
        """pthread_create: a new execution context sharing ``process`` memory.

        The thread receives its own stack segment and TLS block; the TLS
        block is initialised as glibc does — same canary ``C`` as every
        other thread in the process — then thread hooks run (the preload's
        wrapped ``pthread_create`` refreshes the shadow canary there).
        """
        tid = len(process.threads) + 1
        main_stack = process.memory.segment("stack")
        stack_top = main_stack.base - _THREAD_STACK_STRIDE * (tid - 1) - PAGE
        process.memory.map_segment(
            Segment(f"stack_t{tid}", stack_top - stack_size, stack_size)
        )
        tls_base = process.registers.fs_base + _THREAD_TLS_STRIDE * tid
        process.memory.map_segment(Segment(f"tls_t{tid}", tls_base, _THREAD_TLS_STRIDE))

        thread = Process(
            self,
            process.pid,  # same pid: threads share the process identity
            f"{process.name}/t{tid}",
            process.memory,  # shared, NOT cloned
            process.image,
            process.natives,
            process.entropy.fork(),
            ppid=process.ppid,
            dbi_multiplier=process.cpu.dbi_multiplier,
            cycle_limit=process.cpu.cycle_limit,
            tsc_base=process.cpu.tsc.value,
            fast=process.cpu.fast,
            fault_plane=self.fault_plane,
        )
        thread.entry = process.entry
        thread.binary = getattr(process, "binary", None)
        thread.registers.fs_base = tls_base
        thread.registers.write("rsp", stack_top - 0x100)
        thread.registers.write("rbp", stack_top - 0x100)
        thread.fork_hooks = list(process.fork_hooks)
        thread.thread_hooks = list(process.thread_hooks)
        # Carve a private heap arena so malloc in the thread cannot race
        # the process allocator (the simulator runs threads sequentially).
        thread.brk = process.brk
        process.brk += 0x10000

        # glibc: every thread's TLS starts with the same stack guard.
        thread.tls.canary = process.tls.canary
        thread.tls.shadow_c0 = process.tls.shadow_c0
        thread.tls.shadow_c1 = process.tls.shadow_c1

        process.threads.append(thread)
        # Mirror fork's all-or-nothing hook contract: a failed thread hook
        # (shadow refresh failing closed) must not leave a half-initialised
        # thread context registered.
        try:
            for hook in process.thread_hooks:
                hook(thread, process)
        except Exception:
            process.threads.pop()
            raise
        telemetry.count("kernel_threads_total", help="threads created")
        return thread

    # -- snapshot/restore ---------------------------------------------------------

    def restore(self, image: bytes, *, natives: Optional[dict] = None) -> Process:
        """Rebuild a process from :func:`repro.machine.snapshot.snapshot_process`
        bytes, adopting the image's kernel bookkeeping (entropy stream,
        pid counter, wall-TSC epoch) so subsequent forks replay
        bit-identically to forks of the snapshotted original."""
        from ..machine.snapshot import restore_process

        return restore_process(
            image, kernel=self, natives=natives, adopt_kernel_state=True
        )

    # -- teardown -------------------------------------------------------------------

    def reap(self, process: Process) -> None:
        """Forget a terminated process (frees its memory on the host)."""
        self.processes.pop(process.pid, None)
