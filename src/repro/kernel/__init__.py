"""Process model: kernel, processes, threads, fork semantics."""

from .kernel import Kernel
from .process import CRASHED, EXITED, READY, RUNNING, Process, ProcessResult

__all__ = [
    "CRASHED",
    "EXITED",
    "Kernel",
    "Process",
    "ProcessResult",
    "READY",
    "RUNNING",
]
