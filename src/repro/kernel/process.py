"""Processes and threads.

A :class:`Process` owns an address space, a register file, and a CPU; the
:class:`~repro.kernel.kernel.Kernel` creates processes from binaries and
implements ``fork`` by deep-copying memory and registers — including the
TLS block and every inherited stack frame, which is precisely the semantic
the byte-by-byte attack exploits (the child reuses the parent's canary)
and the semantic that breaks RAF-SSP (the child returns into frames whose
canaries predate its refreshed TLS).

Execution is synchronous and deterministic: a process runs until its entry
returns, it crashes, or it exceeds its cycle budget.  A ``fork`` performed
*by simulated code* runs the child to completion before the parent's
``fork`` returns (a legal schedule: child-runs-first with the parent
blocked, which is how the paper's forking servers behave under ``waitpid``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import telemetry
from ..crypto.random import EntropySource
from ..errors import KernelError, MachineFault
from ..isa.registers import RegisterFile
from ..machine.cpu import CPU, NativeFunction
from ..machine.devices import RdRandDevice, TimeStampCounter
from ..machine.memory import Memory
from ..machine.tls import TlsView

#: Process lifecycle states.
READY = "ready"
RUNNING = "running"
EXITED = "exited"
CRASHED = "crashed"


@dataclass
class ProcessResult:
    """Outcome of one run of a process entry point."""

    state: str
    exit_status: int
    crash: Optional[MachineFault]
    cycles: float
    instructions: int

    @property
    def crashed(self) -> bool:
        """True when the run ended in a fault (any signal)."""
        return self.state == CRASHED

    @property
    def signal(self) -> str:
        """Symbolic signal name, or '' for a clean exit."""
        return self.crash.signal if self.crash else ""

    @property
    def smashed(self) -> bool:
        """True when the crash was a canary-detected stack smash."""
        from ..errors import StackSmashDetected

        return isinstance(self.crash, StackSmashDetected)


class Process:
    """One simulated OS process."""

    def __init__(
        self,
        kernel,
        pid: int,
        name: str,
        memory: Memory,
        image,
        natives: Dict[str, NativeFunction],
        entropy: EntropySource,
        *,
        ppid: int = 0,
        dbi_multiplier: float = 1.0,
        cycle_limit: int = 50_000_000,
        tsc_base: int = 0,
        fast: bool = True,
        fault_plane=None,
    ) -> None:
        self.kernel = kernel
        #: Fault-injection plane shared with the owning kernel (None in
        #: production deployments); the devices below consult it.
        self.fault_plane = fault_plane
        self.pid = pid
        self.ppid = ppid
        self.name = name
        self.memory = memory
        self.image = image
        self.natives = natives
        self.entropy = entropy
        self.state = READY
        self.exit_status = 0
        self.crash: Optional[MachineFault] = None

        self.registers = RegisterFile()
        # Anchor to the *actual* segment placement (ASLR may have slid the
        # bases away from the layout constants).
        self.registers.fs_base = memory.segment("tls").base
        initial_rsp = memory.segment("stack").end - 0x100
        self.registers.write("rsp", initial_rsp)
        self.registers.write("rbp", initial_rsp)

        self.cpu = CPU(
            memory,
            image,
            natives,
            registers=self.registers,
            tsc=TimeStampCounter(tsc_base, plane=fault_plane),
            rdrand=RdRandDevice(entropy, plane=fault_plane),
            cycle_limit=cycle_limit,
            dbi_multiplier=dbi_multiplier,
            fast=fast,
        )
        #: Back-reference so native handlers can reach kernel services.
        self.cpu.process = self
        #: An armed fault plane pins the CPU to per-step execution (the
        #: trace-JIT tier side-exits and stays cold while it is set).
        self.cpu.fault_plane = fault_plane

        #: Callbacks applied to a freshly forked child (the preload
        #: library's wrapped ``fork`` registers its TLS refresh here).
        self.fork_hooks: List[Callable[["Process", "Process"], None]] = []
        #: Callbacks applied to a freshly created thread.
        self.thread_hooks: List[Callable[["Process", "Process"], None]] = []

        #: Standard streams and a bump allocator for libc.
        self.stdin = bytearray()
        self.stdout = bytearray()
        self.brk = memory.segment("heap").base

        #: Threads spawned by this process (simulated pthread contexts).
        self.threads: List["Process"] = []

    # -- TLS ------------------------------------------------------------------

    @property
    def tls(self) -> TlsView:
        """Typed view of this process's TLS block."""
        return TlsView(self.memory, self.registers.fs_base)

    # -- execution --------------------------------------------------------------

    def feed_stdin(self, data: bytes) -> None:
        """Queue bytes for ``read(0, ...)`` / ``gets`` to consume."""
        self.stdin.extend(data)

    def run(self, entry: Optional[str] = None, args: "tuple" = ()) -> ProcessResult:
        """Run ``entry`` (default: the binary entry) to completion.

        Faults are converted into a crashed :class:`ProcessResult`; they
        never propagate to the caller, mirroring signal delivery.

        A process that exited cleanly may be called again (constructors,
        then ``main``, then server handlers all run in the same process);
        a *crashed* process is gone for good.
        """
        if self.state == CRASHED:
            raise KernelError(f"pid {self.pid} already crashed ({self.crash})")
        target = entry or self.entry
        self.state = RUNNING
        start_cycles = self.cpu.cycles
        start_instructions = self.cpu.instructions_executed
        telemetry.count("process_runs_total", help="process entry invocations")
        try:
            status = self.cpu.call_function(target, args)
            self.state = EXITED
            self.exit_status = status & 0xFF
        except MachineFault as fault:
            self.state = CRASHED
            self.crash = fault
            telemetry.count(
                "process_crashes_total", help="runs ended by a machine fault"
            )
        return ProcessResult(
            self.state,
            self.exit_status,
            self.crash,
            self.cpu.cycles - start_cycles,
            self.cpu.instructions_executed - start_instructions,
        )

    def call(self, function: str, args: "tuple" = ()) -> ProcessResult:
        """Run an arbitrary function in this process (server handlers)."""
        return self.run(function, args)

    def continue_execution(self) -> ProcessResult:
        """Resume the CPU run loop from the current register state.

        Used for the child side of an in-simulation ``fork``: registers
        were cloned mid-function, so the child picks up right after the
        ``call fork`` site with ``rax = 0``.
        """
        name, _ = self.registers.rip
        function = self.image.function(name)
        if function is None:
            raise KernelError(f"cannot resume: no function {name!r}")
        self.cpu._current = function
        self.cpu.running = True
        self.state = RUNNING
        start_cycles = self.cpu.cycles
        start_instructions = self.cpu.instructions_executed
        telemetry.count("process_runs_total", help="process entry invocations")
        try:
            self.cpu._run_loop()
            self.state = EXITED
            self.exit_status = self.cpu.exit_status
        except MachineFault as fault:
            self.state = CRASHED
            self.crash = fault
            telemetry.count(
                "process_crashes_total", help="runs ended by a machine fault"
            )
        return ProcessResult(
            self.state,
            self.exit_status,
            self.crash,
            self.cpu.cycles - start_cycles,
            self.cpu.instructions_executed - start_instructions,
        )

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize this (quiescent) process into a deterministic machine
        image; see :func:`repro.machine.snapshot.snapshot_process`.  The
        image embeds the kernel bookkeeping needed for post-restore forks
        to replay bit-identically."""
        from ..machine.snapshot import snapshot_process

        return snapshot_process(self)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def entry(self) -> str:
        """The binary's entry symbol (set by the kernel at spawn)."""
        try:
            return self._entry
        except AttributeError:
            # Typed instead of a bare AttributeError: running a Process
            # constructed outside Kernel.spawn is harness misuse.
            raise KernelError(
                f"pid {self.pid} has no entry symbol (not spawned by a kernel)"
            ) from None

    @entry.setter
    def entry(self, value: str) -> None:
        self._entry = value

    @property
    def alive(self) -> bool:
        """True until the process exits or crashes."""
        return self.state in (READY, RUNNING)

    def stdout_text(self) -> str:
        """Decoded standard output (lossy, for assertions and demos)."""
        return self.stdout.decode("utf-8", errors="replace")

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, state={self.state})"
