"""Pure-Python AES-128, standing in for Intel AES-NI.

P-SSP-OWF (paper §IV-C / §V-E3) computes the stack canary as
``AES_ENCRYPT_128(key = TLS canary, plaintext = rdtsc || return-address)``.
The paper uses AES-NI; offline we implement FIPS-197 AES-128 directly.
Only ECB single-block encryption/decryption is needed, but decryption is
included so tests can verify the implementation round-trips against the
FIPS-197 appendix vectors.

The implementation favours clarity over speed: the canary path encrypts
one block per protected call in *simulated* time (the cycle cost lives in
``repro.isa.costs``), so host-side throughput is irrelevant.
"""

from __future__ import annotations

from typing import List

BLOCK_SIZE = 16
KEY_SIZE = 16
ROUNDS = 10

# FIPS-197 S-box.
SBOX = bytes(
    [
        0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
        0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
        0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
        0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
        0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
        0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
        0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
        0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
        0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
        0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
        0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
        0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
        0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
        0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
        0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
        0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
    ]
)

INV_SBOX = bytes(SBOX.index(i) for i in range(256))

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def expand_key(key: bytes) -> List[bytes]:
    """Expand a 16-byte key into 11 round keys (FIPS-197 §5.2)."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 4 * (ROUNDS + 1)):
        temp = bytearray(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = bytearray(SBOX[b] for b in temp)
            temp[0] ^= RCON[i // 4 - 1]
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(ROUNDS + 1)]


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: bytearray, box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: bytearray) -> None:
    # State is column-major: byte (row, col) lives at state[row + 4*col].
    for row in range(1, 4):
        cells = [state[row + 4 * col] for col in range(4)]
        cells = cells[row:] + cells[:row]
        for col in range(4):
            state[row + 4 * col] = cells[col]


def _inv_shift_rows(state: bytearray) -> None:
    for row in range(1, 4):
        cells = [state[row + 4 * col] for col in range(4)]
        cells = cells[-row:] + cells[:-row]
        for col in range(4):
            state[row + 4 * col] = cells[col]


def _mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
        state[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
        state[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
        state[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)


def _inv_mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
        state[4 * col + 1] = _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
        state[4 * col + 2] = _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
        state[4 * col + 3] = _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)


def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128 (models ``AES_ENCRYPT_128``)."""
    if len(plaintext) != BLOCK_SIZE:
        raise ValueError(f"plaintext block must be {BLOCK_SIZE} bytes, got {len(plaintext)}")
    round_keys = expand_key(key)
    state = bytearray(plaintext)
    _add_round_key(state, round_keys[0])
    for rnd in range(1, ROUNDS):
        _sub_bytes(state, SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[rnd])
    _sub_bytes(state, SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[ROUNDS])
    return bytes(state)


def decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt one 16-byte block (used only for self-tests)."""
    if len(ciphertext) != BLOCK_SIZE:
        raise ValueError(f"ciphertext block must be {BLOCK_SIZE} bytes, got {len(ciphertext)}")
    round_keys = expand_key(key)
    state = bytearray(ciphertext)
    _add_round_key(state, round_keys[ROUNDS])
    for rnd in range(ROUNDS - 1, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, INV_SBOX)
        _add_round_key(state, round_keys[rnd])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)
