"""Deterministic entropy sources.

Every random bit consumed anywhere in the simulator — TLS canary
initialization, ``rdrand`` executions, attacker guesses, workload request
mixes — flows through an :class:`EntropySource` so that experiments are
reproducible given a seed.  The source is a thin wrapper around
``random.Random`` with byte/word conveniences matching what the hardware
devices and the protection schemes need.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import EntropyFailure

#: Number of bits in a machine word on the simulated platform.
WORD_BITS = 64
WORD_BYTES = WORD_BITS // 8
WORD_MASK = (1 << WORD_BITS) - 1


class EntropySource:
    """A seedable stream of random integers and byte strings.

    Parameters
    ----------
    seed:
        Seed for the underlying PRNG.  ``None`` draws a nondeterministic
        seed from the host, which is only appropriate for interactive use.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        #: Number of draw operations served (diagnostics/tests).
        self.draws = 0

    def word(self, bits: int = WORD_BITS) -> int:
        """Return a uniformly random ``bits``-bit unsigned integer."""
        self.draws += 1
        return self._rng.getrandbits(bits)

    def nonzero_word(self, bits: int = WORD_BITS) -> int:
        """Return a uniformly random nonzero ``bits``-bit integer.

        glibc avoids all-zero canaries (a zero canary survives ``strcpy``
        termination overflows); schemes that mimic it use this helper.
        Bounded: a degenerate request (``bits < 1``, or a stream that
        keeps returning zero) raises :class:`EntropyFailure` instead of
        retrying forever.
        """
        if bits < 1:
            raise EntropyFailure(f"cannot draw a nonzero {bits}-bit word")
        for _ in range(128):
            value = self.word(bits)
            if value:
                return value
        raise EntropyFailure(
            f"entropy source returned 128 consecutive zero {bits}-bit words"
        )

    def bytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes."""
        self.draws += 1
        return self._rng.getrandbits(8 * n).to_bytes(n, "little") if n else b""

    def byte(self) -> int:
        """Return one uniformly random byte value (0..255)."""
        return self.word(8)

    def randrange(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)``."""
        self.draws += 1
        return self._rng.randrange(upper)

    def choice(self, items: List):
        """Return a uniformly chosen element of ``items``."""
        self.draws += 1
        return self._rng.choice(items)

    def shuffle(self, items: List) -> None:
        """Shuffle ``items`` in place."""
        self.draws += 1
        self._rng.shuffle(items)

    def gauss(self, mu: float, sigma: float) -> float:
        """Return a Gaussian sample (used by workload latency jitter)."""
        self.draws += 1
        return self._rng.gauss(mu, sigma)

    def fork(self) -> "EntropySource":
        """Derive an independent child source (used on process fork).

        The child is seeded from this stream so forked processes observe
        different — but still reproducible — entropy.
        """
        return EntropySource(self.word(64))


def terminator_free_word(source: EntropySource, bits: int = WORD_BITS) -> int:
    """Draw a canary whose low byte is the NUL terminator, glibc-style.

    glibc's default canary keeps byte 0 as ``0x00`` so that string
    functions cannot leak it or write past it silently.  SSP in our
    simulator follows the same convention; P-SSP draws fully random words
    because the XOR-split makes termination tricks irrelevant.
    """
    word = source.word(bits)
    return word & ~0xFF
