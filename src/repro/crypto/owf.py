"""The one-way function ``F`` used by P-SSP-OWF (paper Algorithm 3).

The stack canary under P-SSP-OWF is

    C_stack = F(ret || n, C_tls) = AES-128(key = C_tls, pt = n || ret)

where ``n`` is a per-call nonce (the paper uses the time-stamp counter) and
``ret`` is the saved return address.  The result is a *randomized message
authentication code of the return address keyed by the TLS canary*: leaking
one frame's canary reveals neither the key nor a valid canary for any other
frame, and the nonce defeats byte-by-byte accumulation.

The paper stores the full 128-bit ciphertext in the frame along with the
64-bit nonce; our simulated frames do the same.  Helper functions here work
on integers so the prologue/epilogue microcode and the pure-Python scheme
objects share one implementation.
"""

from __future__ import annotations

from .aes import encrypt_block

WORD_MASK = (1 << 64) - 1


def _key_bytes(tls_canary_lo: int, tls_canary_hi: int) -> bytes:
    """Assemble the 128-bit AES key from the r12/r13 register pair.

    The paper reserves ``r12``/``r13`` as *global register variables*
    holding the key; we keep the same split so the compiler pass and the
    scheme object agree byte-for-byte.
    """
    return (tls_canary_lo & WORD_MASK).to_bytes(8, "little") + (
        (tls_canary_hi & WORD_MASK).to_bytes(8, "little")
    )


def owf_canary(
    tls_canary_lo: int,
    tls_canary_hi: int,
    nonce: int,
    return_address: int,
) -> bytes:
    """Compute the 16-byte P-SSP-OWF stack canary.

    Parameters
    ----------
    tls_canary_lo, tls_canary_hi:
        The two 64-bit key halves (registers ``r12``/``r13``).
    nonce:
        The 64-bit per-call nonce (``rdtsc`` value in the paper).
    return_address:
        The frame's saved return address (``0x8(%rbp)``).
    """
    plaintext = (nonce & WORD_MASK).to_bytes(8, "little") + (
        (return_address & WORD_MASK).to_bytes(8, "little")
    )
    return encrypt_block(_key_bytes(tls_canary_lo, tls_canary_hi), plaintext)


def owf_canary_words(
    tls_canary_lo: int,
    tls_canary_hi: int,
    nonce: int,
    return_address: int,
) -> "tuple[int, int]":
    """Like :func:`owf_canary` but returning (lo64, hi64) integer words.

    The epilogue compares the recomputed pair against the two words saved
    on the stack; working in words matches the simulated memory layout.
    """
    block = owf_canary(tls_canary_lo, tls_canary_hi, nonce, return_address)
    return (
        int.from_bytes(block[:8], "little"),
        int.from_bytes(block[8:], "little"),
    )


def owf_check(
    tls_canary_lo: int,
    tls_canary_hi: int,
    nonce: int,
    return_address: int,
    stored_lo: int,
    stored_hi: int,
) -> bool:
    """Epilogue-side verification: recompute F and compare both words."""
    lo, hi = owf_canary_words(tls_canary_lo, tls_canary_hi, nonce, return_address)
    return lo == (stored_lo & WORD_MASK) and hi == (stored_hi & WORD_MASK)
