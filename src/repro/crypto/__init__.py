"""Cryptographic substrate: AES-128 (AES-NI stand-in), the one-way function
``F`` for P-SSP-OWF, and deterministic entropy sources."""

from .aes import BLOCK_SIZE, KEY_SIZE, decrypt_block, encrypt_block, expand_key
from .owf import owf_canary, owf_canary_words, owf_check
from .random import WORD_BITS, WORD_BYTES, WORD_MASK, EntropySource, terminator_free_word

__all__ = [
    "BLOCK_SIZE",
    "KEY_SIZE",
    "WORD_BITS",
    "WORD_BYTES",
    "WORD_MASK",
    "EntropySource",
    "decrypt_block",
    "encrypt_block",
    "expand_key",
    "owf_canary",
    "owf_canary_words",
    "owf_check",
    "terminator_free_word",
]
