"""Seeded chaos campaigns: inject faults, classify and audit the outcome.

One campaign case is (program seed → generated program, fault schedule,
scheme).  The case runs twice:

* **reference** — same scheme, same kernel seed, *no* fault plane.  The
  reference must exit cleanly (anything else is an infrastructure error,
  not a chaos finding — benign programs are the fuzzer's contract).
* **faulted** — a fresh kernel with a :class:`~repro.faults.plane.FaultPlane`
  carrying the schedule, run down the slow path with a
  :class:`CanaryAuditor` watching every canary store.

The fault-outcome invariant then demands one of three *auditable*
outcomes and nothing else:

==============  ==============================================================
``identical``   behaviour matches the reference; any delivered faults are
                explained by the absorption ledger
``detected``    the run ended in ``StackSmashDetected`` (a corrupted
                canary was *caught*)
``degraded``    a typed :class:`~repro.errors.DegradedError`, or identical
                behaviour with explicit degradation events on the ledger
==============  ==============================================================

Everything else — behaviour divergence without a typed error, an untyped
crash, or an auditor finding (zero, stuck, or unexplained canary) — is an
invariant violation.  Determinism is inherited from the fuzzer: one seed
reproduces the program, the kernel entropy, *and* the schedule, so
``python -m repro chaos --replay SEED`` is bit-identical.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..core.deploy import build, deploy
from ..errors import CampaignError, DegradedError
from ..fuzz.conformance import FUZZ_CYCLE_LIMIT, _fingerprint
from ..isa.instructions import Mem, Reg
from ..kernel.kernel import Kernel
from ..workloads.generator import (
    FunctionSpec,
    ProgramSpec,
    generate_fuzz_program,
    render_program,
)
from .plane import FaultPlane
from .policy import (
    AUDIT_REPEAT_THRESHOLD,
    FORK_RETRY_LIMIT,
    SELFTEST_DRAWS,
)
from .schedule import FaultEvent, FaultSchedule, generate_fault_schedule

#: Chaos programs share the fuzzer's per-program cycle budget: a faulted
#: run that livelocks dies with a fast, attributable SIGXCPU instead of
#: stalling the campaign (the per-program timeout).
CHAOS_CYCLE_LIMIT = FUZZ_CYCLE_LIMIT

#: Events that legitimise a fallback canary or a repeated fresh value.
_DEGRADED_EVENT_KINDS = frozenset({"rdrand-exhausted", "entropy-degraded"})


class CanaryAuditor:
    """Watch canary stores through the CPU trace hook.

    Installing a trace hook forces the interpreter's slow path, so every
    prologue store is observed.  The auditor follows the instruction
    *notes* the passes attach: a fresh per-call draw must never be zero
    and must not silently repeat; a fallback load must match the TLS
    shadow pair and be explained by a degradation event.  The hook
    re-attaches itself to forked children and new threads.
    """

    #: Fresh-path C0 stores (hardened pass, and the plain NT store the
    #: fallback-disabled mutant degenerates to).
    FRESH_NOTES = frozenset({"pssp-nt-hardened-c0"})
    PLAIN_NOTE = "pssp-nt-prologue"
    FALLBACK_NOTE = "pssp-nt-fallback-c0"

    def __init__(self, plane: FaultPlane) -> None:
        self.plane = plane
        self.fresh_values: List[int] = []
        self.zero_stores = 0
        self.fallback_stores = 0
        self.fallback_mismatches: List[str] = []

    def attach(self, process) -> None:
        def hook(name, index, instruction, _process=process):
            self._observe(_process, instruction)

        process.cpu.trace = hook
        process.fork_hooks.append(lambda child, parent: self.attach(child))
        process.thread_hooks.append(lambda thread, parent: self.attach(thread))

    def _is_plain_c0_store(self, instruction) -> bool:
        return (
            len(instruction.operands) == 2
            and isinstance(instruction.operands[0], Mem)
            and instruction.operands[1] == Reg("rax")
        )

    def _observe(self, process, instruction) -> None:
        note = instruction.note
        if instruction.op != "mov" or not note:
            return
        if note in self.FRESH_NOTES or (
            note == self.PLAIN_NOTE and self._is_plain_c0_store(instruction)
        ):
            value = process.cpu.registers.read("rax")
            self.fresh_values.append(value)
            if value == 0:
                self.zero_stores += 1
        elif note == self.FALLBACK_NOTE:
            self.fallback_stores += 1
            value = process.cpu.registers.read("rax")
            expected = process.tls.shadow_c0
            if value != expected:
                self.fallback_mismatches.append(
                    f"fallback canary {value:#x} != TLS shadow C0 {expected:#x}"
                )

    def findings(self, *, require_store: bool = False) -> List[str]:
        """Auditor verdicts; non-empty = invariant violation."""
        problems: List[str] = []
        if self.zero_stores:
            problems.append(
                f"{self.zero_stores} zero canary store(s) on the fresh path "
                f"(predictable canary)"
            )
        counts = Counter(v for v in self.fresh_values if v)
        if counts:
            value, repeats = counts.most_common(1)[0]
            if (
                repeats >= AUDIT_REPEAT_THRESHOLD
                and not (_DEGRADED_EVENT_KINDS & self.plane.event_kinds())
            ):
                problems.append(
                    f"fresh canary {value:#x} repeated {repeats}x with no "
                    f"entropy-degraded event (silently stuck source)"
                )
        problems.extend(self.fallback_mismatches)
        if self.fallback_stores and not (
            _DEGRADED_EVENT_KINDS & self.plane.event_kinds()
        ):
            problems.append(
                "fallback canary used without a recorded exhaustion/"
                "degradation event"
            )
        if require_store and not self.fresh_values and not self.fallback_stores:
            problems.append(
                "no canary store observed in a case known to run protected "
                "prologues"
            )
        return problems


@dataclass
class ChaosRun:
    """Outcome of one fault schedule against one program."""

    seed: int
    scheme: str
    description: str
    outcome: str  #: identical | detected | degraded | divergence
    expected: Tuple[str, ...]
    violations: List[str] = field(default_factory=list)
    events: List[str] = field(default_factory=list)
    delivered: Dict[str, int] = field(default_factory=dict)
    absorbed: int = 0
    detail: str = ""
    case: str = ""  #: non-empty for canned (non-generated) cases

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def replay_command(self) -> str:
        if self.case:
            return f"python -m repro chaos --self-check"
        return f"python -m repro chaos --replay {self.seed}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "scheme": self.scheme,
            "description": self.description,
            "outcome": self.outcome,
            "expected": list(self.expected),
            "violations": list(self.violations),
            "events": list(self.events),
            "delivered": dict(self.delivered),
            "absorbed": self.absorbed,
            "detail": self.detail,
            "case": self.case,
            "replay": self.replay_command,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ChaosRun":
        return cls(
            seed=int(data["seed"]),
            scheme=data["scheme"],
            description=data.get("description", ""),
            outcome=data["outcome"],
            expected=tuple(data.get("expected", ())),
            violations=list(data.get("violations", [])),
            events=list(data.get("events", [])),
            delivered={k: int(v) for k, v in data.get("delivered", {}).items()},
            absorbed=int(data.get("absorbed", 0)),
            detail=data.get("detail", ""),
            case=data.get("case", ""),
        )

    def render(self) -> str:
        head = self.case or f"seed {self.seed}"
        line = (
            f"{head}: scheme={self.scheme} outcome={self.outcome} "
            f"(expected {'/'.join(self.expected)}) — {self.description}"
        )
        lines = [line]
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """Outcome of one chaos campaign (checkpointable)."""

    budget: int
    base_seed: int
    runs: List[ChaosRun] = field(default_factory=list)
    infra_errors: List[Tuple[int, str]] = field(default_factory=list)
    timed_out: bool = False
    #: Shards that needed more than one attempt, ``"first..last" ->
    #: attempts`` (empty on serial and healthy parallel runs).
    shard_attempts: Dict[str, int] = field(default_factory=dict)

    @property
    def completed_seeds(self) -> "set[int]":
        return {run.seed for run in self.runs if not run.case}

    @property
    def violating_runs(self) -> List[ChaosRun]:
        return [run for run in self.runs if not run.ok]

    @property
    def ok(self) -> bool:
        return (
            not self.violating_runs
            and not self.infra_errors
            and not self.timed_out
        )

    def outcome_tally(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for run in self.runs:
            tally[run.outcome] = tally.get(run.outcome, 0) + 1
        return tally

    def to_json(self) -> Dict[str, Any]:
        return {
            "budget": self.budget,
            "base_seed": self.base_seed,
            "timed_out": self.timed_out,
            "shard_attempts": dict(sorted(self.shard_attempts.items())),
            "infra_errors": [[seed, detail] for seed, detail in self.infra_errors],
            "runs": [run.to_json() for run in self.runs],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ChaosReport":
        return cls(
            budget=int(data["budget"]),
            base_seed=int(data["base_seed"]),
            runs=[ChaosRun.from_json(r) for r in data.get("runs", [])],
            infra_errors=[
                (int(seed), detail)
                for seed, detail in data.get("infra_errors", [])
            ],
            timed_out=bool(data.get("timed_out", False)),
            shard_attempts={
                str(span): int(attempts)
                for span, attempts in dict(data.get("shard_attempts", {})).items()
            },
        )

    def render(self) -> str:
        tally = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(self.outcome_tally().items())
        )
        lines = [
            f"chaos: {len(self.runs)}/{self.budget} schedules, "
            f"base seed {self.base_seed}, outcomes: {tally or 'none'}"
        ]
        for span, attempts in sorted(self.shard_attempts.items()):
            lines.append(f"shard {span}: {attempts} attempt(s)")
        for run in self.violating_runs:
            lines.append(run.render())
            lines.append(f"  replay: {run.replay_command}")
        for seed, detail in self.infra_errors:
            lines.append(f"seed {seed}: INFRASTRUCTURE ERROR: {detail}")
        if self.timed_out:
            lines.append("campaign DEADLINE EXCEEDED (resume with --resume)")
        lines.append(
            "FAULT-OUTCOME INVARIANT OK" if self.ok
            else f"{len(self.violating_runs)} violating run(s), "
                 f"{len(self.infra_errors)} infrastructure error(s)"
        )
        return "\n".join(lines)


def _chaos_fingerprint(kernel, process, result) -> Dict[str, Any]:
    """Conformance fingerprint + waitpid-visible child outcomes.

    Reaped children leave ``kernel.processes``, so the base fingerprint
    alone cannot tell "fork absorbed the EAGAIN" from "fork surfaced -1
    and no child ever ran" when the parent ignores the pid.  The child
    results the kernel records on the parent close that blind spot.
    """
    fingerprint = _fingerprint(kernel, process, result)
    fingerprint["child_results"] = [
        (child_result.state, child_result.exit_status, child_result.signal)
        for _pid, child_result in getattr(process, "child_results", [])
    ]
    return fingerprint


def _apply_tls_flips(process, plane: FaultPlane) -> None:
    """Deliver post-install ``tls-flip`` events (one-shot bit flips)."""
    for event in plane.schedule.events:
        if event.kind != "tls-flip":
            continue
        slot = event.slot or "shadow_c0"
        tls = process.tls
        setattr(tls, slot, getattr(tls, slot) ^ (1 << event.bit))
        plane.record_delivered("tls-flip", f"{slot} bit {event.bit}")


def run_chaos_case(
    seed: int,
    *,
    spec: Optional[ProgramSpec] = None,
    schedule: Optional[FaultSchedule] = None,
    cycle_limit: int = CHAOS_CYCLE_LIMIT,
    audit: bool = True,
    require_store: bool = False,
    case: str = "",
) -> ChaosRun:
    """Run one (program, schedule) case and classify the outcome.

    ``spec``/``schedule`` default to the deterministic seed derivation —
    pass both to replay a canned or corpus case instead.  Raises
    :class:`CampaignError` for infrastructure problems (the reference run
    must exit cleanly); never raises for invariant violations.
    """
    if spec is None:
        spec, source = generate_fuzz_program(seed)
    else:
        source = render_program(spec)
    if schedule is None:
        schedule = generate_fault_schedule(seed, spec)
    scheme = schedule.scheme

    # Reference: same scheme, same kernel seed, no plane.  The faulted run
    # consumes the identical entropy stream (injection never draws from
    # process entropy), so this is the exact no-fault twin.
    try:
        kernel = Kernel(seed)
        binary = build(source, scheme, name="chaos")
        process, _ = deploy(kernel, binary, scheme, cycle_limit=cycle_limit)
        result = process.run()
    except Exception as error:
        raise CampaignError(f"reference run failed to deploy: {error!r}")
    if result.state != "exited":
        raise CampaignError(
            f"reference run did not exit cleanly: state={result.state} "
            f"signal={result.signal}"
        )
    reference = _chaos_fingerprint(kernel, process, result)

    plane = FaultPlane(schedule)
    auditor = CanaryAuditor(plane) if audit else None
    run = ChaosRun(
        seed=seed,
        scheme=scheme,
        description=schedule.description,
        outcome="",
        expected=schedule.expected,
        case=case,
    )
    try:
        kernel = Kernel(seed, fault_plane=plane)
        binary = build(source, scheme, name="chaos")
        process, _ = deploy(
            kernel, binary, scheme, cycle_limit=cycle_limit,
            fast=auditor is None,
        )
    except DegradedError as error:
        # Fail-closed at install time (e.g. a persistently torn publish).
        run.outcome = "degraded"
        run.detail = str(error)
    else:
        if auditor is not None:
            auditor.attach(process)
        _apply_tls_flips(process, plane)
        result = process.run()
        if result.smashed:
            run.outcome = "detected"
            run.detail = str(result.crash)
        elif isinstance(result.crash, DegradedError):
            run.outcome = "degraded"
            run.detail = str(result.crash)
        elif result.state == "exited":
            observed = _chaos_fingerprint(kernel, process, result)
            if observed == reference:
                run.outcome = "degraded" if plane.events else "identical"
            else:
                run.outcome = "divergence"
                run.detail = "; ".join(
                    f"{key}: {reference[key]!r} != {observed[key]!r}"
                    for key in reference
                    if reference[key] != observed[key]
                )
        else:
            run.outcome = "divergence"
            run.detail = (
                f"untyped crash: state={result.state} signal={result.signal} "
                f"crash={result.crash!r}"
            )

    run.events = sorted(plane.event_kinds())
    run.delivered = plane.delivered_counts()
    run.absorbed = len(plane.absorbed)

    if run.outcome == "divergence":
        run.violations.append(
            f"behaviour diverged without a typed outcome: {run.detail}"
        )
    elif run.outcome not in run.expected and run.outcome != "identical":
        run.violations.append(
            f"outcome {run.outcome!r} not among expected "
            f"{'/'.join(run.expected)} ({run.detail or 'no detail'})"
        )
    if auditor is not None:
        run.violations.extend(auditor.findings(require_store=require_store))
    return run


def _check_chaos_seed(
    seed: int,
    *,
    scheme_filter: Optional[frozenset] = None,
    retries: int = 1,
    cycle_limit: int = CHAOS_CYCLE_LIMIT,
    audit: bool = True,
) -> Tuple[str, Any]:
    """Run one campaign seed with retries; the unit of campaign work.

    Returns ``("skip", None)`` when the scheme filter gates the seed,
    ``("run", ChaosRun)`` for a completed case, or ``("infra", detail)``
    after the retry budget is spent on :class:`CampaignError`.  Both the
    serial loop and the parallel shard worker call this, so the two
    paths classify (and count) identically.
    """
    spec = schedule = None
    if scheme_filter is not None:
        spec, _ = generate_fuzz_program(seed)
        schedule = generate_fault_schedule(seed, spec)
        if schedule.scheme not in scheme_filter:
            return ("skip", None)
    last_error = ""
    for _attempt in range(1 + max(0, retries)):
        try:
            run = run_chaos_case(
                seed, spec=spec, schedule=schedule,
                cycle_limit=cycle_limit, audit=audit,
            )
        except CampaignError as error:
            last_error = str(error)
            continue
        telemetry.count("chaos_cases_total", help="chaos cases completed")
        telemetry.count(
            f"chaos_outcome_{run.outcome.replace('-', '_')}_total",
            help="chaos cases by outcome",
        )
        if not run.ok:
            telemetry.count(
                "chaos_violations_total", len(run.violations),
                help="chaos invariant violations",
            )
        return ("run", run)
    return ("infra", last_error)


def _chaos_shard_worker(config: Dict[str, Any], seeds, attempt: int):
    """Process-pool entry point: run one shard's chaos seeds.

    Module-level (picklable by reference).  Returns plain data — each
    seed's classification in artifact form plus the telemetry delta
    accumulated while running the shard.
    """
    schemes = config["schemes"]
    scheme_filter = frozenset(schemes) if schemes else None
    before = telemetry.snapshot()
    cases = []
    for seed in seeds:
        kind, payload = _check_chaos_seed(
            seed,
            scheme_filter=scheme_filter,
            retries=config["retries"],
            cycle_limit=config["cycle_limit"],
            audit=config["audit"],
        )
        cases.append({
            "seed": seed,
            "kind": kind,
            "run": payload.to_json() if kind == "run" else None,
            "detail": payload if kind == "infra" else "",
        })
    return {"cases": cases, "telemetry": telemetry.delta(before)}


def _finalize(report: ChaosReport) -> ChaosReport:
    """Impose the canonical (seed) order both execution paths share."""
    report.runs.sort(key=lambda run: (run.seed, run.case))
    report.infra_errors.sort()
    return report


def run_campaign(
    budget: int = 50,
    *,
    base_seed: int = 2018,
    retries: int = 1,
    shard_retries: int = 1,
    deadline: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    schemes: Optional[Tuple[str, ...]] = None,
    cycle_limit: int = CHAOS_CYCLE_LIMIT,
    audit: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> ChaosReport:
    """Run ``budget`` seeded chaos cases (seeds ``base_seed + i``).

    * ``schemes`` — optional filter: only run the schedules targeting
      these schemes (the per-scheme CI smoke jobs).  Skipped seeds keep
      their place in the stream, so a filtered campaign's surviving
      cases are bit-identical to the same seeds in the full campaign.
    * ``retries`` — re-attempts per case on :class:`CampaignError` before
      recording an infrastructure error (never retried: invariant
      violations, which are deterministic findings).
    * ``shard_retries`` — re-queues per lost *shard* (``jobs > 1``)
      before its seeds are recorded as infrastructure errors; shards
      that needed more than one attempt land in
      ``report.shard_attempts``.
    * ``deadline`` — wall-clock budget in seconds; exceeding it stops the
      campaign with ``timed_out`` set (exit code 4 at the CLI).
    * ``checkpoint_path``/``resume`` — JSON checkpoint written after every
      case (``jobs > 1``: after every shard); resuming skips seeds
      already completed.
    * ``jobs`` — process-pool width.  The shard plan depends only on the
      budget and the report is finalised in seed order, so any ``jobs``
      value produces a bit-identical report.  A shard whose worker dies
      is retried once, then every seed it carried is recorded as an
      infrastructure error — never silently dropped.
    """
    report = ChaosReport(budget=budget, base_seed=base_seed)
    if resume and checkpoint_path:
        try:
            with open(checkpoint_path, "r", encoding="utf-8") as handle:
                report = ChaosReport.from_json(json.load(handle))
            report.budget = budget
            report.base_seed = base_seed
            report.timed_out = False
            if progress:
                progress(f"resumed: {len(report.runs)} case(s) already done")
        except FileNotFoundError:
            pass

    scheme_filter = frozenset(schemes) if schemes else None
    done = report.completed_seeds

    def checkpoint() -> None:
        if checkpoint_path:
            with open(checkpoint_path, "w", encoding="utf-8") as handle:
                json.dump(report.to_json(), handle, indent=2)

    if jobs > 1:
        return _run_campaign_parallel(
            report, jobs=jobs, retries=retries,
            shard_retries=shard_retries, deadline=deadline,
            scheme_filter=scheme_filter, cycle_limit=cycle_limit,
            audit=audit, progress=progress, checkpoint=checkpoint,
        )

    started = time.monotonic()
    for index in range(budget):
        seed = base_seed + index
        if seed in done:
            continue
        if deadline is not None and time.monotonic() - started > deadline:
            report.timed_out = True
            if progress:
                progress(f"deadline hit after {len(report.runs)} case(s)")
            break
        kind, payload = _check_chaos_seed(
            seed, scheme_filter=scheme_filter, retries=retries,
            cycle_limit=cycle_limit, audit=audit,
        )
        if kind == "skip":
            continue
        if kind == "run":
            report.runs.append(payload)
            if not payload.ok and progress:
                progress(f"seed {seed}: {len(payload.violations)} violation(s)")
        else:
            report.infra_errors.append((seed, payload))
            if progress:
                progress(f"seed {seed}: infrastructure error: {payload}")
        checkpoint()
        if progress and (index + 1) % 25 == 0:
            progress(f"{index + 1}/{budget} schedules done")
    return _finalize(report)


def _run_campaign_parallel(
    report: ChaosReport,
    *,
    jobs: int,
    retries: int,
    shard_retries: int,
    deadline: Optional[float],
    scheme_filter: Optional[frozenset],
    cycle_limit: int,
    audit: bool,
    progress: Optional[Callable[[str], None]],
    checkpoint: Callable[[], None],
) -> ChaosReport:
    """Sharded branch of :func:`run_campaign` (same report, any jobs)."""
    from ..parallel import STATUS_FAILED, plan_shards, run_shards

    config = {
        "schemes": sorted(scheme_filter) if scheme_filter else None,
        "retries": retries,
        "cycle_limit": cycle_limit,
        "audit": audit,
    }
    shards = plan_shards(
        report.base_seed, report.budget, skip=report.completed_seeds
    )
    deltas: Dict[int, Dict[str, Any]] = {}

    def merge(outcome) -> None:
        if outcome.attempts > 1:
            first, last = outcome.shard.seeds[0], outcome.shard.seeds[-1]
            report.shard_attempts[f"{first}..{last}"] = outcome.attempts
        if outcome.ok:
            for item in outcome.value["cases"]:
                if item["kind"] == "run":
                    run = ChaosRun.from_json(item["run"])
                    report.runs.append(run)
                    if not run.ok and progress:
                        progress(
                            f"seed {run.seed}: "
                            f"{len(run.violations)} violation(s)"
                        )
                elif item["kind"] == "infra":
                    report.infra_errors.append((item["seed"], item["detail"]))
                    if progress:
                        progress(
                            f"seed {item['seed']}: infrastructure error: "
                            f"{item['detail']}"
                        )
            deltas[outcome.shard.index] = outcome.value["telemetry"]
        elif outcome.status == STATUS_FAILED:
            for seed in outcome.shard.seeds:
                report.infra_errors.append((
                    seed,
                    f"worker lost shard {outcome.shard.index} after "
                    f"{outcome.attempts} attempt(s): {outcome.error}",
                ))
            if progress:
                progress(
                    f"shard {outcome.shard.index}: worker lost "
                    f"({outcome.error})"
                )
        # skipped shards (deadline) stay absent: their seeds are
        # resumable, exactly like seeds after a serial deadline break.
        checkpoint()

    _outcomes, timed_out = run_shards(
        _chaos_shard_worker, config, shards, jobs=jobs,
        retries=shard_retries, deadline=deadline, on_result=merge,
    )
    report.timed_out = timed_out
    if timed_out and progress:
        progress(f"deadline hit after {len(report.runs)} case(s)")
    merged = telemetry.Snapshot()
    for index in sorted(deltas):
        merged = merged.merge(telemetry.Snapshot(deltas[index]))
    if merged:
        telemetry.absorb(merged)
    _finalize(report)
    checkpoint()
    return report


def replay_case(seed: int, *, audit: bool = True) -> ChaosRun:
    """Re-derive and re-run one campaign case bit-identically."""
    return run_chaos_case(seed, audit=audit)


# -- canned invariant cases ---------------------------------------------------
#
# Hand-written (program, schedule) pairs that deterministically reach each
# degradation path.  They back three consumers: the conformance contract's
# sixth clause, the chaos mutation self-check, and the corpus reproducers.


def _nt_spec() -> ProgramSpec:
    """A forkless program with several protected NT prologue executions."""
    worker = FunctionSpec(
        name="ntw", buffer_bytes=32, inner_iterations=3, ops=[0, 1]
    )
    return ProgramSpec(
        functions=[worker], main_calls=["ntw", "ntw"], outer_iterations=2
    )


def _fork_spec() -> ProgramSpec:
    """A program whose main loop forks a protected worker."""
    worker = FunctionSpec(
        name="fkw", buffer_bytes=16, inner_iterations=2, ops=[0]
    )
    return ProgramSpec(
        functions=[worker],
        main_calls=["fkw"],
        outer_iterations=1,
        use_fork=True,
        fork_callee="fkw",
    )


@dataclass
class ChaosCase:
    """One canned (program, schedule) invariant case."""

    name: str
    spec: ProgramSpec
    schedule: FaultSchedule
    #: The case is known to execute protected prologues, so the auditor
    #: must see at least one canary store.
    require_store: bool = False


def canned_invariant_cases() -> List[ChaosCase]:
    """The deterministic reproducers replayed on every fuzz/chaos run."""
    return [
        ChaosCase(
            name="nt-rdrand-starved",
            spec=_nt_spec(),
            schedule=FaultSchedule(
                scheme="pssp-nt-hardened",
                events=[
                    FaultEvent("rdrand-fail", at=SELFTEST_DRAWS, count=64)
                ],
                expected=("degraded",),
                description="rdrand starved after self-test: every prologue "
                            "must take the shadow-pair fallback",
            ),
            require_store=True,
        ),
        ChaosCase(
            name="nt-entropy-stuck",
            spec=_nt_spec(),
            schedule=FaultSchedule(
                scheme="pssp-nt-hardened",
                events=[
                    FaultEvent(
                        "rdrand-stuck", at=0, count=64,
                        value=0x5A5A_5A5A_5A5A_5A5B,
                    )
                ],
                expected=("degraded",),
                description="stuck DRBG from boot: the self-test must "
                            "quarantine rdrand before a prologue trusts it",
            ),
            require_store=True,
        ),
        ChaosCase(
            name="pssp-fork-eagain",
            spec=_fork_spec(),
            schedule=FaultSchedule(
                scheme="pssp",
                events=[
                    FaultEvent(
                        "fork-eagain", at=0, count=FORK_RETRY_LIMIT - 1
                    )
                ],
                expected=("identical",),
                description="transient fork EAGAIN burst one short of the "
                            "budget: the wrapper must absorb it",
            ),
        ),
        ChaosCase(
            name="pssp-torn-publish",
            spec=_nt_spec(),
            schedule=FaultSchedule(
                scheme="pssp",
                events=[FaultEvent("tls-torn", at=0, count=48)],
                expected=("degraded",),
                description="every shadow-half write torn: publish must fail "
                            "closed, never expose a mixed pair",
            ),
        ),
    ]


def run_canned_case(case: ChaosCase, *, seed: int = 0) -> ChaosRun:
    """Run one canned case (deterministic; ``seed`` picks the kernel)."""
    return run_chaos_case(
        seed,
        spec=case.spec,
        schedule=case.schedule,
        require_store=case.require_store,
        case=case.name,
    )
