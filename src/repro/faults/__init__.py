"""Seeded, replayable fault injection + graceful-degradation policy.

The paper's schemes lean on environmental primitives that real hardware
and kernels do *not* guarantee: ``rdrand`` may return CF=0 or stuck
output, ``fork`` may transiently fail with EAGAIN, and the TLS shadow
pair is two separate words a preemption can tear.  This package makes
those failures first-class and deterministic:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`: a JSON
  round-trippable list of fault windows (which device, which attempt
  indices, which value) plus the *expected* auditable outcomes.
* :mod:`repro.faults.plane` — :class:`FaultPlane`: the per-kernel
  injection point the devices/kernel consult, plus the delivery /
  absorption / degradation-event ledger.
* :mod:`repro.faults.policy` — the graceful-degradation budgets and the
  hardened helpers (verified shadow-pair publish, fork retry wrapper,
  boot-time rdrand self-test) the runtimes route through.
* :mod:`repro.faults.campaign` — the chaos runner behind
  ``python -m repro chaos``: reference-vs-faulted differential runs, the
  weak-canary auditor, outcome classification, checkpoint/resume.
* :mod:`repro.faults.chaos_mutants` — reversible "degradation disabled"
  defects proving the campaign detects a silently weakened runtime.

Design rule: injected faults never consume *process* entropy (stuck
values come from the schedule itself), so a faulted run stays
entropy-stream-aligned with its fault-free reference and whole campaigns
replay bit-identically from one seed.
"""

from .plane import FaultPlane
from .policy import (
    FORK_RETRY_LIMIT,
    RDRAND_RETRY_LIMIT,
    SELFTEST_DRAWS,
    TLS_PUBLISH_ATTEMPTS,
    fork_with_retry,
    publish_shadow_pair,
    rdrand_selftest,
)
from .schedule import CHAOS_SCHEMES, FaultEvent, FaultSchedule, generate_fault_schedule

#: Campaign/mutant symbols are exposed lazily (PEP 562): the campaign
#: module imports the deployment stack, which itself imports this package
#: for the policy helpers — eager re-export here would be a cycle.
_LAZY = {
    "CHAOS_CYCLE_LIMIT": "campaign",
    "ChaosReport": "campaign",
    "ChaosRun": "campaign",
    "canned_invariant_cases": "campaign",
    "replay_case": "campaign",
    "run_campaign": "campaign",
    "run_chaos_case": "campaign",
    "CHAOS_MUTANTS": "chaos_mutants",
    "chaos_kill_report": "chaos_mutants",
    "chaos_kill_report_ok": "chaos_mutants",
    "render_chaos_kill_report": "chaos_mutants",
}


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CHAOS_CYCLE_LIMIT",
    "CHAOS_MUTANTS",
    "CHAOS_SCHEMES",
    "ChaosReport",
    "ChaosRun",
    "FORK_RETRY_LIMIT",
    "FaultEvent",
    "FaultPlane",
    "FaultSchedule",
    "RDRAND_RETRY_LIMIT",
    "SELFTEST_DRAWS",
    "TLS_PUBLISH_ATTEMPTS",
    "canned_invariant_cases",
    "chaos_kill_report",
    "chaos_kill_report_ok",
    "fork_with_retry",
    "generate_fault_schedule",
    "publish_shadow_pair",
    "rdrand_selftest",
    "render_chaos_kill_report",
    "replay_case",
    "run_campaign",
    "run_chaos_case",
]
