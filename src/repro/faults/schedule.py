"""Fault schedules: what to inject, when, and what outcomes are legal.

A :class:`FaultSchedule` is pure data — JSON round-trippable so the
regression corpus can store reproducers and campaigns can replay
bit-identically.  Windows are expressed in *attempt indices* of the
targeted primitive (the plane counts rdrand reads, fork calls, and
shadow-half writes), not in wall-clock or cycle time: attempt streams
are deterministic, so a window fires at exactly the same point on every
replay.

:func:`generate_fault_schedule` derives one scenario per campaign seed
from its own PRNG — deliberately separate from the program-generation
and kernel entropy streams, so fault placement never perturbs what the
program or the canaries would have been.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .policy import (
    FORK_RETRY_LIMIT,
    RDRAND_RETRY_LIMIT,
    SELFTEST_DRAWS,
    TLS_PUBLISH_ATTEMPTS,
)

#: Schemes the chaos campaign samples from.  One representative per
#: degradation surface: SSP (fault-indifferent control), both P-SSP
#: preload modes (shadow-pair publish + fork refresh), hardened NT
#: (rdrand retry/fallback), and OWF (rdtsc nonce).
CHAOS_SCHEMES: Tuple[str, ...] = (
    "ssp",
    "pssp",
    "pssp-binary",
    "pssp-nt-hardened",
    "pssp-owf",
)

#: Fault kinds a schedule may carry (the taxonomy in docs/faults.md).
FAULT_KINDS = (
    "rdrand-fail",    # CF=0 for `count` consecutive read attempts
    "rdrand-stuck",   # CF=1 but the same `value` for `count` attempts
    "fork-eagain",    # kernel.fork raises EAGAIN for `count` attempts
    "tls-torn",       # `count` consecutive shadow-half writes are lost
    "tls-flip",       # one bit flip in a TLS shadow slot, post-install
    "rdtsc-skew",     # rdtsc reads shifted by `value`
    "rdtsc-stuck",    # rdtsc reads frozen at `value` for `count` reads
)


@dataclass
class FaultEvent:
    """One injection window against one primitive."""

    kind: str
    #: First attempt index of the window (plane-counted, 0-based).
    at: int = 0
    #: Window length in attempts (ignored by ``tls-flip``).
    count: int = 1
    #: Payload: stuck value, skew delta, ... depending on ``kind``.
    value: int = 0
    #: ``tls-flip`` target: "shadow_c0" | "shadow_c1".
    slot: str = ""
    #: ``tls-flip`` bit position.
    bit: int = 0

    def covers(self, index: int) -> bool:
        return self.at <= index < self.at + self.count

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "at": self.at, "count": self.count}
        if self.value:
            data["value"] = self.value
        if self.slot:
            data["slot"] = self.slot
        if self.bit:
            data["bit"] = self.bit
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            at=int(data.get("at", 0)),
            count=int(data.get("count", 1)),
            value=int(data.get("value", 0)),
            slot=data.get("slot", ""),
            bit=int(data.get("bit", 0)),
        )


@dataclass
class FaultSchedule:
    """A scheme, its injection windows, and the legal outcomes."""

    scheme: str
    events: List[FaultEvent] = field(default_factory=list)
    #: Outcomes the fault-outcome invariant accepts for this schedule
    #: (subset of {"identical", "detected", "degraded"}).  "identical" is
    #: additionally always legal when zero faults were delivered — the
    #: program may simply never reach the injection point.
    expected: Tuple[str, ...] = ("identical",)
    description: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "events": [event.to_json() for event in self.events],
            "expected": list(self.expected),
            "description": self.description,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultSchedule":
        return cls(
            scheme=data["scheme"],
            events=[FaultEvent.from_json(e) for e in data.get("events", [])],
            expected=tuple(data.get("expected", ("identical",))),
            description=data.get("description", ""),
        )


def _scenarios(uses_fork: bool) -> List[str]:
    scenarios = [
        "rdtsc-skew",
        "rdtsc-stuck",
        "tls-flip",
        "rdrand-transient",
        "rdrand-exhaust",
        "entropy-stuck",
        "tear-transient",
        "tear-persistent",
    ]
    if uses_fork:
        scenarios += ["fork-transient", "fork-exhaust"]
    return scenarios


def generate_fault_schedule(seed: int, spec) -> FaultSchedule:
    """Deterministically derive one fault scenario for campaign ``seed``.

    ``spec`` is the generated :class:`ProgramSpec` (fork scenarios only
    make sense for forking programs).  Window maths below respects the
    degradation budgets: "transient" windows fit inside a retry budget
    (legal outcome: identical behaviour), "exhaust"/"persistent" windows
    overrun it (legal outcome: typed degradation).
    """
    rng = random.Random(f"chaos-{seed}")
    scenario = rng.choice(_scenarios(spec.uses_fork))

    if scenario == "rdtsc-skew":
        return FaultSchedule(
            scheme=rng.choice(("pssp-owf", "pssp", "ssp")),
            events=[FaultEvent("rdtsc-skew", value=rng.getrandbits(32) | 1)],
            expected=("identical",),
            description="constant TSC skew: OWF nonce shifts, behaviour must not",
        )
    if scenario == "rdtsc-stuck":
        return FaultSchedule(
            scheme=rng.choice(("pssp-owf", "ssp")),
            events=[
                FaultEvent(
                    "rdtsc-stuck",
                    at=rng.randrange(4),
                    count=2 + rng.randrange(6),
                    value=rng.getrandbits(40),
                )
            ],
            expected=("identical",),
            description="frozen TSC window: nonce repeats, behaviour must not",
        )
    if scenario == "tls-flip":
        return FaultSchedule(
            scheme=rng.choice(("pssp", "pssp-binary", "ssp")),
            events=[
                FaultEvent(
                    "tls-flip",
                    slot=rng.choice(("shadow_c0", "shadow_c1")),
                    bit=rng.randrange(64),
                )
            ],
            expected=("detected", "identical"),
            description="post-install bit flip in a TLS shadow slot",
        )
    if scenario == "rdrand-transient":
        # The window always opens on the first attempt of some prologue
        # (a prologue ends at its first CF=1), so count <= limit-1 is
        # absorbed by a single retry loop.
        return FaultSchedule(
            scheme="pssp-nt-hardened",
            events=[
                FaultEvent(
                    "rdrand-fail",
                    at=SELFTEST_DRAWS + rng.randrange(24),
                    count=1 + rng.randrange(RDRAND_RETRY_LIMIT - 1),
                )
            ],
            expected=("identical",),
            description="transient rdrand CF=0 burst within the retry budget",
        )
    if scenario == "rdrand-exhaust":
        return FaultSchedule(
            scheme="pssp-nt-hardened",
            events=[
                FaultEvent(
                    "rdrand-fail",
                    at=SELFTEST_DRAWS + rng.randrange(24),
                    count=RDRAND_RETRY_LIMIT + rng.randrange(RDRAND_RETRY_LIMIT),
                )
            ],
            expected=("degraded",),
            description="rdrand starved past the retry budget: shadow fallback",
        )
    if scenario == "entropy-stuck":
        return FaultSchedule(
            scheme="pssp-nt-hardened",
            events=[
                FaultEvent(
                    "rdrand-stuck",
                    at=0,
                    count=SELFTEST_DRAWS + rng.randrange(16),
                    value=rng.getrandbits(64) | 1,
                )
            ],
            expected=("degraded",),
            description="stuck DRBG from boot: self-test must quarantine rdrand",
        )
    if scenario == "tear-transient":
        # Up to 2 consecutive torn half-writes: with 3 write-verify
        # rounds (6 half-writes) the publish always repairs in-budget.
        return FaultSchedule(
            scheme=rng.choice(("pssp", "pssp-binary")),
            events=[
                FaultEvent(
                    "tls-torn", at=rng.randrange(2), count=1 + rng.randrange(2)
                )
            ],
            expected=("identical",),
            description="torn shadow-half writes repaired by publish verify",
        )
    if scenario == "tear-persistent":
        return FaultSchedule(
            scheme=rng.choice(("pssp", "pssp-binary")),
            events=[FaultEvent("tls-torn", at=0, count=48)],
            expected=("degraded",),
            description="every shadow-half write torn: publish must fail closed",
        )
    if scenario == "fork-transient":
        return FaultSchedule(
            scheme=rng.choice(("pssp", "pssp-binary")),
            events=[
                FaultEvent(
                    "fork-eagain",
                    at=rng.randrange(2),
                    count=1 + rng.randrange(FORK_RETRY_LIMIT - 1),
                )
            ],
            expected=("identical",),
            description="transient fork EAGAIN within the retry budget",
        )
    # fork-exhaust
    return FaultSchedule(
        scheme=rng.choice(("pssp", "pssp-binary")),
        events=[
            FaultEvent(
                "fork-eagain",
                at=rng.randrange(2),
                count=FORK_RETRY_LIMIT + rng.randrange(4),
            )
        ],
        expected=("degraded",),
        description="fork EAGAIN past the retry budget: wrapper fails closed",
    )


# ---------------------------------------------------------------------------
# Fleet chaos-under-traffic schedules.
# ---------------------------------------------------------------------------

#: A clean install publishes the shadow pair in one verify round (two
#: half-writes); traffic-time tear windows open past the worst-case boot
#: publish so the *parent* always boots healthy and degradation lands on
#: fork-time refreshes, where the supervisor can heal it.
BOOT_TLS_WRITES = 2 * TLS_PUBLISH_ATTEMPTS

#: Traffic-time scenarios per degradation surface.  Scheme-appropriate
#: only: preload schemes degrade via fork/publish, the hardened NT
#: scheme via rdrand, and everything else only sees behaviour-neutral
#: timer skew or absorbable fork EAGAIN.  ``tls-flip`` is deliberately
#: absent — a post-install flip is sabotage of state, not an
#: environmental fault a supervisor should heal.
FLEET_FAULT_SCENARIOS: Dict[str, Tuple[str, ...]] = {
    "preload": (
        "none", "fork-transient", "fork-burst", "tear-transient", "tear-storm",
    ),
    "rdrand": (
        "none", "rdrand-transient", "rdrand-starve",
        "entropy-stuck-boot", "entropy-stuck-traffic",
    ),
    "timer": ("none", "rdtsc-skew", "fork-transient"),
}


def fleet_fault_surface(scheme: str) -> str:
    """Map a scheme onto its fleet degradation surface."""
    if scheme in ("pssp", "pssp-binary"):
        return "preload"
    if scheme == "pssp-nt-hardened":
        return "rdrand"
    return "timer"


def generate_fleet_fault_schedule(
    chaos_seed: int, slice_seed: int, scheme: str
) -> FaultSchedule:
    """Derive one traffic-time fault scenario for a fleet slice.

    The stream is keyed on ``(chaos_seed, slice_seed, scheme)`` and
    nothing else, so a chaos campaign replays bit-identically under any
    ``--jobs`` split and any resume boundary.  Windows are placed past
    boot-time consumption (:data:`BOOT_TLS_WRITES` shadow half-writes,
    :data:`SELFTEST_DRAWS` self-test draws) so faults land under traffic
    — except ``entropy-stuck-boot``, which deliberately covers the
    install self-test to exercise the boot-quarantine fallback story.
    """
    rng = random.Random(f"fleet-chaos-{chaos_seed}-{slice_seed}-{scheme}")
    surface = fleet_fault_surface(scheme)
    scenario = rng.choice(FLEET_FAULT_SCENARIOS[surface])

    if scenario == "none":
        return FaultSchedule(
            scheme=scheme,
            events=[],
            expected=("identical",),
            description="control slice: plane armed, nothing scheduled",
        )
    if scenario == "fork-transient":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "fork-eagain",
                    at=rng.randrange(200),
                    count=1 + rng.randrange(FORK_RETRY_LIMIT - 1),
                )
            ],
            expected=("identical",),
            description="transient fork EAGAIN burst absorbed by the "
                        "supervisor's retry budget",
        )
    if scenario == "fork-burst":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "fork-eagain",
                    at=rng.randrange(200),
                    count=FORK_RETRY_LIMIT * (2 + rng.randrange(3)),
                )
            ],
            expected=("degraded",),
            description="fork EAGAIN storm past the retry budget: parent "
                        "restarts, requests quarantined fail-closed",
        )
    if scenario == "tear-transient":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "tls-torn",
                    at=BOOT_TLS_WRITES + rng.randrange(64),
                    count=1 + rng.randrange(2),
                )
            ],
            expected=("identical",),
            description="torn shadow-half writes under traffic repaired "
                        "by publish verify",
        )
    if scenario == "tear-storm":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "tls-torn",
                    at=BOOT_TLS_WRITES + rng.randrange(32),
                    count=96 + rng.randrange(96),
                )
            ],
            expected=("degraded",),
            description="every fork-refresh publish torn for a long window: "
                        "heal from the boot image, then quarantine",
        )
    if scenario == "rdrand-transient":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "rdrand-fail",
                    at=SELFTEST_DRAWS + rng.randrange(96),
                    count=1 + rng.randrange(RDRAND_RETRY_LIMIT - 1),
                )
            ],
            expected=("identical",),
            description="transient rdrand CF=0 burst absorbed by the "
                        "prologue retry loop under traffic",
        )
    if scenario == "rdrand-starve":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "rdrand-fail",
                    at=SELFTEST_DRAWS + rng.randrange(96),
                    count=RDRAND_RETRY_LIMIT * (4 + rng.randrange(8)),
                )
            ],
            expected=("degraded",),
            description="rdrand starved past the retry budget under "
                        "traffic: shadow-pair fallback per prologue",
        )
    if scenario == "entropy-stuck-boot":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "rdrand-stuck",
                    at=0,
                    count=SELFTEST_DRAWS + rng.randrange(8),
                    value=rng.getrandbits(64) | 1,
                )
            ],
            expected=("degraded",),
            description="stuck DRBG from boot: the install self-test "
                        "quarantines rdrand, the slice runs on fallback",
        )
    if scenario == "entropy-stuck-traffic":
        return FaultSchedule(
            scheme=scheme,
            events=[
                FaultEvent(
                    "rdrand-stuck",
                    at=SELFTEST_DRAWS + rng.randrange(64),
                    count=384 + rng.randrange(128),
                    value=rng.getrandbits(64) | 1,
                )
            ],
            expected=("degraded",),
            description="DRBG sticks mid-traffic: the periodic health "
                        "probe quarantines, the supervisor heals from the "
                        "boot image until its restart budget runs out",
        )
    # rdtsc-skew
    return FaultSchedule(
        scheme=scheme,
        events=[FaultEvent("rdtsc-skew", value=rng.getrandbits(32) | 1)],
        expected=("identical",),
        description="constant TSC skew under traffic: nonce shifts, "
                    "behaviour must not",
    )
