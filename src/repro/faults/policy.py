"""Graceful-degradation policy: budgets and hardened runtime helpers.

Every helper here enforces the same invariant: an environmental failure
is either *absorbed* within a bounded budget (behaviour identical, the
absorption recorded on the plane) or surfaces as a typed
:class:`~repro.errors.DegradedError` — never as a silently predictable
or half-written canary.

The helpers take the fault plane as an optional collaborator; with no
plane installed they are plain fast paths (one fork attempt, one clean
publish, a self-test that trivially passes), so production deployments
pay nothing for the chaos machinery.
"""

from __future__ import annotations

from .. import telemetry
from ..errors import DegradedError, TransientForkFailure

#: Prologue/self-test budget: consecutive ``rdrand`` CF=0 results before
#: the hardened NT prologue abandons per-call draws and falls back to the
#: TLS shadow pair (with a ``nop`` pause between attempts, mirroring
#: Intel's recommended retry-with-backoff loop).
RDRAND_RETRY_LIMIT = 8

#: ``fork`` EAGAIN absorptions before the wrapper fails closed.
FORK_RETRY_LIMIT = 4

#: Write-verify-repair rounds for the two-word shadow-pair publish.
TLS_PUBLISH_ATTEMPTS = 3

#: Boot-time rdrand health probe: draws taken by the self-test.
SELFTEST_DRAWS = 8

#: Minimum distinct values among successful self-test draws; a stuck
#: DRBG returns one value forever, a healthy one collides with
#: probability ~2^-58 over eight 64-bit draws.
SELFTEST_MIN_DISTINCT = 3

#: Identical fresh-path canary values tolerated by the campaign auditor
#: before it declares the entropy source silently stuck.
AUDIT_REPEAT_THRESHOLD = 3

#: Fleet supervision: parent restarts from the boot image tolerated per
#: slice before the supervisor stops healing and fails closed (every
#: later request on the slice is quarantined by the breaker instead).
PARENT_RESTART_BUDGET = 4

#: Fleet supervision: served requests between parent entropy health
#: probes (a :func:`rdrand_selftest` re-run; armed only when a fault
#: plane is attached, so fault-free fleets never pay for it).
ENTROPY_PROBE_INTERVAL = 64


def tls_shadow_write(tls, slot: str, value: int, plane=None) -> bool:
    """Write one half of the shadow pair; return False when torn.

    All shadow-pair stores funnel through here so the plane has a single
    choke point for torn-write injection.  A torn write leaves the slot's
    previous contents in place (the preempted-before-store model).
    """
    verdict = plane.tls_write_verdict() if plane is not None else None
    if verdict == "torn":
        return False
    setattr(tls, slot, value)
    return True


def publish_shadow_pair(tls, c0: int, c1: int, *, plane=None) -> None:
    """Atomically-observable publish of the (C0, C1) shadow pair.

    The two halves cannot be written in one instruction, so publish is
    write-both / verify / repair, bounded by :data:`TLS_PUBLISH_ATTEMPTS`.
    Until the verify read-back succeeds the *old* pair stays the
    authoritative one as far as callers are concerned; a persistently
    torn publish fails closed with :class:`DegradedError` rather than
    leaving a mixed-generation pair observable.
    """
    for attempt in range(TLS_PUBLISH_ATTEMPTS):
        tls_shadow_write(tls, "shadow_c0", c0, plane)
        tls_shadow_write(tls, "shadow_c1", c1, plane)
        if tls.shadow_c0 == c0 and tls.shadow_c1 == c1:
            if attempt and plane is not None:
                plane.record_absorbed(
                    "tls-torn", f"publish repaired after {attempt} torn attempt(s)"
                )
            return
    if plane is not None:
        plane.record_event(
            "shadow-publish-failed",
            f"pair still torn after {TLS_PUBLISH_ATTEMPTS} attempts",
        )
    telemetry.count("degradations_total", help="DegradedError fail-closed aborts")
    telemetry.event("degradation", reason="shadow-publish-failed")
    raise DegradedError(
        "shadow canary pair publish remained torn",
        policy=f"fail closed after {TLS_PUBLISH_ATTEMPTS} write-verify rounds",
    )


def fork_with_retry(parent):
    """``fork`` wrapper: absorb transient EAGAIN, never observe a stale pair.

    Retries :func:`Kernel.fork` up to :data:`FORK_RETRY_LIMIT` times.  The
    kernel unregisters a child whose fork hooks fail (see
    ``Kernel.fork``), so no retry — and no caller — can ever observe a
    half-initialised child or a child with the parent's stale shadow
    pair.  Exhausting the budget fails closed.

    Returns the child, or ``None`` to model the raw libc behaviour of
    surfacing ``-1``/EAGAIN to the program (the hardened implementation
    never does; the naive chaos mutant does).
    """
    kernel = parent.kernel
    plane = getattr(kernel, "fault_plane", None)
    last = None
    for attempt in range(FORK_RETRY_LIMIT):
        try:
            child = kernel.fork(parent)
        except TransientForkFailure as error:
            last = error
            continue
        if attempt and plane is not None:
            plane.record_absorbed(
                "fork-eagain", f"fork succeeded after {attempt} EAGAIN(s)"
            )
        return child
    if plane is not None:
        plane.record_event(
            "fork-exhausted", f"{FORK_RETRY_LIMIT} consecutive EAGAIN"
        )
    telemetry.count("degradations_total", help="DegradedError fail-closed aborts")
    telemetry.event("degradation", reason="fork-exhausted")
    raise DegradedError(
        f"fork still EAGAIN after {FORK_RETRY_LIMIT} attempts",
        policy="fail closed instead of running without a fresh shadow pair",
    ) from last


def rdrand_selftest(process) -> bool:
    """Boot-time entropy health probe (NIST SP 800-90B-style startup test).

    Draws :data:`SELFTEST_DRAWS` samples from the process's rdrand device;
    too few distinct values (stuck DRBG) or too many CF=0 failures
    quarantine the device — every later read fails, so hardened NT
    prologues deterministically take their shadow-pair fallback instead
    of storing attacker-predictable stuck canaries.  Records an
    ``entropy-degraded`` event on the plane when it trips.
    """
    device = getattr(process.cpu, "rdrand", None)
    if device is None:
        return True
    samples = [device.read() for _ in range(SELFTEST_DRAWS)]
    distinct = {value for value, ok in samples if ok}
    failures = sum(1 for _, ok in samples if not ok)
    healthy = len(distinct) >= SELFTEST_MIN_DISTINCT and failures <= SELFTEST_DRAWS // 2
    if not healthy:
        device.quarantined = True
        telemetry.count(
            "rdrand_quarantines_total", help="devices quarantined by self-test"
        )
        telemetry.event(
            "rdrand-quarantine",
            distinct=len(distinct),
            failures=failures,
        )
        plane = getattr(process.kernel, "fault_plane", None)
        if plane is not None:
            plane.record_event(
                "entropy-degraded",
                f"self-test: {len(distinct)} distinct value(s), "
                f"{failures}/{SELFTEST_DRAWS} failures — rdrand quarantined",
            )
    return healthy
