"""Planted degradation bugs the chaos campaign must catch (mutation kill).

The fault-outcome invariant is only as strong as its classifier and
auditor.  Each mutant here disables one graceful-degradation mechanism —
the hardened NT fallback, the fork retry wrapper, the publish
write-verify loop, the boot-time entropy self-test — and the self-check
proves the canned invariant cases flag the regression.  The same idiom
as :mod:`repro.fuzz.mutants`: ``install()`` returns an undo closure and
:func:`~repro.fuzz.mutants.planted` guarantees restoration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..compiler.passes.pssp_nt import PSSPNTHardenedPass, PSSPNTPass
from ..errors import CampaignError, TransientForkFailure
from ..fuzz.mutants import Mutant, planted
from . import policy as policy_module
from .campaign import ChaosCase, ChaosRun, canned_invariant_cases, run_canned_case


def _install_nt_fallback_disabled() -> Callable[[], None]:
    """The hardened NT prologue degenerates to the plain one.

    No retry loop, no shadow-pair fallback: a starved ``rdrand`` silently
    stores the (0, C) pair — the exact predictable-canary hole the
    hardened scheme exists to close.  Only the auditor can see it:
    behaviour stays identical because 0 XOR C still equals C.
    """
    original = PSSPNTHardenedPass.emit_prologue
    PSSPNTHardenedPass.emit_prologue = PSSPNTPass.emit_prologue

    def undo() -> None:
        PSSPNTHardenedPass.emit_prologue = original

    return undo


def _install_fork_retry_disabled() -> Callable[[], None]:
    """The fork wrapper degenerates to raw libc: one attempt, -1 on EAGAIN."""
    original = policy_module.fork_with_retry

    def naive(parent):
        try:
            return parent.kernel.fork(parent)
        except TransientForkFailure:
            return None

    policy_module.fork_with_retry = naive

    def undo() -> None:
        policy_module.fork_with_retry = original

    return undo


def _install_torn_repair_disabled() -> Callable[[], None]:
    """Publish writes both halves once and never verifies.

    A torn write now leaves a stale or mixed-generation pair observable
    instead of failing closed with a typed error.
    """
    original = policy_module.publish_shadow_pair

    def unverified(tls, c0, c1, *, plane=None):
        policy_module.tls_shadow_write(tls, "shadow_c0", c0, plane)
        policy_module.tls_shadow_write(tls, "shadow_c1", c1, plane)

    policy_module.publish_shadow_pair = unverified

    def undo() -> None:
        policy_module.publish_shadow_pair = original

    return undo


def _install_selftest_disabled() -> Callable[[], None]:
    """The boot-time entropy self-test trusts the device blindly."""
    original = policy_module.rdrand_selftest

    def trusting(process):
        return True

    policy_module.rdrand_selftest = trusting

    def undo() -> None:
        policy_module.rdrand_selftest = original

    return undo


#: Mutant → the canned cases that must flag it.
CHAOS_MUTANTS: List[Mutant] = [
    Mutant(
        "chaos-nt-fallback-disabled", "pass",
        "hardened NT prologue loses its retry loop and shadow fallback",
        "zero-canary auditor finding under nt-rdrand-starved",
        _install_nt_fallback_disabled,
    ),
    Mutant(
        "chaos-fork-retry-disabled", "runtime",
        "fork wrapper surfaces the first EAGAIN as -1",
        "behaviour divergence under pssp-fork-eagain",
        _install_fork_retry_disabled,
    ),
    Mutant(
        "chaos-torn-repair-disabled", "runtime",
        "shadow-pair publish skips the verify/repair loop",
        "unexpected outcome under pssp-torn-publish",
        _install_torn_repair_disabled,
    ),
    Mutant(
        "chaos-selftest-disabled", "runtime",
        "entropy self-test never quarantines a stuck rdrand",
        "stuck-canary auditor finding under nt-entropy-stuck",
        _install_selftest_disabled,
    ),
]

_KILL_CASES: Dict[str, List[str]] = {
    "chaos-nt-fallback-disabled": ["nt-rdrand-starved", "nt-entropy-stuck"],
    "chaos-fork-retry-disabled": ["pssp-fork-eagain"],
    "chaos-torn-repair-disabled": ["pssp-torn-publish"],
    "chaos-selftest-disabled": ["nt-entropy-stuck"],
}


@dataclass
class ChaosMutantVerdict:
    name: str
    killed: bool
    evidence: List[str]


def _run_cases(cases: List[ChaosCase]) -> "tuple[List[ChaosRun], List[str]]":
    runs: List[ChaosRun] = []
    evidence: List[str] = []
    for case in cases:
        try:
            run = run_canned_case(case)
        except CampaignError as error:
            evidence.append(f"{case.name}: infrastructure error: {error}")
            continue
        runs.append(run)
        for violation in run.violations:
            evidence.append(f"{case.name}: {violation}")
    return runs, evidence


def chaos_kill_report(
    mutants: Optional[List[Mutant]] = None,
) -> Dict[str, ChaosMutantVerdict]:
    """Baseline must be clean; every mutant must be flagged.

    As in :func:`repro.fuzz.mutants.mutation_kill_report`, the synthetic
    ``baseline`` entry inverts the meaning of ``killed``: a non-empty
    baseline evidence list is an oracle false positive.
    """
    cases = canned_invariant_cases()
    by_name = {case.name: case for case in cases}
    verdicts: Dict[str, ChaosMutantVerdict] = {}

    _, baseline_evidence = _run_cases(cases)
    verdicts["baseline"] = ChaosMutantVerdict(
        "baseline", bool(baseline_evidence), baseline_evidence[:6]
    )

    for mutant in mutants if mutants is not None else CHAOS_MUTANTS:
        targets = [by_name[name] for name in _KILL_CASES[mutant.name]]
        with planted(mutant):
            _, evidence = _run_cases(targets)
        verdicts[mutant.name] = ChaosMutantVerdict(
            mutant.name, bool(evidence), evidence[:6]
        )
    return verdicts


def render_chaos_kill_report(verdicts: Dict[str, ChaosMutantVerdict]) -> str:
    lines = [f"{'chaos mutant':32s} verdict"]
    ok = True
    for name, verdict in verdicts.items():
        if name == "baseline":
            good = not verdict.killed
            status = "clean" if good else "FALSE POSITIVE"
        else:
            good = verdict.killed
            status = "killed" if good else "SURVIVED"
        ok = ok and good
        lines.append(f"{name:32s} {status}")
        if name != "baseline" or not good:
            lines.extend(f"    {item}" for item in verdict.evidence[:3])
    lines.append("CHAOS MUTATION KILL OK" if ok else "DEGRADATION ORACLE TOO WEAK")
    return "\n".join(lines)


def chaos_kill_report_ok(verdicts: Dict[str, ChaosMutantVerdict]) -> bool:
    return all(
        (not v.killed) if name == "baseline" else v.killed
        for name, v in verdicts.items()
    )
