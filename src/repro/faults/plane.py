"""The fault plane: scheduled injection + the auditable-outcome ledger.

One :class:`FaultPlane` is attached to a :class:`~repro.kernel.kernel.Kernel`
and consulted by the hooked primitives — ``RdRandDevice.read``,
``TimeStampCounter.read``, ``Kernel.fork``, and the shadow-pair write
choke point (:func:`repro.faults.policy.tls_shadow_write`).  The plane
answers "does this attempt fault?" from its schedule and keeps three
ledgers the campaign classifier reads afterwards:

* ``delivered`` — faults actually injected (a window scheduled past the
  end of a run delivers nothing);
* ``absorbed``  — faults a degradation mechanism retried away, with
  behaviour left identical;
* ``events``    — explicit degradation events (retry budget exhausted,
  entropy quarantined, publish failed): the third legal outcome.

Plane decisions never draw from process entropy — stuck values come from
the schedule — so a faulted run consumes exactly the entropy stream of
its fault-free reference and replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from .policy import RDRAND_RETRY_LIMIT
from .schedule import FaultSchedule

_WORD_MASK = (1 << 64) - 1


@dataclass
class DegradationEvent:
    """One explicit, auditable degradation."""

    kind: str
    detail: str = ""


class FaultPlane:
    """Deterministic fault injection driven by one :class:`FaultSchedule`."""

    def __init__(self, schedule: Optional[FaultSchedule] = None) -> None:
        self.schedule = schedule or FaultSchedule(scheme="none", events=[])
        #: Attempt counters, one stream per hooked primitive.
        self.rdrand_attempts = 0
        self.fork_attempts = 0
        self.tls_writes = 0
        self.tsc_reads = 0
        #: Ledgers (see module docstring).
        self.delivered: List[Tuple[str, str]] = []
        self.absorbed: List[Tuple[str, str]] = []
        self.events: List[DegradationEvent] = []

    # -- ledger ----------------------------------------------------------------

    def record_delivered(self, kind: str, detail: str = "") -> None:
        self.delivered.append((kind, detail))
        telemetry.count(
            "faults_delivered_total", help="scheduled faults actually injected"
        )

    def record_absorbed(self, kind: str, detail: str = "") -> None:
        self.absorbed.append((kind, detail))
        telemetry.count(
            "faults_absorbed_total",
            help="faults retried away with behaviour unchanged",
        )

    def record_event(self, kind: str, detail: str = "") -> None:
        self.events.append(DegradationEvent(kind, detail))
        telemetry.count(
            "fault_degradation_events_total",
            help="explicit degradation events on the plane ledger",
        )

    def event_kinds(self) -> "set[str]":
        return {event.kind for event in self.events}

    def activity(self) -> int:
        """Monotonic total of ledger entries (delivered + absorbed + events).

        The fleet supervisor samples this before and after each request:
        a change means the plane touched the request, which is exactly the
        attribution needed for the re-randomization-window stretch metric.
        """
        return len(self.delivered) + len(self.absorbed) + len(self.events)

    def delivered_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for kind, _ in self.delivered:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- rdrand ----------------------------------------------------------------

    def rdrand_verdict(self) -> Optional[Tuple]:
        """Consulted once per ``rdrand`` read attempt.

        Returns ``None`` (healthy), ``("fail",)`` (CF=0), or
        ``("stuck", value)`` (CF=1 with schedule-supplied output).
        """
        index = self.rdrand_attempts
        self.rdrand_attempts += 1
        for event in self.schedule.events:
            if event.kind == "rdrand-fail" and event.covers(index):
                return ("fail",)
            if event.kind == "rdrand-stuck" and event.covers(index):
                self.record_delivered("rdrand-stuck", f"attempt {index}")
                return ("stuck", event.value & _WORD_MASK)
        return None

    def note_rdrand_failure(self, kind: str, streak: int) -> None:
        """Device callback for every CF=0 result (injected or quarantine)."""
        if kind == "rdrand-fail":
            self.record_delivered(kind, f"streak {streak}")
        if streak == RDRAND_RETRY_LIMIT:
            self.record_event(
                "rdrand-exhausted", f"{streak} consecutive CF=0 reads"
            )

    def note_rdrand_recovered(self, streak: int) -> None:
        """Device callback when a CF=1 read ends a failure streak."""
        if streak < RDRAND_RETRY_LIMIT:
            self.record_absorbed(
                "rdrand-fail", f"retry succeeded after {streak} failure(s)"
            )

    # -- fork ------------------------------------------------------------------

    def fork_verdict(self) -> bool:
        """Consulted once per ``Kernel.fork`` attempt; True = EAGAIN."""
        index = self.fork_attempts
        self.fork_attempts += 1
        for event in self.schedule.events:
            if event.kind == "fork-eagain" and event.covers(index):
                self.record_delivered("fork-eagain", f"attempt {index}")
                return True
        return False

    # -- TLS shadow writes -----------------------------------------------------

    def tls_write_verdict(self) -> Optional[str]:
        """Consulted once per shadow-half write; "torn" = write lost."""
        index = self.tls_writes
        self.tls_writes += 1
        for event in self.schedule.events:
            if event.kind == "tls-torn" and event.covers(index):
                self.record_delivered("tls-torn", f"write {index}")
                return "torn"
        return None

    # -- rdtsc -----------------------------------------------------------------

    def rdtsc_observe(self, value: int) -> int:
        """Transform one ``rdtsc`` read according to the schedule."""
        index = self.tsc_reads
        self.tsc_reads += 1
        for event in self.schedule.events:
            if event.kind == "rdtsc-skew":
                if index == 0:
                    self.record_delivered("rdtsc-skew", f"delta {event.value:#x}")
                return (value + event.value) & _WORD_MASK
            if event.kind == "rdtsc-stuck" and event.covers(index):
                self.record_delivered("rdtsc-stuck", f"read {index}")
                return event.value & _WORD_MASK
        return value
