"""Command-line interface: ``python -m repro <command>``.

Commands regenerate individual experiments or the whole report:

.. code-block:: console

    $ python -m repro schemes            # list registered protections
    $ python -m repro table 1           # regenerate Table I
    $ python -m repro figure 5          # regenerate Figure 5
    $ python -m repro attack --scheme ssp
    $ python -m repro effectiveness
    $ python -m repro fuzz --budget 50
    $ python -m repro chaos --budget 50
    $ python -m repro serve --scheme pssp
    $ python -m repro fleet --budget 10000 --jobs 4
    $ python -m repro trace --scheme pssp --series
    $ python -m repro postmortem bundles/<digest>.pmb
    $ python -m repro report -o EXPERIMENTS.md

Exit codes (``fuzz`` and ``chaos``, consumed by CI):

====  ========================================================
0     all checks passed
1     contract/invariant violation (a real, reproducible finding)
2     usage error (argparse)
3     infrastructure error (builds or reference runs fell over)
4     deadline exceeded (campaign stopped early; resumable)
====  ========================================================
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from . import telemetry
from .core.deploy import SCHEMES, build, deploy
from .errors import (  # noqa: F401  (re-exported; tests import cli.EXIT_*)
    EXIT_DEADLINE,
    EXIT_INFRASTRUCTURE,
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATION,
)
from .parallel import (
    add_jobs_argument,
    add_shard_retries_argument,
    resolve_jobs,
    resolve_shard_retries,
)
from .harness import figures as _figures
from .harness import tables as _tables
from .harness.report import generate_report
from .kernel.kernel import Kernel


def _cmd_schemes(args: argparse.Namespace) -> int:
    print(f"{'scheme':22s} {'pass':16s} {'runtime':12s} {'notes'}")
    for name, spec in sorted(SCHEMES.items()):
        if spec.runtime_factory is None:
            runtime = "-"
        else:
            instance = spec.make_runtime()
            runtime = type(instance).__name__.replace("Runtime", "") or "yes"
        notes = []
        if spec.rewrite:
            notes.append("rewritten")
        if spec.dbi_multiplier != 1.0:
            notes.append(f"instr tax ×{spec.dbi_multiplier}")
        if not spec.fork_correct:
            notes.append("breaks fork correctness")
        if not spec.prevents_brop:
            notes.append("no BROP prevention")
        print(f"{name:22s} {spec.pass_name:16s} {runtime:12s} {', '.join(notes)}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    regenerators = {
        1: lambda: _tables.table1(
            spec_names=_tables.DEFAULT_SPEC_SUBSET, attack_trials=args.trials
        ),
        2: _tables.table2,
        3: _tables.table3,
        4: _tables.table4,
        5: _tables.table5,
    }
    try:
        regenerate = regenerators[args.number]
    except KeyError:
        print(f"no table {args.number}; the paper has tables 1-5", file=sys.stderr)
        return 2
    print(regenerate().render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    if number == 1:
        for figure in _figures.figure1().values():
            print(figure.render())
    elif number == 2:
        captured = _figures.figure2()
        for figure in captured.values():
            print(figure.render())
        print("pssp frames share canary:",
              _figures.frames_share_canary(captured["pssp"]))
        print("pssp-nt frames share canary:",
              _figures.frames_share_canary(captured["pssp-nt"]))
    elif number in (3, 4):
        print(_figures.figure3().render())
    elif number == 5:
        result = _figures.figure5()
        if getattr(args, "plot", False):
            from .harness.plots import figure5_chart

            print(figure5_chart(result))
        else:
            print(result.render())
        if getattr(args, "csv", None):
            with open(args.csv, "w") as handle:
                handle.write(result.to_csv())
            print(f"wrote {args.csv}")
    elif number == 6:
        print(_figures.figure6().render())
    else:
        print(f"no figure {number}; the paper has figures 1-6", file=sys.stderr)
        return 2
    return 0


_ATTACK_VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def _telemetry_capture_start(path: Optional[str]) -> Dict[str, object]:
    """Arm telemetry capture for a campaign with ``--telemetry-out``.

    Turns on event-stream sampling (the default keeps it off so the fast
    path pays nothing) and returns the baseline counter snapshot.
    """
    if path is None:
        return {}
    telemetry.ring().sample_every = 100
    return telemetry.snapshot()


def _telemetry_capture_write(path: Optional[str], before: Dict[str, object]) -> None:
    """Write the counter delta + event stream collected since arming."""
    if path is None:
        return
    payload = {
        "counters": telemetry.delta(before),
        "events": telemetry.ring().to_json(),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    telemetry.ring().sample_every = 0
    print(f"wrote {path}")


def _campaign_jobs(args: argparse.Namespace):
    """Resolve ``--jobs`` for a campaign command.

    Returns ``(jobs, None)`` on success or ``(None, EXIT_USAGE)`` when
    the flag or the ``REPRO_JOBS`` environment default is invalid.
    """
    try:
        return resolve_jobs(args.jobs), None
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None, EXIT_USAGE


def _shard_retries(args: argparse.Namespace):
    """Resolve ``--shard-retries`` for a campaign command.

    Returns ``(retries, None)`` on success or ``(None, EXIT_USAGE)``
    when the value is invalid (negative).
    """
    try:
        return resolve_shard_retries(args.shard_retries), None
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None, EXIT_USAGE


def _cmd_attack(args: argparse.Namespace) -> int:
    from .attacks import ForkingServer, byte_by_byte_attack, frame_map
    from .attacks.trials import attack_campaign

    jobs, usage = _campaign_jobs(args)
    if usage is not None:
        return usage
    shard_retries, usage = _shard_retries(args)
    if usage is not None:
        return usage

    if args.repeats > 1:
        before = _telemetry_capture_start(args.telemetry_out)
        report = attack_campaign(
            args.scheme, base_seed=args.seed, repeats=args.repeats,
            max_trials=args.trials, source=_ATTACK_VICTIM, jobs=jobs,
            shard_retries=shard_retries,
        )
        print(report.render())
        _telemetry_capture_write(args.telemetry_out, before)
        if report.lost:
            return EXIT_INFRASTRUCTURE
        return EXIT_OK if not report.successes else EXIT_VIOLATION

    before = _telemetry_capture_start(args.telemetry_out)
    kernel = Kernel(args.seed)
    binary = build(_ATTACK_VICTIM, args.scheme, name="server")
    parent, _ = deploy(kernel, binary, args.scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    report = byte_by_byte_attack(server, frame, max_trials=args.trials)
    print(f"scheme:    {args.scheme}")
    print(f"success:   {report.success}")
    print(f"trials:    {report.trials}")
    print(f"recovered: {report.recovered.hex() or '(nothing)'}")
    _telemetry_capture_write(args.telemetry_out, before)
    return 0 if not report.success else 1  # exit 1 = defence broken


def _cmd_effectiveness(args: argparse.Namespace) -> int:
    jobs, usage = _campaign_jobs(args)
    if usage is not None:
        return usage
    print(_tables.effectiveness(max_trials=args.trials, jobs=jobs).render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.kind == "density":
        from statistics import mean

        from .crypto.random import EntropySource
        from .harness.metrics import overhead_percent, run_program
        from .workloads.generator import (
            call_density_sweep_configs,
            generate_program,
        )

        print(f"{'calls/kcycle':>13s} {'pssp %':>8s} {'pssp-nt %':>10s}")
        for index, config in enumerate(call_density_sweep_configs()):
            source = generate_program(config, EntropySource(1000 + index))
            base = run_program(source, "ssp", name=f"sweep{index}")
            pssp = run_program(source, "pssp", name=f"sweep{index}")
            nt = run_program(source, "pssp-nt", name=f"sweep{index}")
            density = (config.functions * config.outer_iterations
                       / base.cycles * 1000)
            print(f"{density:13.2f} {overhead_percent(base, pssp):8.3f} "
                  f"{overhead_percent(base, nt):10.3f}")
        return 0
    if args.kind == "width":
        from .attacks.exhaustive import survival_probability_montecarlo

        print(f"{'scheme':14s} {'survival P (16-bit scale)':>26s}")
        for scheme in ("ssp", "pssp", "pssp-binary"):
            rate = survival_probability_montecarlo(
                scheme, bits=16, samples=args.samples
            )
            print(f"{scheme:14s} {rate:26.6f}")
        return 0
    print(f"unknown sweep {args.kind!r}", file=sys.stderr)
    return 2


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .harness.matrix import properties_matrix

    print(properties_matrix(attack_trials=args.trials).render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .harness.validate import validate_all

    report = validate_all(seed=args.seed)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import run_fuzz
    from .fuzz.fuzzer import replay_seed, write_failure_artifacts
    from .fuzz.mutants import (
        kill_report_ok,
        mutation_kill_report,
        render_kill_report,
    )
    from .workloads.generator import render_program

    schemes = args.schemes.split(",") if args.schemes else None

    if args.self_check:
        verdicts = mutation_kill_report(
            budget=args.kill_budget, base_seed=args.seed,
            **({"schemes": schemes} if schemes else {}),
        )
        print(render_kill_report(verdicts))
        return 0 if kill_report_ok(verdicts) else 1

    if args.replay is not None:
        spec, source, failures = replay_seed(
            args.replay, **({"schemes": schemes} if schemes else {})
        )
        print(f"# seed {args.replay}"
              + (" (fork)" if spec.uses_fork else "")
              + (" (setjmp)" if spec.uses_setjmp else ""))
        print(render_program(spec))
        for failure in failures:
            print(failure)
        print("CONFORMANCE OK" if not failures
              else f"{len(failures)} failure(s)")
        return 0 if not failures else 1

    jobs, usage = _campaign_jobs(args)
    if usage is not None:
        return usage
    shard_retries, usage = _shard_retries(args)
    if usage is not None:
        return usage
    before = _telemetry_capture_start(args.telemetry_out)
    report = run_fuzz(
        args.budget,
        base_seed=args.seed,
        shrink=not args.no_shrink,
        health=not args.no_health,
        progress=lambda line: print(f"  {line}", flush=True),
        jobs=jobs,
        shard_retries=shard_retries,
        **({"schemes": schemes} if schemes else {}),
    )
    print(report.render())
    _telemetry_capture_write(args.telemetry_out, before)
    if args.out and report.failures:
        for path in write_failure_artifacts(report, args.out):
            print(f"wrote {path}")
    if report.ok:
        return EXIT_OK
    return EXIT_INFRASTRUCTURE if report.infra_only else EXIT_VIOLATION


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import (
        chaos_kill_report,
        chaos_kill_report_ok,
        render_chaos_kill_report,
        replay_case,
        run_campaign,
    )
    from .errors import CampaignError

    if args.self_check:
        verdicts = chaos_kill_report()
        print(render_chaos_kill_report(verdicts))
        return EXIT_OK if chaos_kill_report_ok(verdicts) else EXIT_VIOLATION

    if args.replay is not None:
        try:
            run = replay_case(args.replay)
        except CampaignError as error:
            print(f"infrastructure error: {error}", file=sys.stderr)
            return EXIT_INFRASTRUCTURE
        print(run.render())
        print("FAULT-OUTCOME INVARIANT OK" if run.ok
              else f"{len(run.violations)} violation(s)")
        return EXIT_OK if run.ok else EXIT_VIOLATION

    jobs, usage = _campaign_jobs(args)
    if usage is not None:
        return usage
    shard_retries, usage = _shard_retries(args)
    if usage is not None:
        return usage
    before = _telemetry_capture_start(args.telemetry_out)
    report = run_campaign(
        args.budget,
        base_seed=args.seed,
        retries=args.retries,
        shard_retries=shard_retries,
        deadline=args.deadline,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        schemes=tuple(args.schemes.split(",")) if args.schemes else None,
        progress=lambda line: print(f"  {line}", flush=True),
        jobs=jobs,
    )
    print(report.render())
    _telemetry_capture_write(args.telemetry_out, before)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"wrote {args.out}")
    if report.violating_runs:
        return EXIT_VIOLATION
    if report.timed_out:
        return EXIT_DEADLINE
    if report.infra_errors:
        return EXIT_INFRASTRUCTURE
    return EXIT_OK


#: Benign workload driven by ``repro stats``: a protected hot function
#: called repeatedly, so every scheme's prologue/epilogue counters tick.
_STATS_BENIGN = """
int work(int n) {
    char buf[32];
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        buf[i % 16] = i;
        acc = acc + buf[i % 16];
    }
    return acc;
}
int main() {
    int i; int total;
    total = 0;
    for (i = 0; i < 40; i = i + 1) { total = total + work(24); }
    return total & 255;
}
"""

#: Smash workload: a deliberate overflow so detection counters tick too.
_STATS_SMASH = """
int victim(int n) {
    char buf[16];
    int i;
    for (i = 0; i < 64; i = i + 1) { buf[i] = 65; }
    return 0;
}
int main() { return victim(1); }
"""

#: Counters surfaced in the default `repro stats` text table.
_STATS_COLUMNS = (
    ("machine_instructions_total", "instructions"),
    ("machine_cycles_total", "cycles"),
    ("canary_prologue_stores_total", "prologues"),
    ("canary_epilogue_checks_total", "epilogues"),
    ("rdrand_draws_total", "rdrand"),
    ("canary_smashes_detected_total", "smashes"),
    ("degradations_total", "degraded"),
)


def _cmd_stats(args: argparse.Namespace) -> int:
    """Per-scheme telemetry report over a benign + a smashing workload."""
    from .harness.metrics import run_program

    schemes = (
        args.schemes.split(",") if args.schemes
        else ["none", "ssp", "pssp", "pssp-nt", "pssp-lv", "pssp-owf"]
    )
    unknown = [s for s in schemes if s not in SCHEMES]
    if unknown:
        print(f"unknown scheme(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_USAGE

    per_scheme: Dict[str, Dict[str, object]] = {}
    for scheme in schemes:
        before = telemetry.snapshot()
        run_program(_STATS_BENIGN, scheme, name=f"stats-{scheme}", seed=args.seed)
        if args.smash:
            run_program(
                _STATS_SMASH, scheme, name=f"stats-smash-{scheme}", seed=args.seed
            )
        per_scheme[scheme] = telemetry.delta(before)

    if args.json:
        payload = {
            "schemes": per_scheme,
            "events": telemetry.ring().to_json(),
        }
        text = json.dumps(payload, indent=2)
    elif args.prom:
        text = telemetry.registry().render_prometheus()
    else:
        lines = [
            f"{'scheme':10s}" + "".join(f"{label:>14s}" for _, label in _STATS_COLUMNS)
        ]
        for scheme, delta in per_scheme.items():
            cells = []
            for counter_name, _ in _STATS_COLUMNS:
                value = delta.get(counter_name, 0)
                cells.append(f"{value:>14,.0f}" if isinstance(value, float)
                             else f"{value:>14,d}")
            lines.append(f"{scheme:10s}" + "".join(cells))
        text = "\n".join(lines)

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return EXIT_OK


#: The `repro profile` demo: a P-SSP call tree with distinct hot spots.
_PROFILE_DEMO = """
int leaf_sum(int n) {
    char buf[24];
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        buf[i % 8] = i;
        acc = acc + buf[i % 8];
    }
    return acc;
}
int mid_mix(int n) {
    char scratch[40];
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        scratch[i % 16] = i;
        acc = acc + leaf_sum(6);
    }
    return acc;
}
int main() {
    int i; int total;
    total = 0;
    for (i = 0; i < 30; i = i + 1) { total = total + mid_mix(8); }
    return total & 255;
}
"""


def _cmd_profile(args: argparse.Namespace) -> int:
    """Per-function cycle attribution + Chrome trace-event export."""
    from .telemetry.profile import Profiler

    source = _PROFILE_DEMO
    if args.source:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()

    kernel = Kernel(args.seed)
    binary = build(source, args.scheme, name="profile")
    process, _ = deploy(kernel, binary, args.scheme)
    profiler = Profiler()
    process.cpu.profiler = profiler
    result = process.run()
    process.cpu.profiler = None

    print(f"scheme: {args.scheme}  "
          f"cycles: {result.cycles:,.0f}  "
          f"instructions: {result.instructions:,d}  "
          f"{'CRASHED' if result.crashed else 'exit ' + str(result.exit_status)}")
    print(profiler.render(limit=args.limit))
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(profiler.chrome_trace(process_name=f"repro-{args.scheme}"),
                      handle, indent=2)
        print(f"wrote {args.out} (load in chrome://tracing or Perfetto)")
    return EXIT_OK


def _fleet_config(args: argparse.Namespace):
    """Parse the fleet traffic flags into a TrafficConfig (or usage error)."""
    from .fleet import TrafficConfig

    try:
        return TrafficConfig.parse_rate(
            args.attack_rate, brute_trial_cap=args.brute_cap
        ), None
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None, EXIT_USAGE


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve one slice of fleet traffic on one server (the demo loop)."""
    from .fleet import run_fleet_slice

    config, usage = _fleet_config(args)
    if usage is not None:
        return usage
    record = run_fleet_slice(
        args.scheme, args.seed, config=config, request_budget=args.requests
    )
    print(f"scheme:          {args.scheme}")
    print(f"seed:            {record.seed}")
    print(f"requests:        {record.requests} "
          f"({record.benign_requests} benign, "
          f"{record.attack_requests} attack)")
    print("sessions:        "
          + ", ".join(f"{kind}={count}"
                      for kind, count in record.sessions.items()))
    print(f"detections:      {record.detections}")
    print(f"crashes:         {record.crashes}")
    print(f"breaches:        {record.breaches} {record.breaches_by_kind}")
    first = record.first_detection_request
    print(f"first detection: "
          f"{'request ' + str(first) if first is not None else 'never'}")
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record.to_json(), handle, indent=2)
        print(f"wrote {args.out}")
    for line in record.audit_divergences:
        print(f"AUDIT DIVERGENCE: {line}", file=sys.stderr)
    return EXIT_VIOLATION if record.audit_divergences else EXIT_OK


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run a sharded multi-scheme fleet campaign."""
    import signal

    from .errors import CampaignError, ShutdownRequested
    from .fleet import run_fleet

    config, usage = _fleet_config(args)
    if usage is not None:
        return usage
    schemes = tuple(args.schemes.split(",")) if args.schemes else None
    if schemes:
        unknown = [s for s in schemes if s not in SCHEMES]
        if unknown:
            print(f"unknown scheme(s): {', '.join(unknown)}", file=sys.stderr)
            return EXIT_USAGE
    jobs, usage = _campaign_jobs(args)
    if usage is not None:
        return usage
    shard_retries, usage = _shard_retries(args)
    if usage is not None:
        return usage
    if args.chaos_seed is not None and not args.chaos:
        print("--chaos-seed requires --chaos", file=sys.stderr)
        return EXIT_USAGE
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return EXIT_USAGE
    tracing = args.trace_out is not None or args.bundle_dir is not None
    if tracing and args.checkpoint:
        print(
            "--trace-out/--bundle-dir cannot be combined with --checkpoint "
            "(a resumed campaign would leave holes in the trace)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    trace_config = None
    if tracing:
        from .trace import TraceConfig

        trace_config = TraceConfig(series_interval=args.series_interval)

    def _on_signal(signum, frame):
        raise ShutdownRequested(f"received signal {signum}")

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    before = _telemetry_capture_start(args.telemetry_out)
    try:
        report = run_fleet(
            args.budget,
            **({"schemes": schemes} if schemes else {}),
            base_seed=args.seed,
            slice_requests=args.slice,
            config=config,
            jobs=jobs,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            shard_retries=shard_retries,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            trace=trace_config,
            progress=lambda line: print(f"  {line}", flush=True),
        )
    except ShutdownRequested as stop:
        # run_fleet checkpoints after every completed slice/shard, so
        # the file already reflects all finished work; just exit typed.
        if args.checkpoint:
            print(
                f"shutdown: {stop}; resume with --checkpoint "
                f"{args.checkpoint} --resume",
                file=sys.stderr,
            )
        else:
            print(f"shutdown: {stop}", file=sys.stderr)
        return EXIT_INFRASTRUCTURE
    except CampaignError as error:
        print(f"infrastructure error: {error}", file=sys.stderr)
        return EXIT_INFRASTRUCTURE
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(report.render())
    _telemetry_capture_write(args.telemetry_out, before)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"wrote {args.out}")
    if report.trace is not None:
        from .trace import write_bundles, write_trace

        print(report.trace.render())
        if args.trace_out:
            write_trace(report.trace, args.trace_out)
            print(f"wrote {args.trace_out} "
                  "(load in chrome://tracing or Perfetto)")
        if args.bundle_dir:
            for path in write_bundles(report.trace, args.bundle_dir):
                print(f"wrote {path}")
    if report.lost_slices:
        return EXIT_INFRASTRUCTURE
    if report.audit_divergences:
        return EXIT_VIOLATION
    if args.require_detections:
        blind = [r.scheme for r in report.reports if r.detections == 0]
        if blind:
            print(f"no detections under: {', '.join(blind)}", file=sys.stderr)
            return EXIT_VIOLATION
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one fleet slice: spans, flight recorder, series, bundles."""
    from .fleet import run_fleet_slice
    from .trace import (
        CampaignTrace,
        SliceTracer,
        TraceConfig,
        render_series,
        write_bundles,
        write_trace,
    )

    config, usage = _fleet_config(args)
    if usage is not None:
        return usage
    try:
        trace_config = TraceConfig(series_interval=args.series_interval)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    tracer = SliceTracer(
        args.scheme, args.seed, config=trace_config,
        chaos_seed=args.chaos_seed,
    )
    record = run_fleet_slice(
        args.scheme, args.seed, config=config,
        request_budget=args.requests, chaos_seed=args.chaos_seed,
        tracer=tracer,
    )
    campaign = CampaignTrace(config=trace_config, slices=[tracer.trace])
    print(campaign.render())
    if args.series:
        print(render_series(tracer.trace.series))
    if args.out:
        write_trace(campaign, args.out)
        print(f"wrote {args.out} (load in chrome://tracing or Perfetto)")
    if args.bundle_dir:
        for path in write_bundles(campaign, args.bundle_dir):
            print(f"wrote {path}")
    for line in record.audit_divergences:
        print(f"AUDIT DIVERGENCE: {line}", file=sys.stderr)
    return EXIT_VIOLATION if record.audit_divergences else EXIT_OK


def _cmd_postmortem(args: argparse.Namespace) -> int:
    """Replay a post-mortem bundle and demand an exact reproduction."""
    from .errors import BundleError
    from .trace import load_bundle, replay_bundle

    try:
        payload = load_bundle(args.bundle)
        result = replay_bundle(payload)
    except BundleError as error:
        print(f"infrastructure error: {error}", file=sys.stderr)
        return EXIT_INFRASTRUCTURE
    print(result.render())
    return EXIT_OK if result.ok else EXIT_VIOLATION


def _cmd_report(args: argparse.Namespace) -> int:
    text = generate_report(attack_trials=args.trials)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P-SSP reproduction (DSN 2018) experiment driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list registered protection schemes")

    table = sub.add_parser("table", help="regenerate a paper table (1-5)")
    table.add_argument("number", type=int)
    table.add_argument("--trials", type=int, default=4000)

    figure = sub.add_parser("figure", help="regenerate a paper figure (1-6)")
    figure.add_argument("number", type=int)
    figure.add_argument("--plot", action="store_true",
                        help="render figure 5 as a terminal bar chart")
    figure.add_argument("--csv", default=None,
                        help="also write figure 5 data as CSV")

    attack = sub.add_parser("attack", help="run the byte-by-byte attack")
    attack.add_argument("--scheme", default="ssp", choices=sorted(SCHEMES))
    attack.add_argument("--trials", type=int, default=6000)
    attack.add_argument("--seed", type=int, default=20180625)
    attack.add_argument("--repeats", type=int, default=1,
                        help="independent seeded campaigns (seed+i); "
                             ">1 prints the cost distribution")
    add_jobs_argument(attack)
    add_shard_retries_argument(attack)
    attack.add_argument("--telemetry-out", default=None, metavar="FILE",
                        help="write telemetry counters + event stream as JSON")

    eff = sub.add_parser("effectiveness", help="regenerate §VI-C")
    eff.add_argument("--trials", type=int, default=4000)
    add_jobs_argument(eff)

    sweep = sub.add_parser("sweep", help="run a parameter sweep")
    sweep.add_argument("kind", choices=("density", "width"))
    sweep.add_argument("--samples", type=int, default=100_000)

    validate = sub.add_parser("validate",
                              help="health-check every registered scheme")
    validate.add_argument("--seed", type=int, default=1234)

    matrix = sub.add_parser("matrix",
                            help="measure the scheme-properties matrix")
    matrix.add_argument("--trials", type=int, default=3000)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing (schemes × interpreter paths)",
    )
    fuzz.add_argument("--budget", type=int, default=50,
                      help="number of generated programs (default 50)")
    fuzz.add_argument("--seed", type=int, default=2018,
                      help="base seed; program i uses seed+i")
    fuzz.add_argument("--schemes", default=None,
                      help="comma-separated scheme subset (default: all)")
    fuzz.add_argument("--replay", type=int, default=None, metavar="SEED",
                      help="re-run one seed through the full contract")
    fuzz.add_argument("--self-check", action="store_true",
                      help="mutation-kill check: plant known bugs, "
                           "verify the oracle catches every one")
    fuzz.add_argument("--kill-budget", type=int, default=3,
                      help="programs per mutant during --self-check")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip auto-shrinking failing programs")
    fuzz.add_argument("--no-health", action="store_true",
                      help="skip the detection/polymorphism probes")
    fuzz.add_argument("--out", default=None, metavar="DIR",
                      help="write failing programs as JSON artifacts")
    add_jobs_argument(fuzz)
    add_shard_retries_argument(fuzz)
    fuzz.add_argument("--telemetry-out", default=None, metavar="FILE",
                      help="write telemetry counters + event stream as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaigns (fault-outcome invariant)",
    )
    chaos.add_argument("--budget", type=int, default=50,
                       help="number of fault schedules (default 50)")
    chaos.add_argument("--seed", type=int, default=2018,
                       help="base seed; schedule i uses seed+i")
    chaos.add_argument("--replay", type=int, default=None, metavar="SEED",
                       help="re-run one campaign case bit-identically")
    chaos.add_argument("--self-check", action="store_true",
                       help="chaos mutation kill: disable each degradation "
                            "mechanism, verify the campaign flags it")
    chaos.add_argument("--schemes", default=None,
                       help="comma list: only run schedules targeting these "
                            "schemes (the per-scheme CI smoke jobs)")
    chaos.add_argument("--retries", type=int, default=1,
                       help="re-attempts per case on infrastructure errors")
    chaos.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget; exceeding it exits 4")
    chaos.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="write a JSON checkpoint after every case")
    chaos.add_argument("--resume", action="store_true",
                       help="skip cases already in the checkpoint file")
    chaos.add_argument("--out", default=None, metavar="FILE",
                       help="write the full campaign report as JSON")
    add_jobs_argument(chaos)
    add_shard_retries_argument(chaos)
    chaos.add_argument("--telemetry-out", default=None, metavar="FILE",
                       help="write telemetry counters + event stream as JSON")

    stats = sub.add_parser(
        "stats",
        help="per-scheme telemetry counters (text, --json, or --prom)",
    )
    stats.add_argument("--schemes", default=None,
                       help="comma-separated scheme subset (default: core six)")
    stats.add_argument("--seed", type=int, default=97)
    stats.add_argument("--smash", action="store_true",
                       help="also run a smashing workload so detection "
                            "counters tick")
    stats.add_argument("--json", action="store_true",
                       help="emit per-scheme deltas + events as JSON")
    stats.add_argument("--prom", action="store_true",
                       help="emit the registry in Prometheus text format")
    stats.add_argument("--out", default=None, metavar="FILE",
                       help="write the report to a file instead of stdout")

    profile = sub.add_parser(
        "profile",
        help="per-function cycle attribution + Chrome trace-event JSON",
    )
    profile.add_argument("--scheme", default="pssp", choices=sorted(SCHEMES))
    profile.add_argument("--seed", type=int, default=97)
    profile.add_argument("--source", default=None, metavar="FILE",
                         help="profile this C source instead of the demo")
    profile.add_argument("--limit", type=int, default=20,
                         help="rows in the attribution table")
    profile.add_argument("--out", default=None, metavar="FILE",
                         help="write a Chrome trace-event JSON file")

    serve = sub.add_parser(
        "serve",
        help="serve one slice of fleet traffic on one forking server",
    )
    serve.add_argument("--scheme", default="pssp", choices=sorted(SCHEMES))
    serve.add_argument("--requests", type=int, default=500,
                       help="request budget for the slice (default 500)")
    serve.add_argument("--seed", type=int, default=20180625)
    serve.add_argument("--attack-rate", default="1/8", metavar="N/D",
                       help="fraction of sessions that are attacks")
    serve.add_argument("--brute-cap", type=int, default=1600,
                       help="request cap per byte-by-byte attack session")
    serve.add_argument("--out", default=None, metavar="FILE",
                       help="write the slice record as JSON")

    fleet = sub.add_parser(
        "fleet",
        help="sharded multi-scheme fleet campaign (the §VI-C service mix)",
    )
    fleet.add_argument("--budget", type=int, default=10_000,
                       help="requests per scheme (default 10000)")
    fleet.add_argument("--schemes", default=None,
                       help="comma-separated scheme subset "
                            "(default: ssp,pssp,pssp-nt,pssp-owf)")
    fleet.add_argument("--seed", type=int, default=20180625,
                       help="base seed; slice i uses seed+i")
    fleet.add_argument("--slice", type=int, default=1000,
                       help="requests per slice / shard unit (default 1000)")
    fleet.add_argument("--attack-rate", default="1/8", metavar="N/D",
                       help="fraction of sessions that are attacks")
    fleet.add_argument("--brute-cap", type=int, default=1600,
                       help="request cap per byte-by-byte attack session")
    fleet.add_argument("--require-detections", action="store_true",
                       help="exit 1 if any scheme ends with 0 detections")
    fleet.add_argument("--chaos", action="store_true",
                       help="thread seeded fault schedules into the slice "
                            "workers (chaos-under-traffic)")
    fleet.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                       help="seed for the chaos schedules "
                            "(default: the campaign base seed; "
                            "requires --chaos)")
    fleet.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="write a resumable checkpoint after every "
                            "completed slice")
    fleet.add_argument("--resume", action="store_true",
                       help="skip slices already in --checkpoint")
    fleet.add_argument("--out", default=None, metavar="FILE",
                       help="write the full fleet report as JSON")
    add_jobs_argument(fleet)
    add_shard_retries_argument(fleet)
    fleet.add_argument("--telemetry-out", default=None, metavar="FILE",
                       help="write telemetry counters + event stream as JSON")
    fleet.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the campaign's Perfetto trace-event JSON "
                            "(byte-identical under any --jobs)")
    fleet.add_argument("--bundle-dir", default=None, metavar="DIR",
                       help="write captured post-mortem bundles (.pmb) here")
    fleet.add_argument("--series-interval", type=int, default=100,
                       help="requests per time-series bucket when tracing")

    trace = sub.add_parser(
        "trace",
        help="trace one fleet slice (spans, flight recorder, bundles)",
    )
    trace.add_argument("--scheme", default="pssp", choices=sorted(SCHEMES))
    trace.add_argument("--requests", type=int, default=500,
                       help="request budget for the slice (default 500)")
    trace.add_argument("--seed", type=int, default=20180625)
    trace.add_argument("--attack-rate", default="1/8", metavar="N/D",
                       help="fraction of sessions that are attacks")
    trace.add_argument("--brute-cap", type=int, default=1600,
                       help="request cap per byte-by-byte attack session")
    trace.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                       help="arm the slice's seeded fault schedule")
    trace.add_argument("--series", action="store_true",
                       help="render the counter time-series table")
    trace.add_argument("--series-interval", type=int, default=100,
                       help="requests per time-series bucket (default 100)")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write the Perfetto trace-event JSON")
    trace.add_argument("--bundle-dir", default=None, metavar="DIR",
                       help="write captured post-mortem bundles (.pmb) here")

    postmortem = sub.add_parser(
        "postmortem",
        help="replay a .pmb bundle and demand an exact reproduction",
    )
    postmortem.add_argument("bundle", metavar="BUNDLE",
                            help="path to a .pmb post-mortem bundle")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default=None)
    report.add_argument("--trials", type=int, default=4000)

    return parser


_COMMANDS = {
    "schemes": _cmd_schemes,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "attack": _cmd_attack,
    "effectiveness": _cmd_effectiveness,
    "sweep": _cmd_sweep,
    "matrix": _cmd_matrix,
    "validate": _cmd_validate,
    "fuzz": _cmd_fuzz,
    "chaos": _cmd_chaos,
    "stats": _cmd_stats,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "postmortem": _cmd_postmortem,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
