"""The slice tracer: causal spans from traffic session to outcome.

One :class:`SliceTracer` attaches to one booted
:class:`~repro.fleet.server.FleetServer` and observes the slice through
two hooks that already exist on the request path:

* the traffic driver announces each session (:meth:`begin_session`) and
  each breach (:meth:`on_breach`);
* the server's single bookkeeping funnel (``FleetServer._record``) calls
  :meth:`on_request` once per served request, and fork bookkeeping calls
  :meth:`on_fork` once per committed worker fork.

Everything else is *pulled* from deterministic state at those points:
canary lifecycle counters (prologue stores, epilogue checks, smashes)
are attributed to the request span as deltas since the previous request,
and supervisor decisions (breaker trips, parent heals) surface as
instants by comparing the supervisor's own counters between requests —
the tracer adds no new coupling to the decision paths it observes.

The off switch is structural: an unattached server has ``tracer = None``
and pays one ``is not None`` compare per *request* (never per
instruction), preserving the PR 4 invariant that telemetry off means
zero hot-path work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..telemetry.events import EventRing
from .series import SeriesSampler
from .spans import Instant, SliceTrace, Span, span_id

#: Canary lifecycle counters attributed per request span.
_CANARY_COUNTERS = (
    "canary_prologue_stores_total",
    "canary_epilogue_checks_total",
    "canary_smashes_detected_total",
)


@dataclass(frozen=True)
class TraceConfig:
    """Tracing knobs; JSON round-trippable so shard workers inherit the
    exact configuration of the parent campaign (the jobs-N identity
    depends on every worker bucketing and bounding identically)."""

    #: Requests per time-series bucket (K of the periodic snapshots).
    series_interval: int = 100
    #: Flight-recorder ring capacity (last-N events in a bundle).
    ring_capacity: int = 64
    #: Session plans kept in the rolling traffic transcript.
    transcript_limit: int = 32
    #: Hard span bound per slice; excess spans are counted, not kept.
    max_spans: int = 100_000

    def __post_init__(self) -> None:
        if self.series_interval < 1:
            raise ValueError("series_interval must be >= 1")
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        if self.transcript_limit < 1:
            raise ValueError("transcript_limit must be >= 1")
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")

    def to_json(self) -> Dict[str, Any]:
        return {
            "series_interval": self.series_interval,
            "ring_capacity": self.ring_capacity,
            "transcript_limit": self.transcript_limit,
            "max_spans": self.max_spans,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TraceConfig":
        return cls(**{key: int(value) for key, value in data.items()})


class SliceTracer:
    """Records one slice's causal timeline (see module docstring)."""

    def __init__(
        self,
        scheme: str,
        seed: int,
        *,
        config: Optional[TraceConfig] = None,
        chaos_seed: Optional[int] = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.trace = SliceTrace(scheme=scheme, seed=seed, chaos_seed=chaos_seed)
        #: Per-slice flight recorder — deliberately NOT the process-wide
        #: ring: bundles must capture this slice's tail, not whatever a
        #: neighbouring slice in the same worker process emitted.
        self.ring = EventRing(capacity=self.config.ring_capacity)
        self.series = SeriesSampler(self.config.series_interval)
        self.clock = 0.0
        #: Everything a bundle needs to re-run this slice (traffic and
        #: supervision configs, request budget, chaos seed); set by
        #: ``run_fleet_slice`` before the driver starts.
        self.replay_identity: Dict[str, Any] = {}
        self._server = None
        self._session_index = -1
        self._session_kind = ""
        self._session_span: Optional[Span] = None
        self._session_requests = 0
        self._request_index = 0
        self._transcript: List[Dict[str, Any]] = []
        self._marks = {name: 0.0 for name in _CANARY_COUNTERS}
        self._seen_trips = 0
        self._seen_restarts = 0

    # -- lifecycle --------------------------------------------------------

    def attach(self, server) -> "SliceTracer":
        """Adopt a booted server; the server's request funnel and fork
        bookkeeping start feeding this tracer."""
        self._server = server
        server.tracer = self
        for name in _CANARY_COUNTERS:
            self._marks[name] = telemetry.counter_value(name)
        supervisor = server.supervisor
        if supervisor is not None:
            self._seen_trips = supervisor.breaker.trips
            self._seen_restarts = supervisor.parent_restarts
        self.series.start(self.clock)
        self.ring.emit(
            "slice-start", scheme=self.trace.scheme, seed=self.trace.seed
        )
        return self

    def finalize(self, record) -> SliceTrace:
        """Close the timeline and fold the slice record in.

        Called after the audit, so an audit divergence found by
        ``_audit_slice`` triggers its post-mortem bundle here.
        """
        self._close_session()
        self.ring.emit(
            "slice-end", requests=record.requests, breaches=record.breaches
        )
        if record.audit_divergences:
            self._capture_bundle(
                "audit-divergence",
                detail="; ".join(record.audit_divergences[:3]),
            )
        trace = self.trace
        trace.requests = self._request_index
        trace.series = self.series.finish(self.clock)
        trace.events = [event.to_json() for event in self.ring.events()]
        return trace

    # -- driver hooks -----------------------------------------------------

    def begin_session(self, plan) -> None:
        """The traffic driver is about to serve session ``plan``."""
        self._close_session()
        self._session_index = plan.index
        self._session_kind = plan.kind
        self._session_requests = 0
        self.trace.sessions += 1
        self._session_span = Span(
            name=f"session:{plan.kind}",
            category="session",
            span_id=span_id(self.trace.seed, plan.index),
            parent_id="",
            begin_cycles=self.clock,
            end_cycles=self.clock,
            args={"index": plan.index, "planned_requests": plan.requests},
        )
        transcript = self._transcript
        transcript.append(plan.to_json())
        if len(transcript) > self.config.transcript_limit:
            del transcript[0]
        self.ring.emit(
            "session-begin", index=plan.index, session_kind=plan.kind,
            planned_requests=plan.requests,
        )

    def on_breach(self, kind: str) -> None:
        """The driver confirmed a breach (brute success / leak replay)."""
        self._instant(
            f"breach:{kind}", "breach",
            {"session": self._session_index, "kind": kind},
        )
        self.ring.emit(
            "breach", breach_kind=kind, session=self._session_index,
            request=self._request_index,
        )
        self._capture_bundle("breach", detail=kind)

    # -- server hooks -----------------------------------------------------

    def on_fork(self, child, forks: int) -> None:
        """One committed worker fork (called from the fork bookkeeping)."""
        args: Dict[str, Any] = {"forks": forks}
        if child is not None:
            args["pid"] = child.pid
            stats = child.memory.page_stats()
            args["shared_pages"] = stats["shared_pages"]
            args["private_pages"] = stats["private_pages"]
        self._instant("fork", "fork", args)

    def on_request(self, response) -> None:
        """One served request (called from the server's record funnel)."""
        begin = self.clock
        end = begin + response.cycles
        self.clock = end
        deltas: Dict[str, float] = {}
        for name in _CANARY_COUNTERS:
            now = telemetry.counter_value(name)
            deltas[name] = now - self._marks[name]
            self._marks[name] = now
        parent = self._session_span.span_id if self._session_span else ""
        request = self._request_index
        if len(self.trace.spans) < self.config.max_spans:
            self.trace.spans.append(Span(
                name=f"request:{self._session_kind or 'benign'}",
                category="request",
                span_id=span_id(self.trace.seed, self._session_index, request),
                parent_id=parent,
                begin_cycles=begin,
                end_cycles=end,
                args={
                    "request": request,
                    "outcome": response.outcome,
                    "crashed": response.crashed,
                    "smashed": response.smashed,
                    "signal": response.signal,
                    "prologue_stores": deltas["canary_prologue_stores_total"],
                    "epilogue_checks": deltas["canary_epilogue_checks_total"],
                },
            ))
        else:
            self.trace.spans_dropped += 1
        self.ring.emit(
            "request",
            request=request,
            session=self._session_index,
            session_kind=self._session_kind,
            outcome=response.outcome,
            crashed=response.crashed,
            smashed=response.smashed,
            cycles=response.cycles.hex(),
        )
        if response.outcome == "deadline":
            self._instant(
                "deadline-reap", "supervisor",
                {"request": request, "signal": response.signal},
            )
        elif response.outcome == "quarantined":
            self._instant("quarantined", "supervisor", {"request": request})
        if response.smashed:
            self._instant(
                "smash-detected", "canary",
                {"request": request, "session": self._session_index},
            )
        self._observe_supervisor(request)
        if self._session_span is not None:
            self._session_span.end_cycles = end
            self._session_requests += 1
        self._request_index = request + 1
        self.series.on_request(self.clock)

    # -- internals --------------------------------------------------------

    def _observe_supervisor(self, request: int) -> None:
        """Surface supervisor decisions by diffing its own bookkeeping —
        observation without coupling: the supervisor never learns the
        tracer exists."""
        server = self._server
        supervisor = server.supervisor if server is not None else None
        if supervisor is None:
            return
        trips = supervisor.breaker.trips
        if trips != self._seen_trips:
            self._seen_trips = trips
            self._instant(
                "breaker-trip", "supervisor",
                {"request": request, "trips": trips,
                 "window": supervisor.breaker.remaining},
            )
            self.ring.emit("crash-loop-trip", request=request, trips=trips)
            self._capture_bundle("crash-loop-trip", detail=f"trip {trips}")
        restarts = supervisor.parent_restarts
        if restarts != self._seen_restarts:
            self._seen_restarts = restarts
            self._instant(
                "parent-heal", "supervisor",
                {"request": request, "restarts": restarts},
            )
            self.ring.emit("parent-heal", request=request, restarts=restarts)

    def _instant(
        self, name: str, category: str, args: Dict[str, Any]
    ) -> None:
        parent = self._session_span.span_id if self._session_span else ""
        self.trace.instants.append(Instant(
            name=name, category=category, at_cycles=self.clock,
            parent_id=parent, args=args,
        ))

    def _close_session(self) -> None:
        span = self._session_span
        if span is None:
            return
        span.end_cycles = self.clock
        span.args["requests"] = self._session_requests
        if len(self.trace.spans) < self.config.max_spans:
            self.trace.spans.append(span)
        else:
            self.trace.spans_dropped += 1
        self._session_span = None

    def _capture_bundle(self, trigger: str, detail: str = "") -> None:
        from .bundle import build_bundle

        self.trace.bundles.append(build_bundle(self, trigger, detail))
        telemetry.count(
            "trace_bundles_captured_total",
            help="post-mortem bundles captured by slice tracers",
        )

    # -- bundle source material -------------------------------------------

    def transcript(self) -> List[Dict[str, Any]]:
        """The rolling traffic transcript (most recent sessions last)."""
        return [dict(plan) for plan in self._transcript]

    def supervisor_state(self) -> Dict[str, Any]:
        """Breaker/deadline/heal state at this moment (bundle section)."""
        server = self._server
        supervisor = server.supervisor if server is not None else None
        if supervisor is None:
            return {}
        breaker = supervisor.breaker
        return {
            "breaker_state": breaker.state,
            "breaker_streak": breaker.streak,
            "breaker_trips": breaker.trips,
            "breaker_remaining": breaker.remaining,
            "deadline_cycles": supervisor.config.deadline_cycles,
            "deadline_reaps": supervisor.deadline_reaps,
            "parent_restarts": supervisor.parent_restarts,
        }

    def fault_ledgers(self) -> Dict[str, Any]:
        """Fault-plane ledger tallies at this moment (bundle section)."""
        server = self._server
        plane = (
            getattr(server.kernel, "fault_plane", None)
            if server is not None else None
        )
        if plane is None:
            return {}
        return {
            "delivered": [list(entry) for entry in plane.delivered],
            "absorbed": [list(entry) for entry in plane.absorbed],
            "events": [
                {"kind": event.kind, "detail": event.detail}
                for event in plane.events
            ],
            "activity": plane.activity(),
        }

    def parent_digest(self) -> str:
        """Architectural-snapshot digest of the parent (bundle section)."""
        from ..machine.debug import snapshot_digest

        if self._server is None:
            return ""
        return snapshot_digest(self._server.parent)
