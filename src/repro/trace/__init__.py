"""Deterministic causal tracing + flight-recorder forensics.

The observability layer over the fleet plane (PR 9): span timelines
threaded from traffic session → request → fork → canary lifecycle →
supervisor decision → outcome, per-slice flight-recorder rings frozen
into content-addressed post-mortem bundles, and periodic counter
time-series — all derived purely from seeds and guest cycles, so
``--jobs N`` traces are byte-identical to serial runs and every bundle
replays exactly (``repro postmortem``).

Public surface:

* :class:`TraceConfig` / :class:`SliceTracer` — per-slice recording
  (:mod:`repro.trace.tracer`);
* :func:`span_id`, :class:`Span`, :class:`Instant`,
  :class:`SliceTrace` — the span model (:mod:`repro.trace.spans`);
* :class:`CampaignTrace`, :func:`write_trace`, :func:`write_bundles` —
  campaign aggregation + Perfetto export (:mod:`repro.trace.export`);
* bundle capture/IO/replay (:mod:`repro.trace.bundle`);
* :class:`SeriesSampler`, :func:`merge_series`, :func:`render_series` —
  counter time-series (:mod:`repro.trace.series`).
"""

from .bundle import (
    BUNDLE_SUFFIX,
    BUNDLE_TRIGGERS,
    ReplayResult,
    build_lost_bundle,
    bundle_digest,
    canonical_json,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from .export import CampaignTrace, write_bundles, write_trace
from .series import SERIES_COUNTERS, SeriesSampler, merge_series, render_series
from .spans import Instant, SliceTrace, Span, span_id
from .tracer import SliceTracer, TraceConfig

__all__ = [
    "BUNDLE_SUFFIX", "BUNDLE_TRIGGERS", "ReplayResult", "build_lost_bundle",
    "bundle_digest", "canonical_json", "load_bundle", "replay_bundle",
    "write_bundle", "CampaignTrace", "write_bundles", "write_trace",
    "SERIES_COUNTERS", "SeriesSampler", "merge_series", "render_series",
    "Instant", "SliceTrace", "Span", "span_id",
    "SliceTracer", "TraceConfig",
]
