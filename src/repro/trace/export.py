"""Campaign trace container + Perfetto/Chrome trace-event export.

A :class:`CampaignTrace` is the seed-ordered collection of slice traces
one ``run_fleet`` produced (plus any worker-lost bundles).  Export goes
through the same emitter the profiler uses
(:func:`repro.telemetry.profile.chrome_trace_container` and the
``CLOCK_HZ`` conversion), so a ``--trace-out`` file loads in
``chrome://tracing`` / Perfetto next to a ``repro profile --out`` file
and shares its simulated timeline semantics.

Layout: each slice is a Perfetto *process* (pid = position in scheme ×
seed order, name ``scheme/slice-seed``) with two threads — sessions on
tid 1, requests on tid 2 — and instants pinned to the request thread.
Everything is derived from the deterministic slice traces, so the
export is byte-identical for serial and ``--jobs N`` campaigns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..telemetry.profile import chrome_trace_container, cycles_to_us
from .series import merge_series
from .spans import SliceTrace
from .tracer import TraceConfig


@dataclass
class CampaignTrace:
    """Every slice trace of one campaign, in scheme × seed order."""

    config: TraceConfig = field(default_factory=TraceConfig)
    slices: List[SliceTrace] = field(default_factory=list)
    #: Worker-lost bundles (campaign-level; no slice trace survived).
    lost_bundles: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "repro-campaign-trace",
            "trace_config": self.config.to_json(),
            "slices": [trace.to_json() for trace in self.slices],
            "lost_bundles": [dict(bundle) for bundle in self.lost_bundles],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CampaignTrace":
        return cls(
            config=TraceConfig.from_json(data["trace_config"]),
            slices=[SliceTrace.from_json(s) for s in data["slices"]],
            lost_bundles=[dict(b) for b in data.get("lost_bundles", [])],
        )

    # -- aggregation ------------------------------------------------------

    def bundles(self) -> List[Dict[str, Any]]:
        """Every captured bundle, slice order first, lost bundles last."""
        found: List[Dict[str, Any]] = []
        for trace in self.slices:
            found.extend(trace.bundles)
        found.extend(self.lost_bundles)
        return found

    def merged_series(self, scheme: str) -> List[Dict[str, Any]]:
        """One scheme's campaign curve (bucket-wise snapshot merge)."""
        return merge_series([
            trace.series for trace in self.slices if trace.scheme == scheme
        ])

    def schemes(self) -> List[str]:
        seen: List[str] = []
        for trace in self.slices:
            if trace.scheme not in seen:
                seen.append(trace.scheme)
        return seen

    # -- Perfetto export --------------------------------------------------

    def perfetto(self) -> Dict[str, Any]:
        """Chrome trace-event JSON over every slice (see module docstring)."""
        trace_events: List[Dict[str, Any]] = []
        spans_total = 0
        for pid, trace in enumerate(self.slices, start=1):
            process = f"{trace.scheme}/slice-{trace.seed}"
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
                "args": {"name": process},
            })
            for tid, thread in ((1, "sessions"), (2, "requests")):
                trace_events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": thread},
                })
            for span in trace.spans:
                tid = 1 if span.category == "session" else 2
                trace_events.append({
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": cycles_to_us(span.begin_cycles),
                    "dur": cycles_to_us(span.end_cycles - span.begin_cycles),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.args,
                    },
                })
                spans_total += 1
            for instant in trace.instants:
                trace_events.append({
                    "name": instant.name,
                    "cat": instant.category,
                    "ph": "i",
                    "s": "t",
                    "ts": cycles_to_us(instant.at_cycles),
                    "pid": pid,
                    "tid": 2,
                    "args": {
                        "parent_id": instant.parent_id,
                        **instant.args,
                    },
                })
        return chrome_trace_container(trace_events, {
            "slices": len(self.slices),
            "spans": spans_total,
            "bundles": len(self.bundles()),
        })

    def render(self) -> str:
        """Terminal summary of the campaign trace."""
        lines = []
        for trace in self.slices:
            lines.append(
                f"  {trace.scheme}/slice-{trace.seed}: "
                f"{trace.sessions} session(s), {trace.requests} request(s), "
                f"{len(trace.spans)} span(s), {len(trace.instants)} "
                f"instant(s), {len(trace.bundles)} bundle(s)"
                + (f", {trace.spans_dropped} span(s) dropped"
                   if trace.spans_dropped else "")
            )
        for bundle in self.lost_bundles:
            lines.append(
                f"  {bundle['scheme']}: worker-lost bundle covering "
                f"seeds {bundle.get('seeds', [])}"
            )
        return "\n".join(lines)


def write_trace(trace: CampaignTrace, path: str) -> None:
    """Write the Perfetto export (the ``--trace-out`` artifact)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace.perfetto(), handle, indent=2)
        handle.write("\n")


def write_bundles(trace: CampaignTrace, directory: str) -> List[str]:
    """Write every captured bundle as a ``.pmb`` file; returns paths."""
    from .bundle import write_bundle

    return [write_bundle(payload, directory) for payload in trace.bundles()]
