"""Post-mortem bundles: content-addressed forensics, replayable by seed.

When a slice hits a breach, an audit divergence, or a crash-loop trip —
or the campaign loses a shard worker — the tracer freezes the moment
into a *bundle*: the parent's architectural-snapshot digest, the
flight-recorder tail, the fault-plane ledgers, the supervisor's breaker
and deadline state, and the rolling traffic-session transcript, plus
the replay identity (seeds and configs) that produced it.

Bundles are written as ``.pmb`` JSON files named by the sha256 of their
canonical serialization, so a bundle *is* its content: two campaigns
that captured the same incident write the same file, and a corrupted
artifact can never masquerade as the incident it claims to be.

``repro postmortem <bundle>`` re-runs the recorded slice seed with a
fresh tracer and asserts the re-captured bundle is byte-identical —
every recorded event, ledger entry, and digest must reproduce exactly,
which is only possible because every layer underneath (traffic, chaos,
supervision, entropy) is a pure function of the same seeds.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import BundleError

BUNDLE_KIND = "repro-postmortem"
BUNDLE_VERSION = 1
BUNDLE_SUFFIX = ".pmb"

#: Everything that may freeze a bundle, in severity order.
BUNDLE_TRIGGERS = (
    "breach", "audit-divergence", "crash-loop-trip", "worker-lost",
)


def canonical_json(payload: Dict[str, Any]) -> str:
    """The canonical serialization bundles are addressed and compared by."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def bundle_digest(payload: Dict[str, Any]) -> str:
    """Hex sha256 of the canonical serialization."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def build_bundle(tracer, trigger: str, detail: str = "") -> Dict[str, Any]:
    """Freeze one tracer's current moment into a bundle payload."""
    if trigger not in BUNDLE_TRIGGERS:
        raise ValueError(f"unknown bundle trigger {trigger!r}")
    trace = tracer.trace
    return {
        "kind": BUNDLE_KIND,
        "version": BUNDLE_VERSION,
        "trigger": trigger,
        "detail": detail,
        #: Which capture this was within its slice — replay matches the
        #: recorded and re-captured bundles up by (trigger, ordinal).
        "ordinal": len(trace.bundles),
        "scheme": trace.scheme,
        "seed": trace.seed,
        "chaos_seed": trace.chaos_seed,
        "session_index": tracer._session_index,
        "request_index": tracer._request_index,
        "clock_cycles": tracer.clock.hex(),
        "trace_config": tracer.config.to_json(),
        "slice": dict(tracer.replay_identity),
        "parent_digest": tracer.parent_digest(),
        "events": [event.to_json() for event in tracer.ring.events()],
        "supervisor": tracer.supervisor_state(),
        "faults": tracer.fault_ledgers(),
        "transcript": tracer.transcript(),
    }


def build_lost_bundle(
    scheme: str,
    seeds: List[int],
    identity: Dict[str, Any],
) -> Dict[str, Any]:
    """A campaign-level bundle for slices lost with their shard worker.

    There is no tracer to freeze — the worker died — so the bundle holds
    only the replay identity; :func:`replay_bundle` re-runs every lost
    seed serially and demands a clean, audited slice from each.
    """
    return {
        "kind": BUNDLE_KIND,
        "version": BUNDLE_VERSION,
        "trigger": "worker-lost",
        "detail": f"{len(seeds)} slice(s) lost with their shard worker",
        "ordinal": 0,
        "scheme": scheme,
        "seed": seeds[0] if seeds else 0,
        "seeds": list(seeds),
        "chaos_seed": identity.get("chaos_seed"),
        "slice": dict(identity),
    }


def write_bundle(payload: Dict[str, Any], directory: str) -> str:
    """Write one content-addressed ``.pmb`` file; returns its path."""
    os.makedirs(directory, exist_ok=True)
    name = f"{bundle_digest(payload)[:16]}{BUNDLE_SUFFIX}"
    path = os.path.join(directory, name)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    """Read and validate one ``.pmb`` file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise BundleError(f"unreadable bundle {path}: {error}")
    if not isinstance(payload, dict) or payload.get("kind") != BUNDLE_KIND:
        raise BundleError(f"{path} is not a post-mortem bundle")
    if payload.get("version") != BUNDLE_VERSION:
        raise BundleError(
            f"{path}: bundle version {payload.get('version')!r}, "
            f"this build reads {BUNDLE_VERSION}"
        )
    return payload


@dataclass
class ReplayResult:
    """Verdict of one bundle replay."""

    ok: bool
    trigger: str
    seed: int
    divergences: List[str] = field(default_factory=list)
    replayed: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        lines = [
            f"bundle: trigger {self.trigger}, slice seed {self.seed}",
        ]
        for line in self.divergences:
            lines.append(f"  REPLAY DIVERGENCE: {line}")
        lines.append(
            "POST-MORTEM REPLAY EXACT" if self.ok
            else f"{len(self.divergences)} replay divergence(s)"
        )
        return "\n".join(lines)


def _slice_kwargs(identity: Dict[str, Any]) -> Dict[str, Any]:
    from ..fleet.supervisor import SupervisorConfig
    from ..fleet.traffic import TrafficConfig

    raw_chaos = identity.get("chaos_seed")
    return {
        "config": TrafficConfig.from_json(identity["traffic"]),
        "request_budget": int(identity["request_budget"]),
        "supervision": SupervisorConfig.from_json(identity["supervision"]),
        "chaos_seed": None if raw_chaos is None else int(raw_chaos),
        "audit": True,
    }


def replay_bundle(payload: Dict[str, Any]) -> ReplayResult:
    """Re-run the bundle's slice seed and compare moment for moment.

    The recorded and re-captured bundles must be *byte-identical* under
    canonical serialization — the recorded event sequence, ledger state,
    and parent digest all reproduce, or the divergent sections are named
    in the result.
    """
    from ..fleet.campaign import run_fleet_slice
    from .tracer import SliceTracer, TraceConfig

    identity = payload.get("slice") or {}
    if "traffic" not in identity:
        raise BundleError(
            "bundle carries no replay identity (captured outside a "
            "fleet slice run)"
        )
    kwargs = _slice_kwargs(identity)
    trigger = payload.get("trigger", "")
    seed = int(payload["seed"])
    scheme = payload["scheme"]

    if trigger == "worker-lost":
        divergences: List[str] = []
        budgets = payload.get("budgets", {})
        for lost_seed in payload.get("seeds", [seed]):
            seed_kwargs = dict(kwargs)
            seed_kwargs["request_budget"] = int(
                budgets.get(str(lost_seed), kwargs["request_budget"])
            )
            record = run_fleet_slice(scheme, int(lost_seed), **seed_kwargs)
            if record.requests == 0:
                divergences.append(
                    f"seed {lost_seed}: replayed slice served no requests"
                )
            for line in record.audit_divergences:
                divergences.append(f"seed {lost_seed}: {line}")
        return ReplayResult(
            ok=not divergences, trigger=trigger, seed=seed,
            divergences=divergences,
        )

    tracer = SliceTracer(
        scheme, seed,
        config=TraceConfig.from_json(payload["trace_config"]),
        chaos_seed=kwargs["chaos_seed"],
    )
    record = run_fleet_slice(scheme, seed, tracer=tracer, **kwargs)
    wanted = (trigger, int(payload.get("ordinal", 0)))
    replayed = None
    for bundle in tracer.trace.bundles:
        if (bundle["trigger"], bundle["ordinal"]) == wanted:
            replayed = bundle
            break
    if replayed is None:
        return ReplayResult(
            ok=False, trigger=trigger, seed=seed,
            divergences=[
                f"replay captured no {trigger!r} bundle with ordinal "
                f"{wanted[1]} (slice ended with {record.requests} "
                f"request(s), {len(tracer.trace.bundles)} bundle(s))"
            ],
        )
    if canonical_json(replayed) == canonical_json(payload):
        return ReplayResult(
            ok=True, trigger=trigger, seed=seed, replayed=replayed
        )
    divergences = [
        f"section {key!r}: recorded != replayed"
        for key in sorted(set(payload) | set(replayed))
        if payload.get(key) != replayed.get(key)
    ]
    return ReplayResult(
        ok=False, trigger=trigger, seed=seed,
        divergences=divergences, replayed=replayed,
    )
