"""The span model: deterministic IDs, guest-cycle timestamps.

A span is one timed region on a slice's causal timeline — a traffic
session or a served request — and an instant is a zero-duration marker
(a fork, a supervisor decision, a breach).  Two rules make traces
shard- and replay-invariant:

* **IDs are pure functions.**  :func:`span_id` mixes
  ``(slice_seed, session_index, request_index)`` through a
  splitmix64-style finalizer — no global counter, no allocation order —
  so the same request gets the same ID in a serial run, under
  ``--jobs N``, and in a post-mortem replay.
* **Timestamps are guest cycles.**  The tracer advances a per-slice
  cycle clock by each response's simulated cycles; wall clock never
  appears.  Cycle floats serialize as ``float.hex()`` (the
  :class:`~repro.fleet.campaign.FleetSlice` convention) so traces are
  byte-stable across JSON round trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

_MASK64 = (1 << 64) - 1

#: Splitmix64 finalizer constants (Steele et al.) — the same mixer the
#: traffic plane uses for per-session entropy seeds.
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
#: Per-argument salts so (a, b) and (b, a) never collide.
_SALTS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)


def _mix64(value: int) -> int:
    value &= _MASK64
    value ^= value >> 30
    value = (value * _MIX_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_2) & _MASK64
    value ^= value >> 31
    return value


def span_id(
    slice_seed: int, session_index: int, request_index: int = -1
) -> str:
    """16-hex-digit span ID, pure in its arguments.

    ``request_index = -1`` names the session span itself; request spans
    pass their slice-local request ordinal.
    """
    acc = 0
    for salt, part in zip(
        _SALTS, (slice_seed, session_index, request_index)
    ):
        acc = _mix64(acc ^ ((part * salt) & _MASK64))
    return f"{acc or 1:016x}"


@dataclass
class Span:
    """One timed region on the slice timeline."""

    name: str
    category: str
    span_id: str
    parent_id: str
    begin_cycles: float
    end_cycles: float
    args: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "begin_cycles": self.begin_cycles.hex(),
            "end_cycles": self.end_cycles.hex(),
            "args": dict(self.args),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            category=data["category"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            begin_cycles=float.fromhex(data["begin_cycles"]),
            end_cycles=float.fromhex(data["end_cycles"]),
            args=dict(data["args"]),
        )


@dataclass
class Instant:
    """A zero-duration marker (fork, supervisor decision, breach)."""

    name: str
    category: str
    at_cycles: float
    parent_id: str = ""
    args: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "at_cycles": self.at_cycles.hex(),
            "parent_id": self.parent_id,
            "args": dict(self.args),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Instant":
        return cls(
            name=data["name"],
            category=data["category"],
            at_cycles=float.fromhex(data["at_cycles"]),
            parent_id=data["parent_id"],
            args=dict(data["args"]),
        )


@dataclass
class SliceTrace:
    """Everything one traced slice produced (the shard-merge unit)."""

    scheme: str
    seed: int
    chaos_seed: Any = None
    sessions: int = 0
    requests: int = 0
    spans_dropped: int = 0
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    #: Flight-recorder tail at finalize (Event.to_json dicts).
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Periodic counter-delta points (see :mod:`repro.trace.series`).
    series: List[Dict[str, Any]] = field(default_factory=list)
    #: Post-mortem bundle payloads captured during the slice.
    bundles: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "seed": self.seed,
            "chaos_seed": self.chaos_seed,
            "sessions": self.sessions,
            "requests": self.requests,
            "spans_dropped": self.spans_dropped,
            "spans": [span.to_json() for span in self.spans],
            "instants": [instant.to_json() for instant in self.instants],
            "events": [dict(event) for event in self.events],
            "series": [dict(point) for point in self.series],
            "bundles": [dict(bundle) for bundle in self.bundles],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SliceTrace":
        raw_chaos = data.get("chaos_seed")
        return cls(
            scheme=data["scheme"],
            seed=int(data["seed"]),
            chaos_seed=None if raw_chaos is None else int(raw_chaos),
            sessions=int(data["sessions"]),
            requests=int(data["requests"]),
            spans_dropped=int(data["spans_dropped"]),
            spans=[Span.from_json(span) for span in data["spans"]],
            instants=[
                Instant.from_json(instant) for instant in data["instants"]
            ],
            events=[dict(event) for event in data["events"]],
            series=[dict(point) for point in data["series"]],
            bundles=[dict(bundle) for bundle in data["bundles"]],
        )
