"""Per-slice counter time-series: detection/throughput/fault curves.

Every ``interval`` requests the sampler closes a *point*: the delta of a
fixed counter set since the previous point, plus the guest cycles the
bucket consumed.  Points reuse the PR 5 snapshot merge algebra —
:func:`merge_series` folds bucket *k* across every slice with
:meth:`~repro.telemetry.registry.Snapshot.merge` — so a campaign-wide
curve is the same associative fold the sharded counter plane already
trusts, and jobs-N output is bit-identical to serial.

Counter reads go through :func:`repro.telemetry.counter_value` (a dict
lookup, never a registration), so sampling cannot perturb the audited
counter set of an untraced run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .. import telemetry
from ..telemetry.registry import Snapshot

#: Counters a series point tracks — the detection-rate, availability,
#: and fault-activity axes of the campaign curves.
SERIES_COUNTERS: Tuple[str, ...] = (
    "fleet_requests_total",
    "fleet_request_crashes_total",
    "canary_smashes_detected_total",
    "fleet_deadline_reaps_total",
    "fleet_crash_loop_trips_total",
    "faults_delivered_total",
    "faults_absorbed_total",
    "fault_degradation_events_total",
)


class SeriesSampler:
    """Closes one counter-delta point every ``interval`` requests."""

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError("series interval must be >= 1")
        self.interval = interval
        self.points: List[Dict[str, Any]] = []
        self._marks: Dict[str, float] = {}
        self._mark_cycles = 0.0
        self._since = 0
        self._requests = 0

    def start(self, clock_cycles: float = 0.0) -> None:
        self._marks = {
            name: telemetry.counter_value(name) for name in SERIES_COUNTERS
        }
        self._mark_cycles = clock_cycles
        self._since = 0
        self._requests = 0
        self.points = []

    def on_request(self, clock_cycles: float) -> None:
        self._since += 1
        self._requests += 1
        if self._since >= self.interval:
            self._close_point(clock_cycles)

    def finish(self, clock_cycles: float) -> List[Dict[str, Any]]:
        """Close the partial tail bucket (if any) and return all points."""
        if self._since:
            self._close_point(clock_cycles)
        return self.points

    def _close_point(self, clock_cycles: float) -> None:
        counters: Dict[str, float] = {}
        for name in SERIES_COUNTERS:
            now = telemetry.counter_value(name)
            counters[name] = now - self._marks[name]
            self._marks[name] = now
        self.points.append({
            "request": self._requests,
            "requests": self._since,
            "cycles": (clock_cycles - self._mark_cycles).hex(),
            "counters": counters,
        })
        self._mark_cycles = clock_cycles
        self._since = 0


def merge_series(
    series_list: List[List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Fold bucket *k* across slices via the snapshot merge algebra.

    Slices are aligned on their request ordinals (every slice buckets at
    the same interval), so bucket *k* of the merged curve covers the
    same request window of every slice.  Associative with the empty
    series as identity, like :meth:`Snapshot.merge` itself.
    """
    merged: List[Dict[str, Any]] = []
    for series in series_list:
        for index, point in enumerate(series):
            if index == len(merged):
                merged.append({
                    "request": point["request"],
                    "requests": point["requests"],
                    "cycles": point["cycles"],
                    "counters": dict(point["counters"]),
                })
                continue
            bucket = merged[index]
            bucket["request"] = max(bucket["request"], point["request"])
            bucket["requests"] += point["requests"]
            bucket["cycles"] = (
                float.fromhex(bucket["cycles"])
                + float.fromhex(point["cycles"])
            ).hex()
            bucket["counters"] = Snapshot(bucket["counters"]).merge(
                Snapshot(point["counters"])
            ).to_json()
    return merged


def render_series(points: List[Dict[str, Any]]) -> str:
    """Terminal curve table: one row per bucket."""
    from ..harness.metrics import CLOCK_HZ

    lines = [
        f"{'bucket':>7s} {'requests':>9s} {'detect':>7s} {'crash':>6s} "
        f"{'det/req':>8s} {'rps':>12s} {'faults':>7s}"
    ]
    for index, point in enumerate(points):
        counters = point["counters"]
        requests = point["requests"]
        cycles = float.fromhex(point["cycles"])
        detections = counters.get("canary_smashes_detected_total", 0)
        crashes = counters.get("fleet_request_crashes_total", 0)
        faults = (
            counters.get("faults_delivered_total", 0)
            + counters.get("faults_absorbed_total", 0)
            + counters.get("fault_degradation_events_total", 0)
        )
        rate = detections / requests if requests else 0.0
        rps = requests / (cycles / CLOCK_HZ) if cycles > 0 else 0.0
        lines.append(
            f"{index:>7d} {requests:>9,d} {detections:>7,.0f} "
            f"{crashes:>6,.0f} {rate:>8.3f} {rps:>12,.0f} {faults:>7,.0f}"
        )
    if not points:
        lines.append("(no series points: slice shorter than one interval)")
    return "\n".join(lines)
