"""The modified ``__stack_chk_fail`` (paper Figures 3 and 4).

Instrumentation-based P-SSP cannot afford to inflate every epilogue with
the split-xor-compare logic, so the check is folded into the failure stub
itself: the epilogue passes the (packed 2×32-bit) stack canary in ``rdi``
and calls ``__stack_chk_fail``; the stub

1. splits ``rdi`` into ``C0`` (low 32) and ``C1`` (high 32),
2. compares ``C0 ⊕ C1`` against the folded TLS canary,
3. on a match sets ZF and *returns* (the caller's ``je`` then skips the
   real failure path), and
4. on a mismatch falls into ``__GI__fortify_fail``, aborting.

The stub stays compatible with plain SSP callers: they only reach it when
a mismatch was already detected, with ``rdi`` holding unrelated data, so
step 2 fails with overwhelming probability and the process aborts as SSP
intended.
"""

from __future__ import annotations

from ..binfmt.elf import DYNAMIC, Binary
from ..isa.instructions import Function, Imm, Label, Mem, Reg, Sym
from ..machine.tls import CANARY_OFFSET


def _emit_fold32_of_tls(function: Function, scratch: str, temp: str) -> None:
    """Emit: ``scratch = (tls_canary ^ (tls_canary >> 32)) & 0xffffffff``."""
    function.emit("mov", Reg(scratch), Mem(seg="fs", disp=CANARY_OFFSET))
    function.emit("mov", Reg(temp), Reg(scratch))
    function.emit("shr", Reg(temp), Imm(32))
    function.emit("xor", Reg(scratch), Reg(temp))
    function.emit("shl", Reg(scratch), Imm(32))
    function.emit("shr", Reg(scratch), Imm(32))


def build_stack_chk_function(name: str = "__stack_chk_fail") -> Function:
    """Build the replacement stub as simulated code."""
    function = Function(name)
    function.protected = "pssp-binary-rt"
    # Split the packed stack canary in rdi.
    function.emit("mov", Reg("rdx"), Reg("rdi"))
    function.emit("shr", Reg("rdx"), Imm(32))          # C1
    function.emit("mov", Reg("rcx"), Reg("rdi"))
    function.emit("shl", Reg("rcx"), Imm(32))
    function.emit("shr", Reg("rcx"), Imm(32))          # C0
    function.emit("xor", Reg("rcx"), Reg("rdx"))       # C0 ^ C1
    _emit_fold32_of_tls(function, "rdx", "rsi")
    function.emit("cmp", Reg("rcx"), Reg("rdx"))
    function.emit("je", Label(".match"))
    function.emit("call", Sym("__GI__fortify_fail"))   # never returns
    function.label_here(".match")
    function.emit("ret")                               # ZF=1 rides back
    return function


def build_stack_chk_binary() -> Binary:
    """Package the stub for LD_PRELOAD interposition (dynamic binaries)."""
    binary = Binary("libpssp_chk.so", link_type=DYNAMIC)
    binary.protection = "pssp-binary-rt"
    binary.add_function(build_stack_chk_function())
    return binary
