"""Layout-preserving static rewriting: SSP → instrumentation-based P-SSP.

The paper's rewriter (§V-C) faces two constraints and we enforce both:

1. **Stack layout preservation** — the stack canary may not grow, so the
   64-bit canary is downgraded to a packed pair of 32-bit halves
   occupying the same word (entropy trade-off acknowledged in the paper's
   caveat).  The prologue is byte-identical to SSP's except for the TLS
   offset (``fs:0x28`` → ``fs:0x2a8``).
2. **Address layout preservation** — no rewritten sequence may be longer
   (in encoded bytes) than what it replaces.  The replaced epilogue
   window (``xor``+``je``+``call`` = 16 bytes) is exactly refilled by the
   ``push``/``pop``/``call`` sequence of Code 6; we assert equality and
   pad with ``nop`` if the model ever leaves slack.
"""

from __future__ import annotations

from typing import List

from ..binfmt.elf import Binary
from ..errors import RewriteError
from ..isa.encoding import function_length
from ..isa.instructions import Function, Instruction, Label, Mem, Reg, Sym, ins
from ..machine.tls import SHADOW_C0_OFFSET
from .matcher import find_epilogues, find_prologues, is_ssp_protected


def _shift_labels(function: Function, splice_at: int, delta: int) -> None:
    """Adjust label indices after inserting ``delta`` instructions."""
    for name, index in function.labels.items():
        if index >= splice_at:
            function.labels[name] = index + delta


def rewrite_function(function: Function) -> Function:
    """Return an instrumented copy of one SSP-protected function."""
    clone = function.copy()
    prologues = find_prologues(clone)
    epilogues = find_epilogues(clone)
    if not prologues or not epilogues:
        raise RewriteError(f"{function.name}: no SSP pattern to rewrite")
    original_bytes = function_length(clone.body)

    # 1. Prologue: retarget the TLS load at the shadow canary (same-length
    #    substitution: both offsets encode as disp32).
    for match in prologues:
        old = clone.body[match.index]
        destination = old.operands[0]
        clone.body[match.index] = ins(
            "mov", destination, Mem(seg="fs", disp=SHADOW_C0_OFFSET),
            note="pssp-binary-prologue",
        )

    # 2. Epilogues: replace xor/je/call with the rdi-passing check-call
    #    (Code 6).  Process right-to-left so indices stay valid.
    for match in sorted(epilogues, key=lambda m: m.load_index, reverse=True):
        load = clone.body[match.load_index]
        canary_reg = load.operands[0]
        note = "pssp-binary-epilogue"
        replacement: List[Instruction] = [
            ins("push", Reg("rdi"), note=note),
            ins("push", canary_reg, note=note),
            ins("pop", Reg("rdi"), note=note),
            ins("call", Sym("__stack_chk_fail"), note=note),
            ins("pop", Reg("rdi"), note=note),
            ins("je", Label(match.ok_label), note=note),
            ins("call", Sym("__stack_chk_fail"), note=note),
        ]
        old_window = clone.body[match.xor_index : match.call_index + 1]
        old_bytes = function_length(old_window)
        new_bytes = function_length(replacement)
        if new_bytes > old_bytes:
            raise RewriteError(
                f"{function.name}: rewritten epilogue is {new_bytes} bytes, "
                f"original {old_bytes} — address layout would break"
            )
        while new_bytes < old_bytes:
            replacement.append(ins("nop", note=note))
            new_bytes += 1
        clone.body[match.xor_index : match.call_index + 1] = replacement
        _shift_labels(clone, match.xor_index + 1, len(replacement) - 3)

    rewritten_bytes = function_length(clone.body)
    if rewritten_bytes != original_bytes:
        raise RewriteError(
            f"{function.name}: byte length changed {original_bytes} → "
            f"{rewritten_bytes}"
        )
    clone.protected = "pssp-binary"
    return clone


def instrument_binary(binary: Binary, *, suffix: str = ".pssp") -> Binary:
    """Instrument every SSP-protected function in ``binary``.

    Unprotected functions are left untouched (the rewriter only upgrades
    existing SSP sites, as the paper assumes ``-fstack-protector`` input).
    Dynamic binaries gain zero bytes (Table II); the replacement
    ``__stack_chk_fail`` arrives via LD_PRELOAD interposition.
    """
    result = binary.clone()
    result.name = binary.name + suffix
    result.protection = "pssp-binary"
    for name, function in list(result.functions.items()):
        if is_ssp_protected(function):
            result.functions[name] = rewrite_function(function)
    return result
