"""Layout-preserving static rewriting: SSP → instrumentation-based P-SSP.

The paper's rewriter (§V-C) faces two constraints and we enforce both:

1. **Stack layout preservation** — the stack canary may not grow, so the
   64-bit canary is downgraded to a packed pair of 32-bit halves
   occupying the same word (entropy trade-off acknowledged in the paper's
   caveat).  The prologue is byte-identical to SSP's except for the TLS
   offset (``fs:0x28`` → ``fs:0x2a8``).
2. **Address layout preservation** — no rewritten sequence may be longer
   (in encoded bytes) than what it replaces.  The replaced epilogue
   window (``xor``+``je``+``call`` = 16 bytes) is exactly refilled by the
   ``push``/``pop``/``call`` sequence of Code 6; we assert equality and
   pad with ``nop`` if the model ever leaves slack.
"""

from __future__ import annotations

from typing import List

from ..binfmt.elf import Binary
from ..errors import RewriteError
from ..isa.encoding import function_length
from ..isa.instructions import Function, Instruction, Label, Mem, Reg, Sym, ins
from ..machine.tls import SHADOW_C0_OFFSET
from .matcher import find_epilogues, find_prologues, is_ssp_protected


def _shift_labels(function: Function, splice_at: int, delta: int) -> None:
    """Adjust label indices after inserting ``delta`` instructions."""
    for name, index in function.labels.items():
        if index >= splice_at:
            function.labels[name] = index + delta


def rewrite_function(function: Function) -> Function:
    """Return an instrumented copy of one SSP-protected function."""
    clone = function.copy()
    prologues = find_prologues(clone)
    epilogues = find_epilogues(clone)
    if not prologues or not epilogues:
        raise RewriteError(f"{function.name}: no SSP pattern to rewrite")
    original_bytes = function_length(clone.body)

    # 1. Prologue: retarget the TLS load at the shadow canary (same-length
    #    substitution: both offsets encode as disp32).
    for match in prologues:
        old = clone.body[match.index]
        destination = old.operands[0]
        clone.body[match.index] = ins(
            "mov", destination, Mem(seg="fs", disp=SHADOW_C0_OFFSET),
            note="pssp-binary-prologue",
        )

    # 2. Epilogues: replace xor/je/call with the rdi-passing check-call
    #    (Code 6).  Process right-to-left so indices stay valid.
    for match in sorted(epilogues, key=lambda m: m.load_index, reverse=True):
        load = clone.body[match.load_index]
        canary_reg = load.operands[0]
        note = "pssp-binary-epilogue"
        replacement: List[Instruction] = [
            ins("push", Reg("rdi"), note=note),
            ins("push", canary_reg, note=note),
            ins("pop", Reg("rdi"), note=note),
            ins("call", Sym("__stack_chk_fail"), note=note),
            ins("pop", Reg("rdi"), note=note),
            ins("je", Label(match.ok_label), note=note),
            ins("call", Sym("__stack_chk_fail"), note=note),
        ]
        old_window = clone.body[match.xor_index : match.call_index + 1]
        old_bytes = function_length(old_window)
        new_bytes = function_length(replacement)
        if new_bytes > old_bytes:
            raise RewriteError(
                f"{function.name}: rewritten epilogue is {new_bytes} bytes, "
                f"original {old_bytes} — address layout would break"
            )
        while new_bytes < old_bytes:
            replacement.append(ins("nop", note=note))
            new_bytes += 1
        clone.body[match.xor_index : match.call_index + 1] = replacement
        _shift_labels(clone, match.xor_index + 1, len(replacement) - 3)

    rewritten_bytes = function_length(clone.body)
    if rewritten_bytes != original_bytes:
        raise RewriteError(
            f"{function.name}: byte length changed {original_bytes} → "
            f"{rewritten_bytes}"
        )
    clone.protected = "pssp-binary"
    return clone


#: Instruction-note prefixes a layout-preserving rewrite may introduce.
REWRITE_NOTE_PREFIXES = ("pssp-binary", "dyninst")

#: Function names the static (Dyninst-style) path may append as a new
#: code section; anything else appearing in a rewritten binary is a bug.
STATIC_SECTION_FUNCTIONS = frozenset(
    {"__pssp_fork", "__pssp_stack_chk_fail", "__pssp_setup"}
)


def verify_layout_preserved(original: Binary, rewritten: Binary) -> List[str]:
    """Check the rewriter's two §V-C contracts; return violations.

    1. every function shared with the input keeps its exact encoded byte
       length (address layout preservation), and
    2. every instruction that differs from the input carries a rewrite
       note (``pssp-binary-*``/``dyninst-*``) — the rewriter may not
       silently perturb unrelated code.  Functions may only be *added*
       (the static path's appended section), never removed.

    Used by the conformance fuzzer on every rewritten build, so a future
    matcher/splice regression is caught by the first fuzz run rather
    than by a crashing victim.
    """
    problems: List[str] = []
    for name, before in original.functions.items():
        after = rewritten.functions.get(name)
        if after is None:
            problems.append(f"{name}: function removed by rewrite")
            continue
        bytes_before = function_length(before.body)
        bytes_after = function_length(after.body)
        if bytes_before != bytes_after:
            problems.append(
                f"{name}: byte length {bytes_before} -> {bytes_after}"
            )
        if len(before.body) != len(after.body):
            # Instruction-count changes are fine (push/pop sequences trade
            # against nop padding) as long as every new instruction is
            # note-tagged; positional comparison below would misalign, so
            # fall back to checking the tags only.
            untagged = [
                str(instruction)
                for instruction in after.body
                if instruction not in before.body
                and not instruction.note.startswith(REWRITE_NOTE_PREFIXES)
            ]
            if untagged:
                problems.append(
                    f"{name}: untagged rewritten instructions {untagged[:3]}"
                )
            continue
        for index, (old, new) in enumerate(zip(before.body, after.body)):
            if old != new and not new.note.startswith(REWRITE_NOTE_PREFIXES):
                problems.append(
                    f"{name}[{index}]: {old} -> {new} lacks a rewrite note"
                )
    added = set(rewritten.functions) - set(original.functions)
    unexpected = added - STATIC_SECTION_FUNCTIONS
    if unexpected:
        problems.append(f"unexpected added functions: {sorted(unexpected)}")
    return problems


def instrument_binary(binary: Binary, *, suffix: str = ".pssp") -> Binary:
    """Instrument every SSP-protected function in ``binary``.

    Unprotected functions are left untouched (the rewriter only upgrades
    existing SSP sites, as the paper assumes ``-fstack-protector`` input).
    Dynamic binaries gain zero bytes (Table II); the replacement
    ``__stack_chk_fail`` arrives via LD_PRELOAD interposition.
    """
    result = binary.clone()
    result.name = binary.name + suffix
    result.protection = "pssp-binary"
    for name, function in list(result.functions.items()):
        if is_ssp_protected(function):
            result.functions[name] = rewrite_function(function)
    return result
