"""Static binary instrumentation: SSP → P-SSP rewriting, the modified
``__stack_chk_fail``, and Dyninst-style hooks for static glibc."""

from .dyninst import (
    build_pssp_fork,
    build_pssp_setup,
    instrument_static_binary,
)
from .matcher import (
    EpilogueMatch,
    PrologueMatch,
    find_epilogues,
    find_prologues,
    is_ssp_protected,
)
from .rewrite import instrument_binary, rewrite_function
from .stack_chk import build_stack_chk_binary, build_stack_chk_function

__all__ = [
    "EpilogueMatch",
    "PrologueMatch",
    "build_pssp_fork",
    "build_pssp_setup",
    "build_stack_chk_binary",
    "build_stack_chk_function",
    "find_epilogues",
    "find_prologues",
    "instrument_binary",
    "instrument_static_binary",
    "is_ssp_protected",
    "rewrite_function",
]
