"""Dyninst-style instrumentation of statically linked glibc (paper §V-D).

Statically linked binaries embed their own ``fork`` and
``__stack_chk_fail``; LD_PRELOAD cannot interpose them.  The paper uses
Dyninst to (a) append a new code section holding customized versions and
(b) plant ``jmp`` hooks at the original entry points.

We reproduce both steps: hooked originals become a single ``jmp`` (padded
with ``nop`` to their original byte length, preserving the address
layout), and the new section contributes the +2.78 % static code
expansion Table II reports.
"""

from __future__ import annotations

from ..binfmt.elf import STATIC, Binary
from ..errors import RewriteError
from ..isa.encoding import function_length
from ..isa.instructions import Function, Imm, Label, Mem, Reg, Sym
from ..machine.tls import CANARY_OFFSET, SHADOW_C0_OFFSET
from .rewrite import instrument_binary
from .stack_chk import build_stack_chk_function


def _emit_shadow_refresh(function: Function) -> None:
    """Emit the packed 2×32-bit shadow-canary refresh (Algorithm 1, folded).

    Clobbers rcx, rdx, rsi.  Layout of the packed word:
    ``C0 | (C1 << 32)`` with ``C0 ⊕ C1 == fold32(C)``.
    """
    function.emit("mov", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET))
    function.emit("mov", Reg("rsi"), Reg("rdx"))
    function.emit("shr", Reg("rsi"), Imm(32))
    function.emit("xor", Reg("rdx"), Reg("rsi"))
    function.emit("shl", Reg("rdx"), Imm(32))
    function.emit("shr", Reg("rdx"), Imm(32))          # rdx = fold32(C)
    function.emit("rdrand", Reg("rcx"))
    function.emit("shl", Reg("rcx"), Imm(32))
    function.emit("shr", Reg("rcx"), Imm(32))          # rcx = C0
    function.emit("xor", Reg("rdx"), Reg("rcx"))       # rdx = C1
    function.emit("shl", Reg("rdx"), Imm(32))
    function.emit("or", Reg("rdx"), Reg("rcx"))        # packed
    function.emit("mov", Mem(seg="fs", disp=SHADOW_C0_OFFSET), Reg("rdx"))


def build_pssp_fork() -> Function:
    """The customized ``fork``: clone, then refresh the child's shadow."""
    function = Function("__pssp_fork")
    function.emit("push", Reg("rbp"))
    function.emit("mov", Reg("rbp"), Reg("rsp"))
    function.emit("call", Sym("__libc_fork_syscall"))
    function.emit("cmp", Reg("rax"), Imm(0))
    function.emit("jne", Label(".parent"))
    function.emit("push", Reg("rax"))
    _emit_shadow_refresh(function)
    function.emit("pop", Reg("rax"))
    function.label_here(".parent")
    function.emit("leave")
    function.emit("ret")
    return function


def build_pssp_setup() -> Function:
    """Constructor initialising the shadow canary before ``main``."""
    function = Function("__pssp_setup")
    _emit_shadow_refresh(function)
    function.emit("xor", Reg("rax"), Reg("rax"))
    function.emit("ret")
    return function


def _hook(original: Function, target: str) -> Function:
    """Replace ``original``'s body with a jmp to ``target``, nop-padded."""
    hooked = Function(original.name)
    hooked.emit("jmp", Sym(target), note="dyninst-hook")
    original_bytes = function_length(original.body)
    hooked_bytes = function_length(hooked.body)
    if hooked_bytes > original_bytes:
        raise RewriteError(
            f"{original.name}: too small to hook "
            f"({original_bytes} bytes < jmp {hooked_bytes})"
        )
    while hooked_bytes < original_bytes:
        hooked.emit("nop", note="dyninst-pad")
        hooked_bytes += 1
    hooked.protected = "pssp-binary-hooked"
    return hooked


def instrument_static_binary(binary: Binary, *, suffix: str = ".pssp") -> Binary:
    """Full static-binary instrumentation path.

    1. Rewrite every SSP prologue/epilogue in place (layout preserved).
    2. Hook the embedded ``fork`` and ``__stack_chk_fail`` with jmps.
    3. Append the new code section: ``__pssp_fork``, the Figure-3/4
       ``__pssp_stack_chk_fail``, and the ``__pssp_setup`` constructor.
    """
    if binary.link_type != STATIC:
        raise RewriteError(f"{binary.name} is not statically linked")
    result = instrument_binary(binary, suffix=suffix)
    result.link_type = STATIC

    if not result.has_function("fork") or not result.has_function("__stack_chk_fail"):
        raise RewriteError(
            f"{binary.name}: static glibc stubs missing (link build_static_glibc)"
        )
    result.functions["fork"] = _hook(result.function("fork"), "__pssp_fork")
    result.functions["__stack_chk_fail"] = _hook(
        result.function("__stack_chk_fail"), "__pssp_stack_chk_fail"
    )

    result.add_function(build_pssp_fork())
    result.add_function(build_stack_chk_function("__pssp_stack_chk_fail"))
    setup = build_pssp_setup()
    result.add_function(setup)
    result.constructors.append(setup.name)
    return result
