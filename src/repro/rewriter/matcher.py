"""Pattern matcher for SSP instrumentation sites in compiled binaries.

A real binary rewriter has no compiler metadata: it recognises SSP by the
shape of the instructions — the prologue's ``mov rax, %fs:0x28`` /
``mov -0x8(%rbp), rax`` pair and the epilogue's load/xor/je/call
quadruple.  We match on exactly those shapes (operand structure, not
provenance notes), so the matcher works on any binary whose code happens
to contain SSP idioms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.instructions import Function, Instruction, Label, Mem, Reg, Sym
from ..machine.tls import CANARY_OFFSET


@dataclass
class PrologueMatch:
    """``mov rax, fs:[0x28]`` at ``index`` followed by the frame store."""

    index: int
    store_index: int
    canary_slot: int  # rbp-relative offset of the stack canary


@dataclass
class EpilogueMatch:
    """The canonical SSP check: load, xor-vs-TLS, je, call."""

    load_index: int
    xor_index: int
    je_index: int
    call_index: int
    canary_slot: int
    ok_label: str


def _is_tls_canary_load(instruction: Instruction) -> bool:
    if instruction.op != "mov" or len(instruction.operands) != 2:
        return False
    dst, src = instruction.operands
    return (
        isinstance(dst, Reg)
        and isinstance(src, Mem)
        and src.seg == "fs"
        and src.disp == CANARY_OFFSET
    )


def _is_frame_store(instruction: Instruction, source_reg: str) -> Optional[int]:
    """Return the canary slot offset if this stores ``source_reg`` to the
    frame, else ``None``."""
    if instruction.op != "mov" or len(instruction.operands) != 2:
        return None
    dst, src = instruction.operands
    if (
        isinstance(dst, Mem)
        and dst.base == "rbp"
        and dst.seg is None
        and isinstance(src, Reg)
        and src.name == source_reg
    ):
        return -dst.disp
    return None


def find_prologues(function: Function) -> List[PrologueMatch]:
    """Locate every SSP prologue in ``function``."""
    matches: List[PrologueMatch] = []
    body = function.body
    for i, instruction in enumerate(body):
        if not _is_tls_canary_load(instruction):
            continue
        destination = instruction.operands[0]
        if i + 1 >= len(body):
            continue
        slot = _is_frame_store(body[i + 1], destination.name)
        if slot is not None and slot > 0:
            matches.append(PrologueMatch(i, i + 1, slot))
    return matches


def find_epilogues(function: Function) -> List[EpilogueMatch]:
    """Locate every SSP epilogue check in ``function``."""
    matches: List[EpilogueMatch] = []
    body = function.body
    for i in range(len(body) - 3):
        load, xor, je, call = body[i : i + 4]
        if load.op != "mov" or len(load.operands) != 2:
            continue
        dst, src = load.operands
        if not (
            isinstance(dst, Reg)
            and isinstance(src, Mem)
            and src.base == "rbp"
            and src.seg is None
        ):
            continue
        if xor.op != "xor" or len(xor.operands) != 2:
            continue
        xdst, xsrc = xor.operands
        if not (
            isinstance(xdst, Reg)
            and xdst.name == dst.name
            and isinstance(xsrc, Mem)
            and xsrc.seg == "fs"
            and xsrc.disp == CANARY_OFFSET
        ):
            continue
        if je.op != "je" or not isinstance(je.operands[0], Label):
            continue
        if call.op != "call" or not (
            isinstance(call.operands[0], Sym)
            and call.operands[0].name == "__stack_chk_fail"
        ):
            continue
        matches.append(
            EpilogueMatch(i, i + 1, i + 2, i + 3, -src.disp, je.operands[0].name)
        )
    return matches


def is_ssp_protected(function: Function) -> bool:
    """Heuristic the rewriter uses to decide whether to instrument."""
    return bool(find_prologues(function)) and bool(find_epilogues(function))
