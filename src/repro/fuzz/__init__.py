"""Differential conformance fuzzing across schemes, rewriter, and paths.

The reproduction's claims rest on six protection passes, a
layout-preserving binary rewriter, and two interpreter paths all agreeing
on program behaviour.  This package systematically searches for
disagreements:

* :mod:`repro.fuzz.conformance` — the oracle: one generated program is
  built under every applicable scheme (compiler passes *and* both
  rewriter paths), run down the fast and slow interpreter loops, and
  checked against the unprotected reference fingerprint, the fast/slow
  architectural-state contract, the rewriter layout contract, and the
  fault-outcome invariant (clause 6, backed by :mod:`repro.faults`).
* :mod:`repro.fuzz.fuzzer` — the seeded campaign driver: deterministic
  program generation, failure collection, and one-command seed replay.
* :mod:`repro.fuzz.shrink` — structural minimisation of failing
  :class:`~repro.workloads.generator.ProgramSpec` instances.
* :mod:`repro.fuzz.mutants` — planted bugs (pass, rewriter, and runtime
  layers) with a mutation-kill self-check proving the oracle detects
  real defects rather than rubber-stamping everything.

Entry point: ``python -m repro fuzz`` (see :mod:`repro.cli`).
"""

from .conformance import (
    DEFAULT_FUZZ_SCHEMES,
    ConformanceFailure,
    applicable_schemes,
    check_source,
    fault_invariant_failures,
    scheme_health_failures,
)
from .fuzzer import FuzzFailure, FuzzReport, check_spec, replay_seed, run_fuzz
from .mutants import MUTANTS, mutation_kill_report, planted
from .shrink import shrink_spec

__all__ = [
    "DEFAULT_FUZZ_SCHEMES",
    "ConformanceFailure",
    "applicable_schemes",
    "check_source",
    "fault_invariant_failures",
    "scheme_health_failures",
    "FuzzFailure",
    "FuzzReport",
    "check_spec",
    "replay_seed",
    "run_fuzz",
    "MUTANTS",
    "mutation_kill_report",
    "planted",
    "shrink_spec",
]
