"""Planted bugs that the conformance oracle must catch (mutation kill).

A differential fuzzer that never fails is indistinguishable from one
that checks nothing.  Each :class:`Mutant` here monkeypatches one real
defect into the live tree — spanning the compiler-pass, rewriter, and
runtime layers — and :func:`mutation_kill_report` verifies that a small
seeded campaign flags it.  If a future refactor weakens the oracle (say,
drops the fast/slow snapshot diff or the health probes), the self-check
fails before the weakness can rot silently.

Every mutant is reversible: ``install()`` returns an undo closure, and
:func:`planted` wraps the pair as a context manager, so the self-check
leaves the process state pristine.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..compiler.passes.pssp import PSSPPass
from ..isa.instructions import Function, Mem, Reg
from ..libc import preload as preload_module
from ..libc.preload import PSSPPreload
from ..machine import decode as decode_module
from ..machine.tls import SHADOW_C0_OFFSET, SHADOW_C1_OFFSET
from ..rewriter import dyninst as dyninst_module
from ..rewriter import rewrite as rewrite_module
from ..rewriter import stack_chk as stack_chk_module
from .conformance import DEFAULT_FUZZ_SCHEMES


@dataclass
class Mutant:
    """One plantable defect."""

    name: str
    layer: str  #: "pass" | "rewriter" | "runtime"
    description: str
    #: What the oracle should report (documentation; the self-check only
    #: requires *some* failure, since several clauses may fire at once).
    expected_signal: str
    install: Callable[[], Callable[[], None]]


@contextmanager
def planted(mutant: Mutant):
    """Context manager: plant ``mutant``, always undo.

    Planting monkeypatches live compiler/rewriter/runtime code — a
    toolchain change the build cache's content address cannot see — so
    the cache is dropped on both edges: images built pre-mutant must
    not satisfy in-mutant builds, and mutant-built images must not
    leak back into the clean tree.
    """
    from ..parallel.buildcache import build_cache

    build_cache().clear()
    undo = mutant.install()
    try:
        yield mutant
    finally:
        undo()
        build_cache().clear()


# -- pass-layer mutants ------------------------------------------------------


def _install_prologue_slot_off_by_one() -> Callable[[], None]:
    """P-SSP prologue stores C0 one byte below its slot.

    The epilogue still reads the correct slot, so the reassembled pair no
    longer XORs to ``C`` — the classic off-by-one frame-layout bug.
    """
    original = PSSPPass.emit_prologue

    def buggy(self, builder, plan) -> None:
        if not plan.protected:
            return
        c0_slot, c1_slot = plan.canary_slots[0], plan.canary_slots[1]
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C0_OFFSET),
                     note="pssp-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-(c0_slot + 1)), Reg("rax"),
                     note="pssp-prologue")
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C1_OFFSET),
                     note="pssp-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c1_slot), Reg("rax"),
                     note="pssp-prologue")
        builder.emit("xor", Reg("rax"), Reg("rax"), note="pssp-prologue")

    PSSPPass.emit_prologue = buggy

    def undo() -> None:
        PSSPPass.emit_prologue = original

    return undo


def _install_epilogue_check_skipped() -> Callable[[], None]:
    """P-SSP epilogue emits no check at all — protection silently off."""
    original = PSSPPass.emit_epilogue_check

    def buggy(self, builder, plan) -> None:
        return None

    PSSPPass.emit_epilogue_check = buggy

    def undo() -> None:
        PSSPPass.emit_epilogue_check = original

    return undo


# -- rewriter-layer mutants --------------------------------------------------


def _install_rewriter_wrong_tls_offset() -> Callable[[], None]:
    """Rewritten prologues load ``fs:0x2b0`` instead of the packed shadow
    word at ``fs:0x2a8`` (binary mode zeroes 0x2b0, so checks mismatch)."""
    original = rewrite_module.SHADOW_C0_OFFSET
    rewrite_module.SHADOW_C0_OFFSET = SHADOW_C1_OFFSET

    def undo() -> None:
        rewrite_module.SHADOW_C0_OFFSET = original

    return undo


def _install_stack_chk_neutered() -> Callable[[], None]:
    """The replacement ``__stack_chk_fail`` always reports a match.

    The packed-canary comparison is gone: ZF is forced and the stub
    returns, so instrumented binaries never abort — a missed-detection
    bug only the scheme-health probe can see.
    """
    original = stack_chk_module.build_stack_chk_function
    original_dyninst = dyninst_module.build_stack_chk_function

    def neutered(name: str = "__stack_chk_fail") -> Function:
        function = Function(name)
        function.protected = "pssp-binary-rt"
        function.emit("cmp", Reg("rdi"), Reg("rdi"))  # ZF := 1, always
        function.emit("ret")
        return function

    stack_chk_module.build_stack_chk_function = neutered
    dyninst_module.build_stack_chk_function = neutered

    def undo() -> None:
        stack_chk_module.build_stack_chk_function = original
        dyninst_module.build_stack_chk_function = original_dyninst

    return undo


# -- runtime-layer mutants ---------------------------------------------------


def _install_wrong_xor_half() -> Callable[[], None]:
    """Algorithm 1 returns a corrupted second half: C1 = C0 ⊕ C ⊕ 1.

    The pair no longer binds to the TLS canary, so every epilogue check
    under compiler-mode P-SSP mismatches by one bit.
    """
    original = preload_module.re_randomize

    def buggy(entropy, canary, bits=64):
        c0, c1 = original(entropy, canary, bits)
        return c0, c1 ^ 1

    preload_module.re_randomize = buggy

    def undo() -> None:
        preload_module.re_randomize = original

    return undo


def _install_fork_keeps_shadow() -> Callable[[], None]:
    """``fork`` wrapper forgets to refresh the child's shadow pair —
    polymorphism silently lost (behaviour stays identical!)."""
    original = PSSPPreload.on_fork

    def buggy(self, child, parent) -> None:
        return None

    PSSPPreload.on_fork = buggy

    def undo() -> None:
        PSSPPreload.on_fork = original

    return undo


def _install_setup_unbound_shadow() -> Callable[[], None]:
    """The constructor binds the shadow pair to the wrong canary value."""
    original = PSSPPreload.setup

    def buggy(self, process) -> None:
        # Run the real setup against a near-miss canary, then restore the
        # TLS word: the shadow pair now XORs to C ^ 1, not C.
        tls = process.tls
        real = tls.canary
        tls.canary = real ^ 1
        try:
            original(self, process)
        finally:
            tls.canary = real

    PSSPPreload.setup = buggy

    def undo() -> None:
        PSSPPreload.setup = original

    return undo


def _install_decoder_cost_drift() -> Callable[[], None]:
    """The decode cache charges one extra cycle on a function's first
    step — semantics intact, but fast-path accounting drifts off the
    slow oracle (exactly the bug class PR 1's contract forbids)."""
    original = decode_module.FunctionDecoder.decode

    def drifted(self, function):
        decoded = original(self, function)
        if decoded.steps:
            execute, cycles, ticks, kind, next_rip = decoded.steps[0]
            decoded.steps[0] = (execute, cycles + 1, ticks, kind, next_rip)
        return decoded

    decode_module.FunctionDecoder.decode = drifted

    def undo() -> None:
        decode_module.FunctionDecoder.decode = original

    return undo


MUTANTS: List[Mutant] = [
    Mutant(
        "pass-prologue-slot-off-by-one", "pass",
        "P-SSP prologue stores C0 at [rbp-(slot+1)] instead of [rbp-slot]",
        "spurious-smash / behaviour-divergence under pssp",
        _install_prologue_slot_off_by_one,
    ),
    Mutant(
        "pass-epilogue-check-skipped", "pass",
        "P-SSP epilogue emits no canary check",
        "missed-detection (health probe) under pssp",
        _install_epilogue_check_skipped,
    ),
    Mutant(
        "rewriter-wrong-tls-offset", "rewriter",
        "rewritten prologues read fs:0x2b0 instead of the packed fs:0x2a8",
        "spurious-smash / spurious-detection under pssp-binary*",
        _install_rewriter_wrong_tls_offset,
    ),
    Mutant(
        "rewriter-stack-chk-neutered", "rewriter",
        "replacement __stack_chk_fail always signals a match",
        "missed-detection (health probe) under pssp-binary*",
        _install_stack_chk_neutered,
    ),
    Mutant(
        "runtime-wrong-xor-half", "runtime",
        "Algorithm 1 returns C1 = C0 XOR C XOR 1",
        "spurious-smash / spurious-detection under pssp",
        _install_wrong_xor_half,
    ),
    Mutant(
        "runtime-fork-keeps-shadow", "runtime",
        "fork wrapper skips the child's shadow-canary refresh",
        "polymorphism (health probe) under pssp/pssp-binary",
        _install_fork_keeps_shadow,
    ),
    Mutant(
        "runtime-setup-unbound-shadow", "runtime",
        "constructor binds the shadow pair to canary XOR 1",
        "spurious-smash / spurious-detection under pssp",
        _install_setup_unbound_shadow,
    ),
    Mutant(
        "runtime-decoder-cost-drift", "runtime",
        "decode cache overcharges one cycle per decoded function",
        "fast-slow-divergence on every scheme",
        _install_decoder_cost_drift,
    ),
]


@dataclass
class MutantVerdict:
    name: str
    layer: str
    killed: bool
    evidence: List[str]


def kill_mutant(
    mutant: Mutant,
    *,
    budget: int = 3,
    base_seed: int = 2018,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
) -> MutantVerdict:
    """Plant one mutant and run a small campaign against it."""
    from .fuzzer import run_fuzz

    with planted(mutant):
        report = run_fuzz(
            budget, base_seed=base_seed, schemes=schemes,
            shrink=False, health=True,
        )
    evidence = [str(f) for f in report.health_failures]
    for failure in report.failures:
        evidence.extend(str(f) for f in failure.failures)
    return MutantVerdict(mutant.name, mutant.layer, not report.ok, evidence[:6])


def mutation_kill_report(
    *,
    budget: int = 3,
    base_seed: int = 2018,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    mutants: Optional[List[Mutant]] = None,
) -> Dict[str, MutantVerdict]:
    """Run the kill check for every mutant; baseline must stay clean.

    The returned dict includes a synthetic ``baseline`` entry whose
    ``killed`` flag is *False* when the unmutated tree passes (i.e. for
    ``baseline``, killed means a false positive in the oracle).
    """
    from .fuzzer import run_fuzz

    verdicts: Dict[str, MutantVerdict] = {}
    baseline = run_fuzz(
        budget, base_seed=base_seed, schemes=schemes, shrink=False, health=True
    )
    baseline_evidence = [str(f) for f in baseline.health_failures]
    for failure in baseline.failures:
        baseline_evidence.extend(str(f) for f in failure.failures)
    verdicts["baseline"] = MutantVerdict(
        "baseline", "-", not baseline.ok, baseline_evidence[:6]
    )
    for mutant in mutants if mutants is not None else MUTANTS:
        verdicts[mutant.name] = kill_mutant(
            mutant, budget=budget, base_seed=base_seed, schemes=schemes
        )
    return verdicts


def render_kill_report(verdicts: Dict[str, MutantVerdict]) -> str:
    lines = [f"{'mutant':34s} {'layer':9s} verdict"]
    ok = True
    for name, verdict in verdicts.items():
        if name == "baseline":
            good = not verdict.killed
            status = "clean" if good else "FALSE POSITIVE"
        else:
            good = verdict.killed
            status = "killed" if good else "SURVIVED"
        ok = ok and good
        lines.append(f"{name:34s} {verdict.layer:9s} {status}")
        if not good:
            lines.extend(f"    {item}" for item in verdict.evidence[:3])
    lines.append("MUTATION KILL OK" if ok else "ORACLE TOO WEAK")
    return "\n".join(lines)


def kill_report_ok(verdicts: Dict[str, MutantVerdict]) -> bool:
    return all(
        (not v.killed) if name == "baseline" else v.killed
        for name, v in verdicts.items()
    )
