"""Structural shrinking of failing fuzz programs.

Shrinking operates on the :class:`~repro.workloads.generator.ProgramSpec`
IR rather than on MiniC text: every candidate is a *valid* spec by
construction (the call graph stays acyclic, libc ops keep their minimum
buffer), so the predicate never wastes runs on syntactically broken
programs.  Greedy first-improvement descent: apply the first candidate
transformation that still fails, restart the candidate list, stop at a
fixed point.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from ..workloads.generator import (
    _LIBC_MIN_BUFFER,
    FUZZ_BUFFER_SIZES,
    RECURSION_NAME,
    ProgramSpec,
)


def _clone(spec: ProgramSpec) -> ProgramSpec:
    return ProgramSpec.from_json(spec.to_json())


def _strip_function(spec: ProgramSpec, name: str) -> ProgramSpec:
    """Remove one function and every reference to it."""
    candidate = _clone(spec)
    candidate.functions = [f for f in candidate.functions if f.name != name]
    for function in candidate.functions:
        function.calls = [c for c in function.calls if c != name]
    candidate.main_calls = [c for c in candidate.main_calls if c != name]
    if candidate.fork_callee == name:
        candidate.fork_callee = ""
    if candidate.use_fork and not candidate.functions:
        candidate.use_fork = False
    return candidate


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Yield progressively simpler variants, biggest cuts first."""
    # Feature flags: each is a whole subsystem (scheme gating changes!).
    if spec.use_fork:
        candidate = _clone(spec)
        candidate.use_fork = False
        yield candidate
    if spec.use_setjmp:
        candidate = _clone(spec)
        candidate.use_setjmp = False
        yield candidate
    if spec.recursion_depth:
        candidate = _clone(spec)
        candidate.recursion_depth = 0
        candidate.main_calls = [
            c for c in candidate.main_calls if c != RECURSION_NAME
        ]
        yield candidate

    # Whole functions (last first: nothing calls the last one).
    for function in reversed(spec.functions):
        yield _strip_function(spec, function.name)

    # Loop trip counts.
    if spec.outer_iterations > 1:
        candidate = _clone(spec)
        candidate.outer_iterations = 1
        yield candidate
    if spec.recursion_depth > 1:
        candidate = _clone(spec)
        candidate.recursion_depth = 1
        yield candidate

    # Main dispatch sites (keep at least one so main still does work).
    if len(spec.main_calls) > 1:
        for index in range(len(spec.main_calls)):
            candidate = _clone(spec)
            del candidate.main_calls[index]
            yield candidate

    # Per-function simplifications.
    for index, function in enumerate(spec.functions):
        if function.calls:
            candidate = _clone(spec)
            candidate.functions[index].calls = []
            yield candidate
        if function.libc_op:
            candidate = _clone(spec)
            candidate.functions[index].libc_op = ""
            yield candidate
        if function.inner_iterations:
            candidate = _clone(spec)
            candidate.functions[index].inner_iterations = 0
            candidate.functions[index].ops = []
            yield candidate
        if len(function.ops) > 1:
            candidate = _clone(spec)
            candidate.functions[index].ops = function.ops[:1]
            yield candidate
        if function.critical:
            candidate = _clone(spec)
            candidate.functions[index].critical = False
            yield candidate
        floor = _LIBC_MIN_BUFFER.get(function.libc_op, 0)
        smaller = [
            size
            for size in FUZZ_BUFFER_SIZES
            if floor <= size < function.buffer_bytes
        ]
        if smaller:
            candidate = _clone(spec)
            candidate.functions[index].buffer_bytes = max(smaller)
            yield candidate
    if spec.recursion_depth and spec.recursion_buffer:
        candidate = _clone(spec)
        candidate.recursion_buffer = 0
        yield candidate


def shrink_spec(
    spec: ProgramSpec,
    still_fails: Callable[[ProgramSpec], bool],
    *,
    max_checks: int = 200,
) -> ProgramSpec:
    """Greedily minimise ``spec`` while ``still_fails`` holds.

    ``still_fails`` re-runs the conformance check (same seed, same scheme
    set) and returns True when the candidate reproduces the failure.
    ``max_checks`` bounds total oracle invocations so shrinking a flaky
    or expensive failure cannot stall a campaign.
    """
    checks = 0
    improved = True
    current = spec
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            checks += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return current


def spec_size(spec: ProgramSpec) -> int:
    """A rough complexity metric (used in reports/tests to show progress)."""
    size = len(spec.functions) + len(spec.main_calls)
    size += sum(
        len(f.ops) + len(f.calls) + (1 if f.libc_op else 0)
        for f in spec.functions
    )
    size += spec.recursion_depth
    size += 2 * int(spec.use_fork) + 2 * int(spec.use_setjmp)
    return size


def removed_features(before: ProgramSpec, after: ProgramSpec) -> List[str]:
    """Human-readable list of what shrinking discarded."""
    notes = []
    if before.use_fork and not after.use_fork:
        notes.append("fork")
    if before.use_setjmp and not after.use_setjmp:
        notes.append("setjmp/longjmp")
    if before.recursion_depth and not after.recursion_depth:
        notes.append("recursion")
    dropped = len(before.functions) - len(after.functions)
    if dropped:
        notes.append(f"{dropped} function(s)")
    return notes
