"""The conformance contract: one program, every scheme, both paths.

For a generated program the oracle demands:

1. **Behaviour** — every protected build produces the unprotected
   reference's fingerprint (exit state/status/signal, stdout, and each
   forked child's outcome).  Checksums are encoded in exit codes by the
   generator, so "identical exit codes" subsumes "identical checksums".
2. **No spurious detection** — a benign program must never raise
   ``StackSmashDetected`` under any scheme.
3. **Fast/slow equivalence** — for every build, the decode-cache fast
   path and the slow oracle loop must agree on the *complete*
   architectural snapshot (cycles, TSC, registers, flags, memory image,
   stdout; see :func:`repro.machine.debug.snapshot_divergences`).
4. **Rewriter layout** — both binary-instrumentation paths must keep
   every rewritten function byte-length-identical and tag every changed
   instruction (:func:`repro.rewriter.rewrite.verify_layout_preserved`).
5. **Scheme health** — protection must still *work*: a canned overflow
   victim must be caught by every protecting scheme on both paths, and
   fork must refresh the P-SSP shadow pair (polymorphism).  These probes
   make the oracle sensitive to "protection silently disabled" bugs that
   benign-behaviour comparison alone can never see.
6. **Fault-outcome invariant** — under every canned fault schedule
   (rdrand starvation, a stuck DRBG, transient fork ``EAGAIN``, torn
   shadow-pair writes; see
   :func:`repro.faults.campaign.canned_invariant_cases`) a run must end
   in one of three auditable outcomes — behaviour identical to its
   fault-free twin, ``StackSmashDetected``, or an explicit typed
   degradation — and the canary auditor must never observe a zero,
   stuck, or unexplained canary.  This is the chaos campaign's invariant
   replayed deterministically on every fuzz run.

Schemes whose *documented* semantics conflict with a program feature are
skipped for that program only (see :func:`applicable_schemes`): RAF-SSP
is fork-incorrect by design (Table I), DCR and the global-buffer variant
false-positive across ``longjmp`` unwinding, and DynaGuard's CAB carries
stale entries across ``longjmp``-then-``fork``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..binfmt.elf import DYNAMIC, STATIC, merge_binaries
from ..compiler.codegen import compile_source
from ..core.deploy import build, deploy, get_scheme
from ..core.rerandomize import check_packed32, check_pair
from ..errors import CampaignError
from ..harness.validate import DETECTION_VICTIM
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from ..libc.glibc_sim import build_static_glibc
from ..machine.debug import architectural_snapshot, snapshot_divergences
from ..rewriter.rewrite import verify_layout_preserved

#: Every scheme the fuzzer exercises by default.  ``dynaguard-dbi`` is
#: excluded only because it is ``dynaguard`` under a cycle multiplier —
#: behaviourally identical, so fuzzing it doubles cost for no coverage —
#: but it participates when passed explicitly.
DEFAULT_FUZZ_SCHEMES: Tuple[str, ...] = (
    "none",
    "ssp",
    "raf-ssp",
    "dynaguard",
    "dcr",
    "pssp",
    "pssp-binary",
    "pssp-binary-static",
    "pssp-nt",
    "pssp-nt-hardened",
    "pssp-lv",
    "pssp-owf",
    "pssp-gb",
)

#: Schemes that false-positive across setjmp/longjmp unwinding (their
#: bookkeeping expects frames to be popped in order; documented in
#: ``tests/libc/test_setjmp.py`` and the harness matrix).
UNWIND_FRAGILE = frozenset({"dcr", "pssp-gb"})

#: Schemes whose per-frame bookkeeping goes stale across longjmp and then
#: poisons forked children (the CAB still lists unwound frames).
UNWIND_FORK_FRAGILE = frozenset({"dynaguard", "dynaguard-dbi"})

#: Fuzz programs are small; a tight cycle budget turns a decoder or
#: runtime livelock into a fast, attributable SIGXCPU instead of a hang.
FUZZ_CYCLE_LIMIT = 2_000_000

#: The detection probe reuses the harness's canonical overflow victim
#: (``repro.harness.validate.DETECTION_VICTIM``) so both health checks
#: agree on what "detects an overflow" means.


@dataclass
class ConformanceFailure:
    """One violated clause of the contract."""

    kind: str  #: native-crash | build-error | behaviour-divergence |
    #: spurious-smash | fast-slow-divergence | rewriter-layout |
    #: missed-detection | spurious-detection | polymorphism | fault-outcome
    scheme: str
    path: str  #: "fast" | "slow" | "both" | "-"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] scheme={self.scheme} path={self.path}: {self.detail}"


def applicable_schemes(
    schemes: Iterable[str], *, uses_fork: bool, uses_setjmp: bool
) -> Tuple[List[str], Dict[str, str]]:
    """Split ``schemes`` into (applicable, skipped-with-reason)."""
    selected: List[str] = []
    skipped: Dict[str, str] = {}
    for scheme in schemes:
        spec = get_scheme(scheme)
        if uses_fork and not spec.fork_correct:
            skipped[scheme] = "fork-incorrect by design (Table I)"
        elif uses_setjmp and scheme in UNWIND_FRAGILE:
            skipped[scheme] = "documented false positive across longjmp"
        elif uses_setjmp and uses_fork and scheme in UNWIND_FORK_FRAGILE:
            skipped[scheme] = "stale CAB entries poison forks after longjmp"
        else:
            selected.append(scheme)
    return selected, skipped


def _run_one(
    source: str, scheme: str, *, seed: int, fast: bool, cycle_limit: int
) -> Tuple[Kernel, Process, object]:
    kernel = Kernel(seed)
    binary = build(source, scheme, name="fuzzed")
    process, _ = deploy(
        kernel, binary, scheme, fast=fast, cycle_limit=cycle_limit
    )
    result = process.run()
    return kernel, process, result


def _fingerprint(kernel: Kernel, process: Process, result) -> Dict[str, object]:
    """The scheme-independent behaviour of one run."""
    children = sorted(
        (p.state, p.exit_status, bytes(p.stdout))
        for p in kernel.processes.values()
        if p.pid != process.pid
    )
    return {
        "state": result.state,
        "exit_status": result.exit_status,
        "signal": result.signal,
        "stdout": bytes(process.stdout),
        "children": children,
    }


def _describe_fingerprint_diff(reference: Dict, observed: Dict) -> str:
    parts = []
    for key in reference:
        if reference[key] != observed[key]:
            parts.append(f"{key}: {reference[key]!r} != {observed[key]!r}")
    return "; ".join(parts) or "fingerprints differ"


def check_source(
    source: str,
    *,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    seed: int = 0,
    uses_fork: bool = False,
    uses_setjmp: bool = False,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
) -> List[ConformanceFailure]:
    """Run one program through the full contract; return violations.

    The unprotected fast-path run is the reference.  Every applicable
    scheme (including ``none`` itself) is then run down both interpreter
    paths; each run must reproduce the reference fingerprint, never
    report a smash, and agree with its sibling path on the complete
    architectural snapshot.  Rewriting schemes additionally get the
    layout check on their (pre-rewrite, post-rewrite) binary pair.
    """
    failures: List[ConformanceFailure] = []
    selected, _ = applicable_schemes(
        schemes, uses_fork=uses_fork, uses_setjmp=uses_setjmp
    )

    try:
        kernel, process, result = _run_one(
            source, "none", seed=seed, fast=True, cycle_limit=cycle_limit
        )
    except Exception as error:
        return [ConformanceFailure("build-error", "none", "fast", repr(error))]
    if result.state != "exited":
        # The generator only emits well-defined programs; a crashing
        # native build is a generator (or interpreter) bug, not a scheme
        # bug, and comparing schemes against it would be meaningless.
        return [
            ConformanceFailure(
                "native-crash",
                "none",
                "fast",
                f"state={result.state} signal={result.signal}",
            )
        ]
    reference = _fingerprint(kernel, process, result)

    for scheme in selected:
        snapshots = {}
        for fast in (True, False):
            path = "fast" if fast else "slow"
            try:
                kernel, process, result = _run_one(
                    source, scheme, seed=seed, fast=fast,
                    cycle_limit=cycle_limit,
                )
            except Exception as error:
                failures.append(
                    ConformanceFailure("build-error", scheme, path, repr(error))
                )
                break
            if result.smashed:
                failures.append(
                    ConformanceFailure(
                        "spurious-smash", scheme, path,
                        "benign program reported StackSmashDetected",
                    )
                )
            observed = _fingerprint(kernel, process, result)
            if observed != reference and scheme != "none":
                failures.append(
                    ConformanceFailure(
                        "behaviour-divergence", scheme, path,
                        _describe_fingerprint_diff(reference, observed),
                    )
                )
            elif observed != reference:
                failures.append(
                    ConformanceFailure(
                        "fast-slow-divergence", "none", path,
                        _describe_fingerprint_diff(reference, observed),
                    )
                )
            snapshots[path] = architectural_snapshot(process)
        if len(snapshots) == 2:
            divergences = snapshot_divergences(
                snapshots["fast"], snapshots["slow"]
            )
            if divergences:
                failures.append(
                    ConformanceFailure(
                        "fast-slow-divergence", scheme, "both",
                        "; ".join(divergences[:4]),
                    )
                )

    for scheme in selected:
        failures.extend(rewriter_layout_failures(source, scheme))
    return failures


def rewriter_layout_failures(
    source: str, scheme: str
) -> List[ConformanceFailure]:
    """Contract clause 4: rebuild the scheme's pre-rewrite binary and
    diff it against the rewritten one (no-op for non-rewriting schemes)."""
    spec = get_scheme(scheme)
    if spec.rewrite is None:
        return []
    link_type = STATIC if spec.static_link else DYNAMIC
    try:
        original = compile_source(
            source, protection=spec.pass_name, name="fuzzed",
            link_type=link_type,
        )
        if spec.static_link:
            original = merge_binaries(
                original, build_static_glibc(), name=original.name
            )
        rewritten = spec.rewrite(original)
    except Exception as error:
        return [ConformanceFailure("build-error", scheme, "-", repr(error))]
    return [
        ConformanceFailure("rewriter-layout", scheme, "-", problem)
        for problem in verify_layout_preserved(original, rewritten)
    ]


# -- scheme-health probes ----------------------------------------------------


def detection_probe_failures(
    scheme: str, *, seed: int = 0
) -> List[ConformanceFailure]:
    """A blind smash must be caught, and benign traffic must not be."""
    if scheme == "none":
        return []  # nothing to detect by definition
    failures: List[ConformanceFailure] = []
    for fast in (True, False):
        path = "fast" if fast else "slow"
        try:
            kernel = Kernel(seed)
            binary = build(DETECTION_VICTIM, scheme, name="victim")

            process, _ = deploy(kernel, binary, scheme, fast=fast)
            process.feed_stdin(b"ok")
            benign = process.call("handler", (2,))
            if benign.state != "exited" or benign.smashed:
                failures.append(
                    ConformanceFailure(
                        "spurious-detection", scheme, path,
                        f"benign victim call: state={benign.state} "
                        f"smashed={benign.smashed}",
                    )
                )

            process, _ = deploy(kernel, binary, scheme, fast=fast)
            process.feed_stdin(b"A" * 160)
            smash = process.call("handler", (160,))
            if not smash.smashed:
                failures.append(
                    ConformanceFailure(
                        "missed-detection", scheme, path,
                        "160-byte overflow of 48-byte buffer not caught",
                    )
                )
        except Exception as error:
            failures.append(
                ConformanceFailure("build-error", scheme, path, repr(error))
            )
    return failures


def polymorphism_probe_failures(
    scheme: str, *, seed: int = 0
) -> List[ConformanceFailure]:
    """Fork must re-randomize the shadow pair and keep it bound to ``C``.

    Only meaningful for the schemes with a fork-time preload (``pssp``
    compiler mode, ``pssp-binary`` packed mode, and the hardened NT
    scheme, whose fallback pair is compiler-mode maintained).
    """
    if scheme not in ("pssp", "pssp-binary", "pssp-nt-hardened"):
        return []
    try:
        kernel = Kernel(seed)
        binary = build("int main() { return 0; }", scheme, name="probe")
        parent, _ = deploy(kernel, binary, scheme)
        parent_pair = (parent.tls.shadow_c0, parent.tls.shadow_c1)
        child = kernel.fork(parent)
        child_pair = (child.tls.shadow_c0, child.tls.shadow_c1)
    except Exception as error:
        return [ConformanceFailure("build-error", scheme, "-", repr(error))]

    failures: List[ConformanceFailure] = []
    if child_pair == parent_pair:
        failures.append(
            ConformanceFailure(
                "polymorphism", scheme, "-",
                "child shadow pair identical to parent's after fork",
            )
        )
    if scheme in ("pssp", "pssp-nt-hardened"):
        parent_ok = check_pair(*parent_pair, parent.tls.canary)
        child_ok = check_pair(*child_pair, child.tls.canary)
    else:
        parent_ok = check_packed32(parent_pair[0], parent.tls.canary)
        child_ok = check_packed32(child_pair[0], child.tls.canary)
    if not parent_ok or not child_ok:
        failures.append(
            ConformanceFailure(
                "polymorphism", scheme, "-",
                f"shadow pair unbound from TLS canary "
                f"(parent_ok={parent_ok} child_ok={child_ok})",
            )
        )
    return failures


def scheme_health_failures(
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES, *, seed: int = 0
) -> List[ConformanceFailure]:
    """Contract clause 5 for every scheme in ``schemes``."""
    failures: List[ConformanceFailure] = []
    for scheme in schemes:
        failures.extend(detection_probe_failures(scheme, seed=seed))
        failures.extend(polymorphism_probe_failures(scheme, seed=seed))
    return failures


def fault_invariant_failures(*, seed: int = 0) -> List[ConformanceFailure]:
    """Contract clause 6: replay the canned fault schedules.

    Imported lazily — :mod:`repro.faults.campaign` builds on this module,
    so a top-level import would cycle.
    """
    from ..faults.campaign import canned_invariant_cases, run_canned_case

    failures: List[ConformanceFailure] = []
    for case in canned_invariant_cases():
        try:
            run = run_canned_case(case, seed=seed)
        except CampaignError as error:
            failures.append(
                ConformanceFailure(
                    "fault-outcome", case.schedule.scheme, "-",
                    f"{case.name}: infrastructure error: {error}",
                )
            )
            continue
        for violation in run.violations:
            failures.append(
                ConformanceFailure(
                    "fault-outcome", run.scheme, "slow",
                    f"{case.name}: {violation}",
                )
            )
    return failures
