"""Seeded differential fuzz campaigns with one-command replay.

Determinism is the contract: program ``i`` of a campaign is generated
from ``base_seed + i`` and *runs* under kernels seeded with the same
number, so ``python -m repro fuzz --replay SEED`` reproduces a failure
bit-for-bit — same program, same canaries, same cycle counts — without
shipping the failing binary around.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .. import telemetry
from ..workloads.generator import ProgramSpec, generate_fuzz_program, render_program
from .conformance import (
    DEFAULT_FUZZ_SCHEMES,
    FUZZ_CYCLE_LIMIT,
    ConformanceFailure,
    applicable_schemes,
    check_source,
    fault_invariant_failures,
    scheme_health_failures,
)

#: Failure kinds that indicate broken infrastructure (a build or the
#: reference run fell over, or a parallel worker's slice was lost after
#: its retry) rather than a violated contract clause.  The CLI maps
#: "only these" to a distinct exit code.
INFRA_FAILURE_KINDS = frozenset({"build-error", "native-crash", "worker-lost"})
from .shrink import removed_features, shrink_spec


@dataclass
class FuzzFailure:
    """One failing program, before and after shrinking."""

    seed: int
    spec: ProgramSpec
    source: str
    failures: List[ConformanceFailure]
    shrunk_spec: Optional[ProgramSpec] = None
    shrunk_source: Optional[str] = None
    shrink_notes: List[str] = field(default_factory=list)

    @property
    def replay_command(self) -> str:
        return f"python -m repro fuzz --replay {self.seed}"

    def to_json(self) -> Dict[str, object]:
        """Artifact format (uploaded by the nightly CI job)."""
        return {
            "seed": self.seed,
            "replay": self.replay_command,
            "failures": [
                {
                    "kind": f.kind,
                    "scheme": f.scheme,
                    "path": f.path,
                    "detail": f.detail,
                }
                for f in self.failures
            ],
            "spec": self.spec.to_json(),
            "source": self.source,
            "shrunk_spec": self.shrunk_spec.to_json() if self.shrunk_spec else None,
            "shrunk_source": self.shrunk_source,
            "shrink_notes": self.shrink_notes,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FuzzFailure":
        """Rebuild a failure from its artifact form (worker → parent)."""
        shrunk_spec = data.get("shrunk_spec")
        return cls(
            seed=int(data["seed"]),
            spec=ProgramSpec.from_json(data["spec"]),
            source=data["source"],
            failures=[
                ConformanceFailure(
                    kind=f["kind"], scheme=f["scheme"],
                    path=f["path"], detail=f["detail"],
                )
                for f in data.get("failures", [])
            ],
            shrunk_spec=ProgramSpec.from_json(shrunk_spec) if shrunk_spec else None,
            shrunk_source=data.get("shrunk_source"),
            shrink_notes=list(data.get("shrink_notes", [])),
        )

    def render(self) -> str:
        lines = [f"seed {self.seed}  ({self.replay_command})"]
        for failure in self.failures:
            lines.append(f"  {failure}")
        if self.shrunk_source and self.shrunk_source != self.source:
            notes = f" (dropped: {', '.join(self.shrink_notes)})" if self.shrink_notes else ""
            lines.append(f"  shrunk program{notes}:")
            lines.extend(f"    {line}" for line in self.shrunk_source.splitlines())
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    budget: int
    base_seed: int
    schemes: Tuple[str, ...]
    programs_checked: int = 0
    runs: int = 0  #: scheme × path executions performed
    skipped: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    health_failures: List[ConformanceFailure] = field(default_factory=list)
    #: Shards that needed more than one attempt, ``"first..last" ->
    #: attempts``.  First-attempt shards are never recorded, so a
    #: healthy parallel run stays bit-identical to a serial one.
    shard_attempts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.health_failures

    @property
    def infra_only(self) -> bool:
        """True when every recorded failure is an infrastructure error.

        Lets the CLI distinguish "the contract was violated" (exit 1)
        from "the campaign could not run its checks" (exit 3).
        """
        kinds = {f.kind for f in self.health_failures}
        for failure in self.failures:
            kinds.update(f.kind for f in failure.failures)
        return bool(kinds) and kinds <= INFRA_FAILURE_KINDS

    def render(self) -> str:
        lines = [
            f"fuzz: {self.programs_checked}/{self.budget} programs, "
            f"{self.runs} scheme-path runs, base seed {self.base_seed}, "
            f"schemes: {', '.join(self.schemes)}"
        ]
        if self.skipped:
            gated = ", ".join(
                f"{scheme}×{count}" for scheme, count in sorted(self.skipped.items())
            )
            lines.append(f"gated by documented semantics: {gated}")
        for span, attempts in sorted(self.shard_attempts.items()):
            lines.append(f"shard {span}: {attempts} attempt(s)")
        for failure in self.health_failures:
            lines.append(f"health probe FAILED: {failure}")
        for failure in self.failures:
            lines.append(failure.render())
        lines.append(
            "CONFORMANCE OK" if self.ok
            else f"{len(self.failures)} failing program(s), "
                 f"{len(self.health_failures)} health failure(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """Canonical plain-data form (the bit-identity tests compare this)."""
        return {
            "budget": self.budget,
            "base_seed": self.base_seed,
            "schemes": list(self.schemes),
            "programs_checked": self.programs_checked,
            "runs": self.runs,
            "skipped": dict(sorted(self.skipped.items())),
            "shard_attempts": dict(sorted(self.shard_attempts.items())),
            "failures": [f.to_json() for f in self.failures],
            "health_failures": [
                {
                    "kind": f.kind,
                    "scheme": f.scheme,
                    "path": f.path,
                    "detail": f.detail,
                }
                for f in self.health_failures
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FuzzReport":
        return cls(
            budget=int(data["budget"]),
            base_seed=int(data["base_seed"]),
            schemes=tuple(data["schemes"]),
            programs_checked=int(data["programs_checked"]),
            runs=int(data["runs"]),
            skipped=dict(data.get("skipped", {})),
            shard_attempts={
                str(span): int(attempts)
                for span, attempts in dict(data.get("shard_attempts", {})).items()
            },
            failures=[FuzzFailure.from_json(f) for f in data.get("failures", [])],
            health_failures=[
                ConformanceFailure(
                    kind=f["kind"], scheme=f["scheme"],
                    path=f["path"], detail=f["detail"],
                )
                for f in data.get("health_failures", [])
            ],
        )


def check_spec(
    spec: ProgramSpec,
    *,
    seed: int,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
) -> List[ConformanceFailure]:
    """Render a spec and run it through the conformance contract."""
    return check_source(
        render_program(spec),
        schemes=schemes,
        seed=seed,
        uses_fork=spec.uses_fork,
        uses_setjmp=spec.uses_setjmp,
        cycle_limit=cycle_limit,
    )


def _shrink_failure(
    failure: FuzzFailure,
    schemes: Tuple[str, ...],
    cycle_limit: int,
    max_checks: int,
) -> None:
    """Attach a minimised reproducer to ``failure`` (in place).

    A candidate counts as reproducing when it triggers a failure of the
    same *kind* for the same scheme — shrinking must not wander onto an
    unrelated bug and present it as the minimal form of this one.
    """
    target = {(f.kind, f.scheme) for f in failure.failures}

    def still_fails(candidate: ProgramSpec) -> bool:
        observed = check_spec(
            candidate, seed=failure.seed, schemes=schemes,
            cycle_limit=cycle_limit,
        )
        return any((f.kind, f.scheme) in target for f in observed)

    shrunk = shrink_spec(failure.spec, still_fails, max_checks=max_checks)
    failure.shrunk_spec = shrunk
    failure.shrunk_source = render_program(shrunk)
    failure.shrink_notes = removed_features(failure.spec, shrunk)


@dataclass
class SeedCheck:
    """The outcome of checking one seed — the unit of campaign work.

    Serial campaigns, parallel shard workers, and ``--replay`` all go
    through :func:`_check_one`, so the three paths cannot drift.
    """

    seed: int
    spec: ProgramSpec
    source: str
    selected: Tuple[str, ...]  #: schemes actually exercised
    gated: Tuple[str, ...]  #: schemes skipped by documented semantics
    failure: Optional[FuzzFailure] = None


def _check_one(
    seed: int,
    *,
    schemes: Tuple[str, ...] = DEFAULT_FUZZ_SCHEMES,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
    shrink: bool = False,
    max_shrink_checks: int = 40,
) -> SeedCheck:
    """Generate, run, and (optionally) shrink a single fuzz seed.

    Telemetry is counted here so every execution path reports the same
    numbers — a parallel worker's counts travel back to the parent as a
    snapshot delta and merge into the campaign totals.
    """
    spec, source = generate_fuzz_program(seed)
    selected, gated = applicable_schemes(
        schemes, uses_fork=spec.uses_fork, uses_setjmp=spec.uses_setjmp
    )
    failures = check_source(
        source,
        schemes=selected,
        seed=seed,
        uses_fork=spec.uses_fork,
        uses_setjmp=spec.uses_setjmp,
        cycle_limit=cycle_limit,
    )
    telemetry.count("fuzz_programs_total", help="fuzz programs checked")
    telemetry.count(
        "fuzz_runs_total", 2 * len(selected),
        help="fuzz executions (fast+slow per scheme)",
    )
    failure = None
    if failures:
        failure = FuzzFailure(seed, spec, source, failures)
        if shrink:
            _shrink_failure(failure, schemes, cycle_limit, max_shrink_checks)
        telemetry.count(
            "fuzz_failures_total", len(failures),
            help="conformance divergences found",
        )
    return SeedCheck(seed, spec, source, tuple(selected), tuple(gated), failure)


def _merge_check(report: FuzzReport, check: SeedCheck) -> None:
    """Fold one seed's outcome into the campaign report (in seed order)."""
    for scheme in check.gated:
        report.skipped[scheme] = report.skipped.get(scheme, 0) + 1
    report.programs_checked += 1
    report.runs += 2 * len(check.selected)
    if check.failure is not None:
        report.failures.append(check.failure)


def _fuzz_shard_worker(config: Dict[str, object], seeds, attempt: int):
    """Process-pool entry point: check one shard's seeds.

    Module-level (picklable by reference).  Returns plain data only —
    seed outcomes in artifact form plus the telemetry delta accumulated
    while checking, so the parent can merge counts deterministically.
    """
    before = telemetry.snapshot()
    checks = []
    for seed in seeds:
        check = _check_one(
            seed,
            schemes=tuple(config["schemes"]),
            cycle_limit=config["cycle_limit"],
            shrink=config["shrink"],
            max_shrink_checks=config["max_shrink_checks"],
        )
        checks.append({
            "seed": seed,
            "selected": list(check.selected),
            "gated": list(check.gated),
            "failure": check.failure.to_json() if check.failure else None,
        })
    return {"checks": checks, "telemetry": telemetry.delta(before)}


def run_fuzz(
    budget: int = 50,
    *,
    base_seed: int = 2018,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    shrink: bool = True,
    health: bool = True,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
    max_shrink_checks: int = 40,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    shard_retries: int = 1,
) -> FuzzReport:
    """Run a deterministic campaign of ``budget`` generated programs.

    ``jobs > 1`` shards the seed range across a process pool; the shard
    plan depends only on the budget and results merge in shard order,
    so the report is bit-identical to a ``jobs=1`` run.  A shard whose
    worker dies is re-queued ``shard_retries`` times and then recorded
    as a ``worker-lost`` health failure — never silently dropped.
    Shards that needed more than one attempt land in
    ``report.shard_attempts``.
    """
    schemes = tuple(schemes)
    report = FuzzReport(budget=budget, base_seed=base_seed, schemes=schemes)

    if health:
        report.health_failures = scheme_health_failures(schemes, seed=base_seed)
        report.health_failures.extend(fault_invariant_failures(seed=base_seed))
        if report.health_failures and progress:
            progress(f"{len(report.health_failures)} scheme-health failure(s)")

    if jobs <= 1:
        for index in range(budget):
            check = _check_one(
                base_seed + index,
                schemes=schemes,
                cycle_limit=cycle_limit,
                shrink=shrink,
                max_shrink_checks=max_shrink_checks,
            )
            _merge_check(report, check)
            if check.failure is not None:
                if progress:
                    progress(
                        f"seed {check.seed}: "
                        f"{len(check.failure.failures)} failure(s)"
                    )
            elif progress and (index + 1) % 25 == 0:
                progress(f"{index + 1}/{budget} programs clean")
        return report

    from ..parallel import plan_shards, run_shards

    config = {
        "schemes": list(schemes),
        "cycle_limit": cycle_limit,
        "shrink": shrink,
        "max_shrink_checks": max_shrink_checks,
    }
    shards = plan_shards(base_seed, budget)
    outcomes, _ = run_shards(
        _fuzz_shard_worker, config, shards, jobs=jobs, retries=shard_retries,
        on_result=(
            (lambda outcome: progress(
                f"shard {outcome.shard.index}: {len(outcome.shard)} seed(s) "
                f"{'done' if outcome.ok else outcome.status}"
            )) if progress else None
        ),
    )
    deltas = []
    for outcome in outcomes:
        if outcome.attempts > 1:
            first, last = outcome.shard.seeds[0], outcome.shard.seeds[-1]
            report.shard_attempts[f"{first}..{last}"] = outcome.attempts
        if outcome.ok:
            for item in outcome.value["checks"]:
                check = SeedCheck(
                    seed=item["seed"],
                    spec=None,  # only the merge-relevant fields are needed
                    source="",
                    selected=tuple(item["selected"]),
                    gated=tuple(item["gated"]),
                    failure=(
                        FuzzFailure.from_json(item["failure"])
                        if item["failure"] else None
                    ),
                )
                _merge_check(report, check)
            deltas.append(outcome.value["telemetry"])
        else:
            first, last = outcome.shard.seeds[0], outcome.shard.seeds[-1]
            report.health_failures.append(ConformanceFailure(
                kind="worker-lost",
                scheme="-",
                path="-",
                detail=(
                    f"shard {outcome.shard.index} "
                    f"(seeds {first}..{last}) lost after "
                    f"{outcome.attempts} attempt(s): {outcome.error}"
                ),
            ))
    merged = telemetry.Snapshot()
    for delta in deltas:
        merged = merged.merge(telemetry.Snapshot(delta))
    if merged:
        telemetry.absorb(merged)
    return report


def replay_seed(
    seed: int,
    *,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
) -> Tuple[ProgramSpec, str, List[ConformanceFailure]]:
    """Regenerate the program for ``seed`` and re-run the contract."""
    check = _check_one(seed, schemes=tuple(schemes), cycle_limit=cycle_limit)
    failures = check.failure.failures if check.failure else []
    return check.spec, check.source, failures


def write_failure_artifacts(report: FuzzReport, directory: str) -> List[str]:
    """Write one JSON artifact per failing program; return the paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for failure in report.failures:
        path = os.path.join(directory, f"fuzz-failure-seed{failure.seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(failure.to_json(), handle, indent=2)
        paths.append(path)
    return paths
