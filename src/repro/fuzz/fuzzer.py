"""Seeded differential fuzz campaigns with one-command replay.

Determinism is the contract: program ``i`` of a campaign is generated
from ``base_seed + i`` and *runs* under kernels seeded with the same
number, so ``python -m repro fuzz --replay SEED`` reproduces a failure
bit-for-bit — same program, same canaries, same cycle counts — without
shipping the failing binary around.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .. import telemetry
from ..workloads.generator import ProgramSpec, generate_fuzz_program, render_program
from .conformance import (
    DEFAULT_FUZZ_SCHEMES,
    FUZZ_CYCLE_LIMIT,
    ConformanceFailure,
    applicable_schemes,
    check_source,
    fault_invariant_failures,
    scheme_health_failures,
)

#: Failure kinds that indicate broken infrastructure (a build or the
#: reference run fell over) rather than a violated contract clause.
#: The CLI maps "only these" to a distinct exit code.
INFRA_FAILURE_KINDS = frozenset({"build-error", "native-crash"})
from .shrink import removed_features, shrink_spec


@dataclass
class FuzzFailure:
    """One failing program, before and after shrinking."""

    seed: int
    spec: ProgramSpec
    source: str
    failures: List[ConformanceFailure]
    shrunk_spec: Optional[ProgramSpec] = None
    shrunk_source: Optional[str] = None
    shrink_notes: List[str] = field(default_factory=list)

    @property
    def replay_command(self) -> str:
        return f"python -m repro fuzz --replay {self.seed}"

    def to_json(self) -> Dict[str, object]:
        """Artifact format (uploaded by the nightly CI job)."""
        return {
            "seed": self.seed,
            "replay": self.replay_command,
            "failures": [
                {
                    "kind": f.kind,
                    "scheme": f.scheme,
                    "path": f.path,
                    "detail": f.detail,
                }
                for f in self.failures
            ],
            "spec": self.spec.to_json(),
            "source": self.source,
            "shrunk_spec": self.shrunk_spec.to_json() if self.shrunk_spec else None,
            "shrunk_source": self.shrunk_source,
            "shrink_notes": self.shrink_notes,
        }

    def render(self) -> str:
        lines = [f"seed {self.seed}  ({self.replay_command})"]
        for failure in self.failures:
            lines.append(f"  {failure}")
        if self.shrunk_source and self.shrunk_source != self.source:
            notes = f" (dropped: {', '.join(self.shrink_notes)})" if self.shrink_notes else ""
            lines.append(f"  shrunk program{notes}:")
            lines.extend(f"    {line}" for line in self.shrunk_source.splitlines())
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    budget: int
    base_seed: int
    schemes: Tuple[str, ...]
    programs_checked: int = 0
    runs: int = 0  #: scheme × path executions performed
    skipped: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    health_failures: List[ConformanceFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.health_failures

    @property
    def infra_only(self) -> bool:
        """True when every recorded failure is an infrastructure error.

        Lets the CLI distinguish "the contract was violated" (exit 1)
        from "the campaign could not run its checks" (exit 3).
        """
        kinds = {f.kind for f in self.health_failures}
        for failure in self.failures:
            kinds.update(f.kind for f in failure.failures)
        return bool(kinds) and kinds <= INFRA_FAILURE_KINDS

    def render(self) -> str:
        lines = [
            f"fuzz: {self.programs_checked}/{self.budget} programs, "
            f"{self.runs} scheme-path runs, base seed {self.base_seed}, "
            f"schemes: {', '.join(self.schemes)}"
        ]
        if self.skipped:
            gated = ", ".join(
                f"{scheme}×{count}" for scheme, count in sorted(self.skipped.items())
            )
            lines.append(f"gated by documented semantics: {gated}")
        for failure in self.health_failures:
            lines.append(f"health probe FAILED: {failure}")
        for failure in self.failures:
            lines.append(failure.render())
        lines.append(
            "CONFORMANCE OK" if self.ok
            else f"{len(self.failures)} failing program(s), "
                 f"{len(self.health_failures)} health failure(s)"
        )
        return "\n".join(lines)


def check_spec(
    spec: ProgramSpec,
    *,
    seed: int,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
) -> List[ConformanceFailure]:
    """Render a spec and run it through the conformance contract."""
    return check_source(
        render_program(spec),
        schemes=schemes,
        seed=seed,
        uses_fork=spec.uses_fork,
        uses_setjmp=spec.uses_setjmp,
        cycle_limit=cycle_limit,
    )


def _shrink_failure(
    failure: FuzzFailure,
    schemes: Tuple[str, ...],
    cycle_limit: int,
    max_checks: int,
) -> None:
    """Attach a minimised reproducer to ``failure`` (in place).

    A candidate counts as reproducing when it triggers a failure of the
    same *kind* for the same scheme — shrinking must not wander onto an
    unrelated bug and present it as the minimal form of this one.
    """
    target = {(f.kind, f.scheme) for f in failure.failures}

    def still_fails(candidate: ProgramSpec) -> bool:
        observed = check_spec(
            candidate, seed=failure.seed, schemes=schemes,
            cycle_limit=cycle_limit,
        )
        return any((f.kind, f.scheme) in target for f in observed)

    shrunk = shrink_spec(failure.spec, still_fails, max_checks=max_checks)
    failure.shrunk_spec = shrunk
    failure.shrunk_source = render_program(shrunk)
    failure.shrink_notes = removed_features(failure.spec, shrunk)


def run_fuzz(
    budget: int = 50,
    *,
    base_seed: int = 2018,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    shrink: bool = True,
    health: bool = True,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
    max_shrink_checks: int = 40,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run a deterministic campaign of ``budget`` generated programs."""
    schemes = tuple(schemes)
    report = FuzzReport(budget=budget, base_seed=base_seed, schemes=schemes)

    if health:
        report.health_failures = scheme_health_failures(schemes, seed=base_seed)
        report.health_failures.extend(fault_invariant_failures(seed=base_seed))
        if report.health_failures and progress:
            progress(f"{len(report.health_failures)} scheme-health failure(s)")

    for index in range(budget):
        seed = base_seed + index
        spec, source = generate_fuzz_program(seed)
        selected, gated = applicable_schemes(
            schemes, uses_fork=spec.uses_fork, uses_setjmp=spec.uses_setjmp
        )
        for scheme in gated:
            report.skipped[scheme] = report.skipped.get(scheme, 0) + 1
        failures = check_source(
            source,
            schemes=selected,
            seed=seed,
            uses_fork=spec.uses_fork,
            uses_setjmp=spec.uses_setjmp,
            cycle_limit=cycle_limit,
        )
        report.programs_checked += 1
        report.runs += 2 * len(selected)
        telemetry.count("fuzz_programs_total", help="fuzz programs checked")
        telemetry.count(
            "fuzz_runs_total", 2 * len(selected),
            help="fuzz executions (fast+slow per scheme)",
        )
        if failures:
            failure = FuzzFailure(seed, spec, source, failures)
            if shrink:
                _shrink_failure(failure, schemes, cycle_limit, max_shrink_checks)
            report.failures.append(failure)
            telemetry.count(
                "fuzz_failures_total", len(failures),
                help="conformance divergences found",
            )
            if progress:
                progress(f"seed {seed}: {len(failures)} failure(s)")
        elif progress and (index + 1) % 25 == 0:
            progress(f"{index + 1}/{budget} programs clean")
    return report


def replay_seed(
    seed: int,
    *,
    schemes: Iterable[str] = DEFAULT_FUZZ_SCHEMES,
    cycle_limit: int = FUZZ_CYCLE_LIMIT,
) -> Tuple[ProgramSpec, str, List[ConformanceFailure]]:
    """Regenerate the program for ``seed`` and re-run the contract."""
    spec, source = generate_fuzz_program(seed)
    selected, _ = applicable_schemes(
        schemes, uses_fork=spec.uses_fork, uses_setjmp=spec.uses_setjmp
    )
    failures = check_source(
        source,
        schemes=selected,
        seed=seed,
        uses_fork=spec.uses_fork,
        uses_setjmp=spec.uses_setjmp,
        cycle_limit=cycle_limit,
    )
    return spec, source, failures


def write_failure_artifacts(report: FuzzReport, directory: str) -> List[str]:
    """Write one JSON artifact per failing program; return the paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for failure in report.failures:
        path = os.path.join(directory, f"fuzz-failure-seed{failure.seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(failure.to_json(), handle, indent=2)
        paths.append(path)
    return paths
