"""repro — reproduction of "To Detect Stack Buffer Overflow with
Polymorphic Canaries" (Wang et al., DSN 2018).

The package implements P-SSP and its three extensions (P-SSP-NT,
P-SSP-LV, P-SSP-OWF), the baselines they are compared against (SSP,
RAF-SSP, DynaGuard, DCR), and every substrate the evaluation needs: an
x86-64-flavoured machine simulator, a process model with faithful fork
semantics, a MiniC compiler with an LLVM-style protection-pass framework,
a layout-preserving static binary rewriter, an attack framework, and the
workloads/harness that regenerate every table and figure in the paper.

Quick start::

    from repro import Kernel, build, deploy

    SOURCE = '''
    int handler(int n) {
        char buf[64];
        read(0, buf, n);
        return 0;
    }
    int main() { return 0; }
    '''

    kernel = Kernel(seed=7)
    binary = build(SOURCE, "pssp", name="victim")
    process, _ = deploy(kernel, binary, "pssp")
    process.feed_stdin(b"A" * 200)
    result = process.call("handler", (200,))
    assert result.smashed   # the overflow was detected
"""

from .core.deploy import SCHEMES, build, deploy, get_scheme, launch
from .core.rerandomize import fold32, re_randomize
from .errors import (
    MachineFault,
    ReproError,
    SegmentationFault,
    StackSmashDetected,
)
from .kernel.kernel import Kernel
from .kernel.process import Process, ProcessResult

__version__ = "1.0.0"

__all__ = [
    "Kernel",
    "MachineFault",
    "Process",
    "ProcessResult",
    "ReproError",
    "SCHEMES",
    "SegmentationFault",
    "StackSmashDetected",
    "build",
    "deploy",
    "fold32",
    "get_scheme",
    "launch",
    "re_randomize",
    "__version__",
]
