"""The byte-by-byte (BROP-style) brute-force attack (paper §II-B).

Strategy: treat the forking parent as an oracle.  Overflow only the
lowest untested canary byte; a surviving worker confirms the guess, a
crash refutes it.  Against SSP every worker shares the parent's canary,
so confirmations accumulate — eight bytes fall in an expected
``8 × 2⁷ = 1024`` trials.  Against any scheme that re-randomizes the
stack canary per fork (or per call), a "confirmed" byte is only ever
valid for the worker that confirmed it, so the attacker's advantage never
accumulates and the attack stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..crypto.random import EntropySource
from .oracle import ForkingServer
from .payloads import FrameMap, PayloadBuilder


@dataclass
class ByteByByteReport:
    """Outcome of one byte-by-byte campaign."""

    success: bool
    trials: int
    recovered: bytes
    #: Per-byte trial counts (length == recovered bytes confirmed).
    per_byte_trials: List[int] = field(default_factory=list)
    #: True when the final verification overflow also survived.
    verified: bool = False

    @property
    def recovered_words(self) -> List[int]:
        """Recovered canary region as 64-bit little-endian words."""
        padded = self.recovered + b"\x00" * (-len(self.recovered) % 8)
        return [
            int.from_bytes(padded[i : i + 8], "little")
            for i in range(0, len(padded), 8)
        ]


def byte_by_byte_attack(
    server: ForkingServer,
    frame: FrameMap,
    *,
    max_trials: int = 20_000,
    entropy: Optional[EntropySource] = None,
    verify: bool = True,
) -> ByteByByteReport:
    """Run the attack against ``server``'s handler frame.

    ``entropy`` randomizes guess order (a real attacker often scans
    sequentially; either way the expected count per byte is ~128 once the
    distribution is uniform).  ``verify`` replays the fully recovered
    region one final time; under re-randomizing schemes this exposes that
    the "recovered" bytes were an illusion.
    """
    builder = PayloadBuilder(frame)
    recovered = bytearray()
    per_byte: List[int] = []
    trials = 0
    for _position in range(frame.canary_region_size):
        order = list(range(256))
        if entropy is not None:
            entropy.shuffle(order)
        confirmed: Optional[int] = None
        byte_trials = 0
        for guess in order:
            if trials >= max_trials:
                return ByteByByteReport(False, trials, bytes(recovered), per_byte)
            trials += 1
            byte_trials += 1
            response = server.handle_request(builder.probe(bytes(recovered), guess))
            if not response.crashed:
                confirmed = guess
                break
        if confirmed is None:
            # All 256 candidates crashed: the canary must have moved under
            # us — re-randomization is defeating accumulation.
            return ByteByByteReport(False, trials, bytes(recovered), per_byte)
        recovered.append(confirmed)
        per_byte.append(byte_trials)

    report = ByteByByteReport(True, trials, bytes(recovered), per_byte)
    if verify:
        payload = builder.probe(bytes(recovered[:-1]), recovered[-1])
        response = server.handle_request(payload)
        report.verified = not response.crashed
        report.success = report.verified
    return report


def expected_ssp_trials(canary_bytes: int = 8, *, terminator: bool = True) -> float:
    """Analytic expectation for SSP (sequential guessing).

    With a glibc-style terminator canary the low byte is 0x00 and falls on
    the first probe; each remaining byte needs (256+1)/2 probes on
    average.  The paper quotes the round figure 8 × 2⁷ = 1024.
    """
    per_byte = (256 + 1) / 2
    if terminator:
        return 1 + (canary_bytes - 1) * per_byte
    return canary_bytes * per_byte
