"""Remote reconnaissance: deriving attack geometry from the oracle alone.

The byte-by-byte attack needs to know where the canary starts relative to
the overflowing input.  ``frame_map`` derives it from the binary (the
paper's adversary model allows that); this module recovers the same fact
*blind*, the way Hacking Blind's stack-reading stage does — by probing
payload lengths and watching where crashes begin:

* length ≤ buffer: worker survives;
* length = buffer + k (k ≥ 1): the k-th canary byte is clobbered; the
  worker survives only if the written byte happens to match, so a filler
  byte crashes with probability 1 − 2⁻⁸ per extra byte.

The smallest reliably-crashing length minus one is the canary region
start.  From there the blind attacker runs the standard byte-by-byte
loop with no binary in hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .byte_by_byte import ByteByByteReport, byte_by_byte_attack
from .oracle import ForkingServer
from .payloads import FrameMap


@dataclass
class ReconReport:
    """Result of the length-probing stage."""

    canary_start: Optional[int]
    probes: int

    @property
    def success(self) -> bool:
        return self.canary_start is not None


def find_canary_start(
    server: ForkingServer,
    *,
    max_length: int = 512,
    fill: bytes = b"A",
    confirmations: int = 3,
) -> ReconReport:
    """Probe payload lengths to locate the first canary byte.

    Linear scan with confirmation: a crash at length L is only trusted
    once lengths L, L (repeated), and L+1 all crash while L−1 survives —
    filtering out the 2⁻⁸ survive-by-luck cases.
    """
    probes = 0
    length = 1
    while length <= max_length:
        probes += 1
        response = server.handle_request(fill * length)
        if not response.crashed:
            length += 1
            continue
        # Candidate boundary: confirm L-1 survives and L crashes reliably.
        candidate = length
        if candidate == 1:
            return ReconReport(0, probes)
        ok = True
        for _ in range(confirmations):
            probes += 1
            if server.handle_request(fill * (candidate - 1)).crashed:
                ok = False
                break
            probes += 1
            if not server.handle_request(fill * candidate).crashed:
                ok = False
                break
        if ok:
            return ReconReport(candidate - 1, probes)
        length += 1
    return ReconReport(None, probes)


def blind_byte_by_byte(
    server: ForkingServer,
    *,
    max_length: int = 512,
    canary_bytes: int = 8,
    max_trials: int = 20_000,
) -> "tuple[ReconReport, Optional[ByteByByteReport]]":
    """The full blind chain: find the geometry, then brute the canary.

    Returns ``(recon, attack)``; ``attack`` is ``None`` when recon failed.
    The attacker guesses the canary width (8 bytes — the architectural
    word size; against P-SSP the wider region simply makes the stall
    happen earlier).
    """
    recon = find_canary_start(server, max_length=max_length)
    if not recon.success:
        return recon, None
    frame = FrameMap(
        function="<blind>",
        buffer_offset=recon.canary_start + canary_bytes,
        buffer_size=recon.canary_start,
        canary_slots=[8 * (i + 1) for i in range(canary_bytes // 8)],
    )
    report = byte_by_byte_attack(server, frame, max_trials=max_trials)
    return recon, report
