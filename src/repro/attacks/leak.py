"""Canary-exposure (leak-and-replay) attacks — the single-point-of-failure
experiment motivating P-SSP-OWF (paper §IV-C).

Scenario: a memory-disclosure bug in one function exposes that frame's
canary material; the attacker replays it while overflowing a *different*
function in the same process, aiming to overwrite the return address and
hijack control flow to a ``win`` gadget.

* SSP / P-SSP / P-SSP-NT / P-SSP-LV: any pair XOR-consistent with the TLS
  canary verifies in any frame, so the replay succeeds — the ripple
  effect the paper describes.
* P-SSP-OWF: the leaked (nonce, ciphertext) binds to the leaking frame's
  return address; replayed into another frame it fails the AES check.
* P-SSP-GB: the target frame's buffer-resident half is never on the
  stack, so the replayed stack half cannot be made consistent.

The disclosure itself is modelled host-side (we read the canary material
out of a paused worker's frame) — equivalent to a format-string read and
independent of the defence under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..binfmt.elf import Binary
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from .payloads import FrameMap, PayloadBuilder, frame_map


@dataclass
class LeakReport:
    """Outcome of a leak-and-replay campaign."""

    leaked: Dict[int, int]
    hijacked: bool
    detected: bool
    response_output: bytes


class CanarySniffer:
    """Captures a function's in-frame canary words as it executes.

    Installs a CPU trace hook that snapshots the canary slots right after
    the prologue has populated them — the information a disclosure bug in
    that function would print.
    """

    def __init__(self, process: Process, function: str, frame: FrameMap) -> None:
        self.process = process
        self.function = function
        self.frame = frame
        self.captured: Dict[int, int] = {}
        self._armed = True
        process.cpu.trace = self._hook

    def _hook(self, name: str, index: int, instruction) -> None:
        if not self._armed or name != self.function:
            return
        if instruction.note in ("frame", "spill"):
            # During frame setup/teardown rbp belongs to the caller.
            return
        # Sample the slots at every step of the body; the last body sample
        # before the function returns holds the fully populated canaries.
        rbp = self.process.registers.read("rbp")
        if rbp == 0:
            return
        try:
            for slot in self.frame.canary_slots:
                self.captured[slot] = self.process.memory.read_word(rbp - slot)
        except Exception:  # frame not mapped yet (pre-prologue)
            return

    def disarm(self) -> Dict[int, int]:
        self._armed = False
        self.process.cpu.trace = None
        return dict(self.captured)


def leak_and_replay(
    kernel: Kernel,
    victim: Process,
    binary: Binary,
    *,
    leaky_function: str = "leaky",
    target_function: str = "target",
    win_function: str = "win",
    win_marker: bytes = b"PWNED",
) -> LeakReport:
    """Run the full chain inside one process (one worker).

    1. Execute ``leaky_function`` while sniffing its canary slots.
    2. Overflow ``target_function``'s buffer, replaying the leaked words
       into the target's canary slots and redirecting the return address
       to ``win_function``.
    3. Report whether the hijack landed (``win_marker`` observed on
       stdout) or the defence detected the smash.
    """
    leak_frame = frame_map(binary, leaky_function)
    sniffer = CanarySniffer(victim, leaky_function, leak_frame)
    victim.call(leaky_function, (0,))
    leaked = sniffer.disarm()

    target_frame = frame_map(binary, target_function)
    builder = PayloadBuilder(target_frame)
    # Replay leaked words positionally: slot i of the leak into slot i of
    # the target (both schemes lay canaries out identically per scheme).
    replay = {
        slot: leaked[leak_slot]
        for slot, leak_slot in zip(target_frame.canary_slots, leak_frame.canary_slots)
        if leak_slot in leaked
    }
    win_address = victim.image.address_of(win_function)
    sane_rbp = victim.registers.read("rsp") - 0x200
    payload = builder.with_canaries(
        replay, new_return=win_address, new_rbp=sane_rbp
    )
    victim.stdin.clear()
    victim.feed_stdin(payload)
    result = victim.call(target_function, (len(payload),))
    output = bytes(victim.stdout)
    return LeakReport(
        leaked=leaked,
        hijacked=win_marker in output,
        detected=result.smashed,
        response_output=output,
    )
