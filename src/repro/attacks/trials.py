"""Repeated byte-by-byte attack trials as a shardable campaign.

One trial is fully determined by ``(scheme, seed, victim source)``: the
kernel seed fixes the canary stream, so trial ``i`` of a campaign —
seeded ``base_seed + i`` — reproduces bit-for-bit, exactly like a fuzz
or chaos seed.  That makes attack-cost distributions (``repro attack
--repeats N`` and ``benchmarks/bench_security.py``) a third consumer of
:mod:`repro.parallel`: the seed range shards across a process pool and
merges in seed order, so ``jobs=N`` reports match ``jobs=1`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import telemetry
from .byte_by_byte import byte_by_byte_attack
from .oracle import ForkingServer
from .payloads import frame_map

#: The §VI-C forking-server victim (a read into a fixed frame).
DEFAULT_VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


@dataclass
class AttackTrial:
    """One seeded byte-by-byte campaign against one server."""

    seed: int
    success: bool
    trials: int
    recovered: str  #: hex of the recovered canary-region bytes
    #: Defender-side view: ``canary_smashes_detected_total`` delta.
    smashes: int

    @property
    def recovered_bytes(self) -> int:
        return len(self.recovered) // 2

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "success": self.success,
            "trials": self.trials,
            "recovered": self.recovered,
            "smashes": self.smashes,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "AttackTrial":
        return cls(
            seed=int(data["seed"]),
            success=bool(data["success"]),
            trials=int(data["trials"]),
            recovered=data["recovered"],
            smashes=int(data["smashes"]),
        )


@dataclass
class AttackCampaignReport:
    """Outcome of ``repeats`` seeded trials against one scheme."""

    scheme: str
    base_seed: int
    repeats: int
    max_trials: int
    trials: List[AttackTrial] = field(default_factory=list)
    #: Seeds whose shard was lost to a crashed worker (after retries).
    lost: List[int] = field(default_factory=list)
    #: Shards that needed more than one attempt, ``"first..last" ->
    #: attempts`` (empty on serial and healthy parallel runs).
    shard_attempts: Dict[str, int] = field(default_factory=dict)

    @property
    def successes(self) -> int:
        return sum(1 for trial in self.trials if trial.success)

    @property
    def mean_trials(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.trials for t in self.trials) / len(self.trials)

    def to_json(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "base_seed": self.base_seed,
            "repeats": self.repeats,
            "max_trials": self.max_trials,
            "trials": [trial.to_json() for trial in self.trials],
            "lost": list(self.lost),
            "shard_attempts": dict(sorted(self.shard_attempts.items())),
        }

    def render(self) -> str:
        lines = [
            f"attack: scheme={self.scheme} repeats={self.repeats} "
            f"base seed {self.base_seed}"
        ]
        for trial in self.trials:
            lines.append(
                f"  seed {trial.seed}: "
                f"{'BROKEN' if trial.success else 'held'} after "
                f"{trial.trials} trial(s), "
                f"{trial.recovered_bytes} byte(s) recovered, "
                f"{trial.smashes} smash(es) detected"
            )
        for span, attempts in sorted(self.shard_attempts.items()):
            lines.append(f"  shard {span}: {attempts} attempt(s)")
        for seed in self.lost:
            lines.append(f"  seed {seed}: LOST (worker crashed)")
        lines.append(
            f"{self.successes}/{len(self.trials)} attack(s) succeeded, "
            f"mean {self.mean_trials:.0f} trial(s)"
        )
        return "\n".join(lines)


def run_attack_trial(
    scheme: str,
    seed: int,
    *,
    max_trials: int = 6000,
    source: str = DEFAULT_VICTIM,
) -> AttackTrial:
    """Build the victim, run one byte-by-byte campaign, count smashes."""
    from ..core.deploy import build, deploy
    from ..kernel.kernel import Kernel

    kernel = Kernel(seed)
    binary = build(source, scheme, name="server")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    before = telemetry.snapshot()
    report = byte_by_byte_attack(server, frame, max_trials=max_trials)
    delta = telemetry.delta(before)
    smashes = int(delta.get("canary_smashes_detected_total", 0) or 0)
    return AttackTrial(
        seed=seed,
        success=report.success,
        trials=report.trials,
        recovered=report.recovered.hex(),
        smashes=smashes,
    )


def _attack_shard_worker(config: Dict[str, Any], seeds, attempt: int):
    """Process-pool entry point: run one shard's attack seeds."""
    before = telemetry.snapshot()
    trials = [
        run_attack_trial(
            config["scheme"], seed,
            max_trials=config["max_trials"], source=config["source"],
        ).to_json()
        for seed in seeds
    ]
    return {"trials": trials, "telemetry": telemetry.delta(before)}


def attack_campaign(
    scheme: str,
    *,
    base_seed: int = 20180625,
    repeats: int = 1,
    max_trials: int = 6000,
    source: str = DEFAULT_VICTIM,
    jobs: int = 1,
    shard_retries: int = 1,
) -> AttackCampaignReport:
    """Run ``repeats`` seeded trials (seeds ``base_seed + i``).

    ``jobs > 1`` shards the seed range; the report is merged in seed
    order and is bit-identical to a serial run.  Seeds on a shard whose
    worker died (after ``shard_retries`` re-queues) are listed in
    ``report.lost``; shards that needed more than one attempt land in
    ``report.shard_attempts``.
    """
    report = AttackCampaignReport(
        scheme=scheme, base_seed=base_seed, repeats=repeats,
        max_trials=max_trials,
    )
    if jobs <= 1:
        for index in range(repeats):
            report.trials.append(run_attack_trial(
                scheme, base_seed + index,
                max_trials=max_trials, source=source,
            ))
        return report

    from ..parallel import plan_shards, run_shards

    config = {"scheme": scheme, "max_trials": max_trials, "source": source}
    shards = plan_shards(base_seed, repeats)
    outcomes, _ = run_shards(
        _attack_shard_worker, config, shards, jobs=jobs, retries=shard_retries,
    )
    deltas = []
    for outcome in outcomes:
        if outcome.attempts > 1:
            first, last = outcome.shard.seeds[0], outcome.shard.seeds[-1]
            report.shard_attempts[f"{first}..{last}"] = outcome.attempts
        if outcome.ok:
            report.trials.extend(
                AttackTrial.from_json(t) for t in outcome.value["trials"]
            )
            deltas.append(outcome.value["telemetry"])
        else:
            report.lost.extend(outcome.shard.seeds)
    merged = telemetry.Snapshot()
    for delta in deltas:
        merged = merged.merge(telemetry.Snapshot(delta))
    if merged:
        telemetry.absorb(merged)
    return report
