"""The attacker's oracle: a forking network server.

The byte-by-byte attack (paper §II-B) needs exactly one capability: send
a request to a server whose parent forks a fresh worker per connection,
and observe whether the worker crashed.  :class:`ForkingServer` provides
that interface over a deployed victim process; :class:`ThreadedServer`
provides the pthread variant.

The oracle deliberately reveals only what a network attacker sees — the
binary outcome (connection closed normally vs. reset) and the response
bytes — never process internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..kernel.kernel import Kernel
from ..kernel.process import Process, ProcessResult


@dataclass
class Response:
    """What the attacker observes from one request."""

    crashed: bool
    output: bytes
    #: Diagnostic only (never consulted by attack logic): full result.
    result: ProcessResult


class ForkingServer:
    """A prefork server: each request handled by a fresh forked child.

    Crashed children are simply replaced — the parent (and therefore the
    TLS it clones into workers) lives on, which is exactly the structure
    the byte-by-byte attack exploits against SSP and the structure P-SSP's
    fork hook defends.
    """

    def __init__(
        self,
        kernel: Kernel,
        parent: Process,
        handler: str = "handler",
        *,
        pass_length: bool = True,
    ) -> None:
        self.kernel = kernel
        self.parent = parent
        self.handler = handler
        self.pass_length = pass_length
        #: Total workers forked (attack-cost accounting).
        self.requests_served = 0

    def handle_request(self, payload: bytes) -> Response:
        """Fork a worker, feed it the payload, run the handler."""
        child = self.kernel.fork(self.parent)
        child.stdin.clear()
        child.feed_stdin(payload)
        args: Tuple[int, ...] = (len(payload),) if self.pass_length else ()
        result = child.call(self.handler, args)
        self.requests_served += 1
        response = Response(result.crashed, bytes(child.stdout), result)
        self.kernel.reap(child)
        return response

    def worker(self) -> Process:
        """Fork a worker without running it (for introspective tests)."""
        return self.kernel.fork(self.parent)


class ThreadedServer:
    """A thread-per-request server (the paper's multithread mode).

    A crashed thread takes the whole process down in reality; here each
    request gets a fresh thread context in a fresh fork so the oracle
    stays reusable while keeping pthread TLS semantics on the request
    path.
    """

    def __init__(
        self,
        kernel: Kernel,
        parent: Process,
        handler: str = "handler",
    ) -> None:
        self.kernel = kernel
        self.parent = parent
        self.handler = handler
        self.requests_served = 0

    def handle_request(self, payload: bytes) -> Response:
        process = self.kernel.fork(self.parent)
        thread = self.kernel.create_thread(process)
        thread.stdin.clear()
        thread.feed_stdin(payload)
        result = thread.call(self.handler, (len(payload),))
        self.requests_served += 1
        response = Response(result.crashed, bytes(thread.stdout), result)
        self.kernel.reap(process)
        return response
