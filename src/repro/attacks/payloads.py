"""Overflow payload construction.

The adversary model grants full knowledge of the victim binary (paper
§III-A), so the payload builder introspects the compiled function's frame
metadata — buffer position, canary slots, frame size — just as a real
attacker reads a disassembly.  What it must *guess* is only the canary
material, which is the whole point of the schemes under test.

Payload coordinates: byte 0 lands at the buffer's lowest address
(``rbp - buffer_offset``); the saved frame pointer starts at byte
``buffer_offset``; the return address at ``buffer_offset + 8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..binfmt.elf import Binary
from ..errors import ProtectionError


@dataclass
class FrameMap:
    """Attack-relevant layout of one protected function's frame."""

    function: str
    buffer_offset: int  # rbp - offset = buffer base (payload byte 0)
    buffer_size: int
    canary_slots: "list[int]"  # rbp-relative offsets, 8 bytes each

    @property
    def canary_region_start(self) -> int:
        """Payload position of the first (lowest-address) canary byte."""
        return self.buffer_offset - max(self.canary_slots)

    @property
    def canary_region_size(self) -> int:
        """Bytes from the lowest canary byte up to the saved rbp."""
        return max(self.canary_slots)

    @property
    def saved_rbp_position(self) -> int:
        return self.buffer_offset

    @property
    def return_address_position(self) -> int:
        return self.buffer_offset + 8

    def slot_position(self, slot: int) -> int:
        """Payload position of canary word at ``rbp - slot``."""
        return self.buffer_offset - slot


def frame_map(binary: Binary, function_name: str, buffer: Optional[str] = None) -> FrameMap:
    """Derive the attack layout for ``function_name`` in ``binary``."""
    function = binary.function(function_name)
    buffers: Dict[str, tuple] = function.meta.get("buffers", {})
    if not buffers:
        raise ProtectionError(f"{function_name} has no local buffers to overflow")
    if buffer is None:
        # The buffer adjacent to the canary region: highest address,
        # i.e. the smallest offset.
        buffer = min(buffers, key=lambda name: buffers[name][0])
    offset, size = buffers[buffer]
    slots = list(function.meta.get("canary_slots", [])) or [8]
    return FrameMap(function_name, offset, size, slots)


class PayloadBuilder:
    """Compose overflow payloads against a mapped frame."""

    def __init__(self, frame: FrameMap, fill: bytes = b"A") -> None:
        self.frame = frame
        self.fill = fill

    def _filled(self, length: int) -> bytearray:
        repeats = (length // len(self.fill)) + 1
        return bytearray((self.fill * repeats)[:length])

    def benign(self, length: Optional[int] = None) -> bytes:
        """A payload that stays inside the buffer."""
        if length is None:
            length = max(0, self.frame.buffer_size - 1)
        if length >= self.frame.buffer_size:
            raise ValueError("benign payload would overflow")
        return bytes(self._filled(length))

    def smash(self, extra: int = 64) -> bytes:
        """Blind overflow: fill straight through canaries and beyond."""
        return bytes(self._filled(self.frame.return_address_position + 8 + extra))[
            : self.frame.return_address_position + 8
        ]

    def probe(self, known: bytes, guess: int) -> bytes:
        """Byte-by-byte probe: overwrite ``len(known)+1`` canary bytes.

        ``known`` are the already-recovered low canary bytes; ``guess`` is
        the candidate for the next byte.  Bytes above the guess are left
        untouched, so a correct guess leaves the canary region intact.
        """
        payload = self._filled(self.frame.canary_region_start)
        payload += known + bytes([guess])
        return bytes(payload)

    def with_canaries(
        self,
        canary_words: Dict[int, int],
        *,
        new_return: Optional[int] = None,
        new_rbp: Optional[int] = None,
    ) -> bytes:
        """Full exploit: correct canary words, then rbp/ret overwrite.

        ``canary_words`` maps canary slot offsets to 64-bit values.  Any
        canary slot not supplied is filled with filler bytes (i.e., it
        gets smashed — useful for negative tests).
        """
        length = self.frame.return_address_position + 8
        payload = self._filled(length)
        for slot, value in canary_words.items():
            position = self.frame.slot_position(slot)
            payload[position : position + 8] = value.to_bytes(8, "little")
        if new_rbp is not None:
            p = self.frame.saved_rbp_position
            payload[p : p + 8] = new_rbp.to_bytes(8, "little")
        if new_return is not None:
            p = self.frame.return_address_position
            payload[p : p + 8] = new_return.to_bytes(8, "little")
        else:
            payload = payload[: self.frame.saved_rbp_position]
        return bytes(payload)
