"""Defender-side telemetry: spotting a brute-force campaign in flight.

The paper's effectiveness experiment (§VI-C) has an operational flip
side: even when a canary scheme *stops* the byte-by-byte attack, the
campaign is loud — every failed probe kills a worker.  A defender
watching worker-crash rates sees the attack immediately (and under
RAF-SSP-style schemes could distinguish it from the scheme's own
false positives by the crash signals involved).

:class:`CrashRateMonitor` wraps any oracle-style server and keeps a
sliding window of outcomes; ``alarm`` trips when the crash rate over the
window exceeds the threshold.  This is the "watch your dashboards"
control the paper's deployment story implies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from .oracle import Response


@dataclass
class MonitorStats:
    """A snapshot of the monitor's view."""

    requests: int
    crashes: int
    window_crash_rate: float
    alarmed: bool


class CrashRateMonitor:
    """Sliding-window worker-crash-rate alarm.

    Parameters
    ----------
    server:
        Any object with ``handle_request(payload) -> Response``.
    window:
        Number of recent requests considered.
    threshold:
        Crash fraction over the window that trips the alarm.  Benign
        traffic crashes (bugs happen) should stay well below it; a
        byte-by-byte campaign runs near 1.0 (every probe but the
        per-byte confirmation dies).
    """

    def __init__(self, server, *, window: int = 50, threshold: float = 0.5) -> None:
        self.server = server
        self.window = window
        self.threshold = threshold
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self.requests = 0
        self.crashes = 0
        #: Request index at which the alarm first tripped (None = never).
        self.alarmed_at: Optional[int] = None

    def handle_request(self, payload: bytes) -> Response:
        """Proxy a request, recording its outcome."""
        response = self.server.handle_request(payload)
        self.requests += 1
        self.crashes += int(response.crashed)
        self._outcomes.append(response.crashed)
        if self.alarmed_at is None and self.alarm:
            self.alarmed_at = self.requests
        return response

    @property
    def window_crash_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    @property
    def alarm(self) -> bool:
        """True when the recent crash rate exceeds the threshold.

        Requires at least half a window of data so one unlucky request
        cannot page anyone at 3 a.m.
        """
        if len(self._outcomes) < max(2, self.window // 2):
            return False
        return self.window_crash_rate >= self.threshold

    def stats(self) -> MonitorStats:
        return MonitorStats(
            self.requests, self.crashes, self.window_crash_rate, self.alarm
        )
