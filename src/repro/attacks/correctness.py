"""Fork-correctness probe (Table I's "Correctness" column).

RAF-SSP's defect: it renews the child's *TLS* canary on fork but cannot
update the canaries already sitting in stack frames the child inherited
from its parent.  When the child's control flow returns through such a
frame, the epilogue compares an old stack canary against the new TLS
canary and aborts a perfectly healthy process.

The probe builds that exact control-flow shape *in simulated code*: a
protected function calls ``fork``; the child then returns through the
protected frame created before the fork.  A correct scheme lets the child
exit cleanly; RAF-SSP kills it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel

#: The protected parent frame is created by ``outer`` *before* fork; both
#: parent and child return through it afterwards.
CORRECTNESS_PROBE_SOURCE = """
int outer() {
    char buf[32];
    int pid;
    buf[0] = 7;
    pid = fork();
    return buf[0];      // both sides return through the pre-fork frame
}

int main() {
    return outer();
}
"""


@dataclass
class CorrectnessReport:
    """Did the child survive returning into an inherited frame?"""

    scheme: str
    parent_ok: bool
    child_ok: bool
    child_signal: str

    @property
    def fork_correct(self) -> bool:
        return self.parent_ok and self.child_ok


def probe_fork_correctness(scheme: str, seed: int = 11) -> CorrectnessReport:
    """Run the probe under ``scheme`` and report both sides' fates."""
    kernel = Kernel(seed)
    binary = build(CORRECTNESS_PROBE_SOURCE, scheme, name="probe")
    process, _ = deploy(kernel, binary, scheme)
    result = process.run()
    children = getattr(process, "child_results", [])
    child_ok = bool(children) and all(r.state == "exited" for _, r in children)
    child_signal = ""
    for _pid, child_result in children:
        if child_result.crashed:
            child_signal = child_result.signal
    return CorrectnessReport(
        scheme=scheme,
        parent_ok=result.state == "exited" and result.exit_status == 7,
        child_ok=child_ok,
        child_signal=child_signal,
    )
