"""Exhaustive (whole-word) canary search (paper §III-C1).

Each trial guesses the complete canary region in one overflow.  Expected
cost is 2^63 for a 64-bit canary — infeasible by design — so the empirical
driver here exists to (a) demonstrate the per-trial survival probability
is flat across schemes of equal TLS-canary width (the paper's security
claim: P-SSP equals SSP against exhaustive search), and (b) measure the
32-bit downgrade of the instrumentation path (§V-C caveat: ~2^31 expected
trials, still 64× beyond byte-by-byte's reach).

For statistics at laptop scale, :func:`survival_probability_montecarlo`
runs the scheme *algebra* (not the full simulator) with reduced canary
widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.random import EntropySource
from ..core.rerandomize import check_pair
from .oracle import ForkingServer
from .payloads import FrameMap, PayloadBuilder


@dataclass
class ExhaustiveReport:
    """Outcome of an exhaustive-search campaign."""

    success: bool
    trials: int
    survivals: int


def exhaustive_attack(
    server: ForkingServer,
    frame: FrameMap,
    entropy: EntropySource,
    *,
    max_trials: int = 2_000,
    scheme_pair_split: bool = False,
) -> ExhaustiveReport:
    """Random whole-region guesses against the live oracle.

    With ``scheme_pair_split`` the attacker knows the victim runs P-SSP
    and therefore guesses a TLS canary ``C'`` and writes a *consistent*
    split ``(C0', C0' ⊕ C')`` (paper §III-C1) — the optimal strategy,
    with the same success probability as guessing SSP's canary directly.
    """
    builder = PayloadBuilder(frame)
    survivals = 0
    for trial in range(1, max_trials + 1):
        words = {}
        if scheme_pair_split and len(frame.canary_slots) >= 2:
            guess_c = entropy.word(64)
            c0 = entropy.word(64)
            words[frame.canary_slots[0]] = c0
            words[frame.canary_slots[1]] = c0 ^ guess_c
        else:
            for slot in frame.canary_slots:
                words[slot] = entropy.word(64)
        payload = builder.with_canaries(words)
        response = server.handle_request(payload)
        if not response.crashed:
            survivals += 1
            return ExhaustiveReport(True, trial, survivals)
    return ExhaustiveReport(False, max_trials, survivals)


def survival_probability_montecarlo(
    scheme: str,
    *,
    bits: int = 12,
    samples: int = 50_000,
    seed: Optional[int] = 1,
) -> float:
    """Estimate one-shot survival probability with a ``bits``-wide canary.

    Runs the schemes' canary algebra directly: for each sample a fresh
    victim canary state is drawn, the attacker makes one uniform guess,
    and we count survivals.  All schemes with a ``bits``-wide TLS canary
    should converge to ``2**-bits`` — the paper's equal-strength claim —
    while the instrumentation path with folded 32→``bits/2`` canaries
    halves the exponent.
    """
    entropy = EntropySource(seed)
    mask = (1 << bits) - 1
    survivals = 0
    for _ in range(samples):
        canary = entropy.word(bits)
        if scheme == "ssp":
            survivals += int(entropy.word(bits) == canary)
        elif scheme in ("pssp", "pssp-nt"):
            # Victim holds a random split; attacker writes a consistent
            # split of a guessed canary.
            guess = entropy.word(bits)
            c0 = entropy.word(bits)
            c1 = c0 ^ guess
            survivals += int(check_pair(c0, c1, canary, bits=bits))
        elif scheme == "pssp-binary":
            # Folded halves: challenge strength is bits/2.
            half = bits // 2
            folded = ((canary >> half) ^ canary) & ((1 << half) - 1)
            guess = entropy.word(half)
            c0 = entropy.word(half)
            c1 = c0 ^ guess
            survivals += int((c0 ^ c1) == folded)
        else:
            raise ValueError(f"no analytic model for scheme {scheme!r}")
    return survivals / samples
