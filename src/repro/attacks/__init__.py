"""Attack framework: oracle servers, payload construction, the
byte-by-byte and exhaustive brute-force attacks, leak-and-replay, and the
fork-correctness probe."""

from .byte_by_byte import ByteByByteReport, byte_by_byte_attack, expected_ssp_trials
from .correctness import (
    CORRECTNESS_PROBE_SOURCE,
    CorrectnessReport,
    probe_fork_correctness,
)
from .detection import CrashRateMonitor, MonitorStats
from .exhaustive import (
    ExhaustiveReport,
    exhaustive_attack,
    survival_probability_montecarlo,
)
from .leak import CanarySniffer, LeakReport, leak_and_replay
from .oracle import ForkingServer, Response, ThreadedServer
from .payloads import FrameMap, PayloadBuilder, frame_map
from .recon import ReconReport, blind_byte_by_byte, find_canary_start
from .trials import (
    AttackCampaignReport,
    AttackTrial,
    attack_campaign,
    run_attack_trial,
)

__all__ = [
    "AttackCampaignReport",
    "AttackTrial",
    "attack_campaign",
    "run_attack_trial",
    "ByteByByteReport",
    "CORRECTNESS_PROBE_SOURCE",
    "CanarySniffer",
    "CorrectnessReport",
    "CrashRateMonitor",
    "MonitorStats",
    "ExhaustiveReport",
    "ForkingServer",
    "FrameMap",
    "LeakReport",
    "PayloadBuilder",
    "ReconReport",
    "Response",
    "ThreadedServer",
    "blind_byte_by_byte",
    "byte_by_byte_attack",
    "find_canary_start",
    "exhaustive_attack",
    "expected_ssp_trials",
    "frame_map",
    "leak_and_replay",
    "probe_fork_correctness",
    "survival_probability_montecarlo",
]
