"""Deterministic work sharding for seeded campaigns.

A campaign is a contiguous seed interval ``[base_seed, base_seed +
budget)``.  :func:`plan_shards` partitions it into ordered, disjoint,
jointly-exhaustive slices whose layout depends **only** on the interval
(and an optional resume skip-set) — never on the worker count — so the
same campaign always decomposes into the same shards whether it runs
under ``--jobs 1`` or ``--jobs 64``.  That invariant is what makes the
merged report reproducible: results are folded in shard order, not
completion order, so the aggregate is independent of scheduling.

The module also owns the one shared ``--jobs`` resolution helper used
by every subcommand and benchmark (validation, the ``REPRO_JOBS``
environment default, and the CPU-count cap), so the rules cannot drift
between entry points.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

#: Aim for this many shards per campaign: enough slices that a slow
#: shard cannot serialise the tail, few enough that per-task overhead
#: stays negligible.
TARGET_SHARDS = 16

#: Never put more than this many seeds in one shard (keeps retry and
#: checkpoint granularity bounded on huge budgets).
MAX_SHARD_SEEDS = 32

#: Environment variable supplying the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class Shard:
    """One slice of a campaign: an ordered tuple of seeds."""

    index: int
    seeds: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.seeds)


def shard_size_for(budget: int) -> int:
    """Seeds per shard for a campaign of ``budget`` seeds.

    Derived from the budget alone (ceil-divided towards
    :data:`TARGET_SHARDS`, capped at :data:`MAX_SHARD_SEEDS`) so the
    partition is identical for every ``--jobs`` value.
    """
    if budget <= 0:
        return 1
    return max(1, min(MAX_SHARD_SEEDS, -(-budget // TARGET_SHARDS)))


def plan_shards(
    base_seed: int,
    budget: int,
    *,
    shard_size: Optional[int] = None,
    skip: Iterable[int] = (),
) -> List[Shard]:
    """Partition ``[base_seed, base_seed + budget)`` into shards.

    ``skip`` removes already-completed seeds (checkpoint resume) before
    slicing, so a resumed campaign re-shards only the remaining work.
    The returned shards are ordered, disjoint, and cover exactly the
    non-skipped seeds — no seed is ever dropped or duplicated.
    """
    skipped = frozenset(skip)
    seeds = [
        base_seed + offset
        for offset in range(max(0, budget))
        if base_seed + offset not in skipped
    ]
    size = shard_size if shard_size is not None else shard_size_for(budget)
    if size < 1:
        raise ValueError(f"shard_size must be >= 1, got {size}")
    return [
        Shard(index, tuple(seeds[start:start + size]))
        for index, start in enumerate(range(0, len(seeds), size))
    ]


# ---------------------------------------------------------------------------
# --jobs resolution (the one shared implementation; see module docstring)
# ---------------------------------------------------------------------------


def default_jobs() -> int:
    """Worker count from :data:`JOBS_ENV_VAR`, else 1 (serial)."""
    raw = os.environ.get(JOBS_ENV_VAR)
    if raw is None or not raw.strip():
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{JOBS_ENV_VAR} must be >= 1, got {value}")
    return min(value, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Validate and normalise a requested worker count.

    ``None`` falls back to :func:`default_jobs` (the ``REPRO_JOBS``
    environment variable, else 1).  Explicit values below 1 are
    rejected; values above ``os.cpu_count()`` are capped — extra
    workers past the core count only add scheduling overhead.
    """
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"--jobs must be >= 1, got {jobs}")
    return min(jobs, os.cpu_count() or 1)


def _jobs_argument(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 1, got {value}")
    return value


def add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--jobs`` option to a subcommand parser."""
    parser.add_argument(
        "--jobs", type=_jobs_argument, default=None, metavar="N",
        help=f"worker processes (default: ${JOBS_ENV_VAR} or 1; "
             f"capped at the CPU count)",
    )


def resolve_shard_retries(retries: int) -> int:
    """Validate a ``--shard-retries`` value.

    ``retries`` is the number of re-queues a lost shard gets before the
    campaign reports its seeds as infrastructure failures.  Zero is
    legal (fail fast); negatives are not.
    """
    if retries < 0:
        raise ValueError(f"--shard-retries must be >= 0, got {retries}")
    return retries


def add_shard_retries_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--shard-retries`` option to a subcommand
    parser (campaign commands that fan out through ``run_shards``)."""
    parser.add_argument(
        "--shard-retries", type=int, default=1, metavar="N",
        help="re-queues per lost shard before its seeds are reported "
             "as infrastructure failures (default: 1)",
    )
