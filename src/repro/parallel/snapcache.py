"""Cache of warmed spawn images, content-addressed by deployment inputs.

Campaigns spawn the same protected binary thousands of times: every
attack trial, chaos case, and conformance seed boots a fresh process
from the identical binary + preload set.  A cold boot re-runs the whole
loader (layout, rodata placement, zero-fill), which is pure waste —
spawn images are captured *before any entropy draw*, so one frozen
image serves every seed and the COW clone it hands out costs O(pages
touched) instead of O(address-space size).

:class:`SnapshotCache` keys a frozen
:class:`~repro.machine.snapshot.SpawnImage` by
``sha256(binary-image ‖ scheme-toolchain-fingerprint ‖ preload-images
‖ stack_size ‖ SNAPSHOT_VERSION)``.  The binary and preloads enter the
key as their full serialized images (not names), so a recompiled
binary can never alias a stale layout; the toolchain fingerprint and
:data:`~repro.machine.snapshot.SNAPSHOT_VERSION` cover everything else
that shapes the bytes.

Two tiers:

* an in-process LRU of live :class:`SpawnImage` objects (hits are a
  dict lookup; ``instantiate()`` already hands out private clones);
* an optional on-disk tier (``REPRO_SNAPSHOT_DIR``) of
  ``<key>.simg`` files in the deterministic container format, written
  atomically — this is what CI's warm-image cache persists between
  workflow runs.

Spawn images are seed-free by construction, so sharing one across
processes/runs cannot perturb determinism; the equivalence is gated by
``tests/parallel/test_snapcache.py`` (warm spawn ≡ cold spawn, bit for
bit).

Environment knobs: ``REPRO_SNAPSHOT_CACHE=0`` disables both tiers;
``REPRO_SNAPSHOT_CACHE_SIZE`` overrides the LRU entry bound;
``REPRO_SNAPSHOT_DIR`` enables the disk tier at that path.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional

from .. import telemetry
from ..binfmt import serialize
from ..machine.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    SpawnImage,
    dump_spawn_image,
    load_spawn_image,
    prepare_spawn_image,
)
from .buildcache import toolchain_fingerprint

#: Default LRU bound (entries; images are page-shared, so cheap).
DEFAULT_MAX_IMAGES = 64

_ENABLE_ENV = "REPRO_SNAPSHOT_CACHE"
_SIZE_ENV = "REPRO_SNAPSHOT_CACHE_SIZE"
_DIR_ENV = "REPRO_SNAPSHOT_DIR"

#: Disk-tier file suffix (one image per key).
IMAGE_SUFFIX = ".simg"


class SnapshotCache:
    """Two-tier (memory + optional disk) cache of warmed spawn images."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        directory: Optional[str] = None,
    ) -> None:
        if max_entries is None:
            max_entries = int(os.environ.get(_SIZE_ENV, DEFAULT_MAX_IMAGES))
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.enabled = os.environ.get(_ENABLE_ENV, "1") != "0"
        self.directory = (
            directory if directory is not None else os.environ.get(_DIR_ENV)
        )
        self._entries: "OrderedDict[str, SpawnImage]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_stores = 0

    # -- keying ----------------------------------------------------------

    @staticmethod
    def key_for(binary, spec, preloads, stack_size: int) -> str:
        """The content address of one (binary, scheme, preloads) boot."""
        digest = hashlib.sha256()
        digest.update(b"snapshot-v%d" % SNAPSHOT_VERSION)
        digest.update(b"\x00")
        digest.update(serialize.dumps(binary))
        digest.update(b"\x00")
        digest.update(toolchain_fingerprint(spec).encode("ascii"))
        for preload in preloads:
            digest.update(b"\x00")
            digest.update(serialize.dumps(preload))
        digest.update(b"\x00%d" % stack_size)
        return digest.hexdigest()

    # -- lookup ----------------------------------------------------------

    def image_for(
        self, binary, spec, preloads=(), *, stack_size: int = 0x40000
    ) -> SpawnImage:
        """A warmed spawn image for this deployment, building on miss.

        The returned object is shared — callers must only use
        :meth:`~repro.machine.snapshot.SpawnImage.instantiate`, which
        hands out private COW clones.
        """
        preloads = list(preloads)
        if not self.enabled:
            return prepare_spawn_image(
                binary, preloads=preloads, stack_size=stack_size
            )
        key = self.key_for(binary, spec, preloads, stack_size)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            telemetry.count(
                "snapshot_cache_hits_total", help="spawn-image cache hits"
            )
            return cached
        image = self._load_from_disk(key)
        if image is None:
            self.misses += 1
            telemetry.count(
                "snapshot_cache_misses_total", help="spawn-image cache misses"
            )
            image = prepare_spawn_image(
                binary, preloads=preloads, stack_size=stack_size
            )
            self._store_to_disk(key, image)
        self._entries[key] = image
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.count(
                "snapshot_cache_evictions_total",
                help="spawn-image cache LRU evictions",
            )
        return image

    # -- disk tier -------------------------------------------------------

    def _path_for(self, key: str) -> Optional[str]:
        if not self.directory:
            return None
        return os.path.join(self.directory, key + IMAGE_SUFFIX)

    def _load_from_disk(self, key: str) -> Optional[SpawnImage]:
        path = self._path_for(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                image = load_spawn_image(handle.read())
        except (OSError, SnapshotError):
            # A truncated or version-skewed file is a miss, not an error:
            # the rebuilt image overwrites it.
            return None
        self.disk_hits += 1
        telemetry.count(
            "snapshot_cache_disk_hits_total",
            help="spawn images served from the disk tier",
        )
        return image

    def _store_to_disk(self, key: str, image: SpawnImage) -> None:
        path = self._path_for(key)
        if path is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=self.directory, suffix=".tmp", delete=False
            )
            try:
                with handle:
                    handle.write(dump_spawn_image(image))
                os.replace(handle.name, path)
            except BaseException:
                os.unlink(handle.name)
                raise
        except OSError:
            # Disk tier is best-effort (read-only FS, quota): the
            # in-memory entry still serves this process.
            return
        self.disk_stores += 1
        telemetry.count(
            "snapshot_cache_disk_stores_total",
            help="spawn images persisted to the disk tier",
        )

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are left alone)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Plain-data counters for gates and the CI cache-stats artifact."""
        lookups = self.hits + self.misses
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


def directory_stats(directory: str) -> Dict[str, object]:
    """Manifest of a disk-tier directory (the CI artifact next to
    ``buildcache-stats.json``): image count and total bytes."""
    images = 0
    total = 0
    if os.path.isdir(directory):
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(IMAGE_SUFFIX):
                continue
            images += 1
            total += os.path.getsize(os.path.join(directory, entry))
    return {"directory": directory, "images": images, "bytes": total}


#: The per-process cache consulted by :func:`repro.core.deploy.deploy`.
_DEFAULT: Optional[SnapshotCache] = None


def image_cache() -> SnapshotCache:
    """The process-wide spawn-image cache (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SnapshotCache()
    return _DEFAULT


def reset_image_cache() -> SnapshotCache:
    """Replace the process-wide cache (tests; env-knob re-reads)."""
    global _DEFAULT
    _DEFAULT = SnapshotCache()
    return _DEFAULT
