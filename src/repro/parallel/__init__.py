"""Parallel campaign execution: deterministic sharding + build caching.

The repo's campaigns (fuzz conformance, chaos fault injection,
byte-by-byte attack trials, the effectiveness/security benches) are
seeded loops over ``[base_seed, base_seed + budget)``.  This package
makes them scale across cores without giving up the determinism
contract that one seed reproduces one case bit-for-bit:

* :mod:`repro.parallel.sharding` — jobs-independent partition of a
  campaign into ordered shards, plus the one shared ``--jobs``
  resolution helper (validation, ``REPRO_JOBS`` default, CPU cap).
* :mod:`repro.parallel.executor` — a crash-tolerant process-pool
  runner: bounded in-flight work, per-shard timeout, one re-queue for
  a crashed worker's slice, then an explicit infra failure — never a
  silently dropped seed.  Results come back in canonical shard order.
* :mod:`repro.parallel.buildcache` — content-addressed cache of
  compiled images keyed by ``hash(source, scheme, toolchain)``, so
  fast/slow differential pairs, reference/faulted twins, and shrinking
  loops reuse one build.
* :mod:`repro.parallel.snapcache` — content-addressed cache of warmed
  :class:`~repro.machine.snapshot.SpawnImage` objects (memory tier +
  optional ``REPRO_SNAPSHOT_DIR`` disk tier), so campaign workers boot
  processes by COW-cloning a frozen post-load image instead of
  re-running the loader per spawn.

The determinism invariant (tested in ``tests/parallel/``): for any
campaign, ``--jobs N`` produces a bit-identical report to ``--jobs 1``.
Worker telemetry crosses the process boundary as
:class:`repro.telemetry.Snapshot` deltas and is merged in shard order.
"""

from .buildcache import (
    DEFAULT_MAX_ENTRIES,
    TOOLCHAIN_VERSION,
    BuildCache,
    build_cache,
    reset_build_cache,
    toolchain_fingerprint,
)
from .executor import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    ShardOutcome,
    run_shards,
)
from .sharding import (
    JOBS_ENV_VAR,
    MAX_SHARD_SEEDS,
    TARGET_SHARDS,
    Shard,
    add_jobs_argument,
    add_shard_retries_argument,
    default_jobs,
    plan_shards,
    resolve_jobs,
    resolve_shard_retries,
    shard_size_for,
)
from .snapcache import (
    DEFAULT_MAX_IMAGES,
    SnapshotCache,
    directory_stats,
    image_cache,
    reset_image_cache,
)

__all__ = [
    "BuildCache", "build_cache", "reset_build_cache",
    "toolchain_fingerprint", "TOOLCHAIN_VERSION", "DEFAULT_MAX_ENTRIES",
    "SnapshotCache", "image_cache", "reset_image_cache",
    "directory_stats", "DEFAULT_MAX_IMAGES",
    "ShardOutcome", "run_shards",
    "STATUS_OK", "STATUS_FAILED", "STATUS_SKIPPED",
    "Shard", "plan_shards", "shard_size_for",
    "add_jobs_argument", "add_shard_retries_argument",
    "default_jobs", "resolve_jobs", "resolve_shard_retries",
    "JOBS_ENV_VAR", "TARGET_SHARDS", "MAX_SHARD_SEEDS",
]
