"""Crash-tolerant process-pool execution of campaign shards.

:func:`run_shards` drives a :class:`~concurrent.futures.ProcessPoolExecutor`
with three properties the campaigns rely on:

* **Bounded in-flight work** — at most ``2 × jobs`` shards are submitted
  at a time, so a huge campaign never materialises its whole work list
  in the pool's call queue (and deadline checks stay responsive).
* **No silent loss** — a shard whose worker crashes (the pool breaks),
  raises, or exceeds ``timeout`` seconds is re-queued exactly once; a
  second failure produces a ``failed`` outcome carrying the error, so
  every planned shard is accounted for in the result list.  A crashed
  pool is rebuilt and the remaining work continues.
* **Attributable blame** — a dead worker breaks the whole pool, which
  says nothing about *which* in-flight shard crashed it.  Rather than
  spend every bystander's retry on someone else's crash, an
  unattributable break refunds all the affected attempts and drops the
  executor into isolation (one shard in flight at a time) for the rest
  of the call; a crash in isolation is unambiguous and is charged to
  the one shard that caused it.
* **Canonical ordering** — results are returned sorted by shard index
  regardless of completion order; combined with the jobs-independent
  partition from :mod:`repro.parallel.sharding`, merging them in list
  order reproduces the serial campaign bit for bit.

Workers must be module-level functions (picklable by reference) with
the signature ``worker(config, seeds, attempt)`` returning a JSON-able
payload.  ``attempt`` is 1 on the first try and 2 on the re-queue, so
fault-injection tests can crash deterministically on one attempt only.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .sharding import Shard

#: Statuses a shard outcome can carry.
STATUS_OK = "ok"
STATUS_FAILED = "failed"  #: infra failure after the retry was spent
STATUS_SKIPPED = "skipped"  #: never started (campaign deadline hit)


@dataclass
class ShardOutcome:
    """Terminal state of one shard."""

    shard: Shard
    status: str = STATUS_OK
    value: Any = None
    attempts: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class _InFlight:
    shard: Shard
    started: float
    future: Future = field(repr=False, default=None)  # type: ignore[assignment]


def run_shards(
    worker: Callable[..., Any],
    config: Dict[str, Any],
    shards: Sequence[Shard],
    *,
    jobs: int,
    retries: int = 1,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    on_result: Optional[Callable[[ShardOutcome], None]] = None,
) -> Tuple[List[ShardOutcome], bool]:
    """Run ``worker(config, shard.seeds, attempt)`` over every shard.

    Returns ``(outcomes, timed_out)`` with one outcome per input shard,
    sorted by shard index.  ``retries`` is the number of re-queues a
    shard gets after a crash/timeout/exception before it is reported as
    ``failed``.  ``deadline`` (seconds of wall clock for the whole call)
    stops *submitting* new shards once exceeded — in-flight shards are
    allowed to finish, unstarted ones come back ``skipped`` so the
    caller can surface them as resumable.  ``on_result`` fires in
    completion order as each shard reaches a terminal state.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    pending: List[Shard] = sorted(shards, key=lambda shard: shard.index)
    attempts: Dict[int, int] = {shard.index: 0 for shard in pending}
    outcomes: Dict[int, ShardOutcome] = {}
    in_flight: Dict[Future, _InFlight] = {}
    started = time.monotonic()
    timed_out = False
    isolated = False  #: one shard in flight at a time (post-crash mode)
    executor = ProcessPoolExecutor(max_workers=jobs)

    def finish(outcome: ShardOutcome) -> None:
        outcomes[outcome.shard.index] = outcome
        if on_result is not None:
            on_result(outcome)

    def settle_failure(shard: Shard, error: str) -> None:
        """Re-queue ``shard`` if it has retry budget left, else fail it."""
        if attempts[shard.index] <= retries:
            pending.insert(0, shard)
        else:
            finish(ShardOutcome(
                shard, status=STATUS_FAILED,
                attempts=attempts[shard.index], error=error,
            ))

    def refund(shard: Shard) -> None:
        """Re-queue ``shard`` without spending its attempt (bystander)."""
        attempts[shard.index] -= 1
        pending.insert(0, shard)

    def rebuild_pool() -> None:
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        executor = ProcessPoolExecutor(max_workers=jobs)

    def kill_pool() -> None:
        """Terminate worker processes outright (stuck shard)."""
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        rebuild_pool()

    try:
        while pending or in_flight:
            if (
                deadline is not None
                and time.monotonic() - started > deadline
                and pending
            ):
                timed_out = True
                for shard in pending:
                    finish(ShardOutcome(
                        shard, status=STATUS_SKIPPED,
                        attempts=attempts[shard.index],
                        error="campaign deadline exceeded before start",
                    ))
                pending = []
                if not in_flight:
                    break
            while pending and len(in_flight) < (1 if isolated else 2 * jobs):
                shard = pending.pop(0)
                attempts[shard.index] += 1
                entry = _InFlight(shard, time.monotonic())
                try:
                    entry.future = executor.submit(
                        worker, config, shard.seeds, attempts[shard.index]
                    )
                except BrokenProcessPool:
                    rebuild_pool()
                    settle_failure(shard, "process pool broke on submit")
                    continue
                in_flight[entry.future] = entry
            if not in_flight:
                continue

            wait_budget = 0.25 if (deadline is not None or timeout is not None) else None
            done, _ = wait(
                set(in_flight), timeout=wait_budget,
                return_when=FIRST_COMPLETED,
            )
            broken: List[_InFlight] = []
            for future in done:
                entry = in_flight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # The worker process died (killed, segfault, hard
                    # exit).  Blame is settled after the batch: the
                    # break marks every sibling future broken too, so
                    # this entry alone doesn't identify the culprit.
                    broken.append(entry)
                except BaseException as error:  # worker raised
                    settle_failure(entry.shard, repr(error))
                else:
                    finish(ShardOutcome(
                        entry.shard, status=STATUS_OK, value=value,
                        attempts=attempts[entry.shard.index],
                    ))
            if broken:
                # Everything still in flight rode the same dead pool:
                # those futures will never complete either.
                affected = broken + list(in_flight.values())
                in_flight.clear()
                rebuild_pool()
                if len(affected) == 1:
                    # Exactly one shard was riding the pool — the crash
                    # is attributable, spend its attempt.
                    settle_failure(
                        affected[0].shard,
                        "worker process crashed (pool broke)",
                    )
                else:
                    # Ambiguous blame: refund every bystander's attempt
                    # and re-run one shard at a time, where the next
                    # crash points at exactly one culprit.
                    isolated = True
                    for entry in reversed(affected):
                        refund(entry.shard)
            if not done and timeout is not None:
                now = time.monotonic()
                stuck = {
                    entry.future: entry for entry in in_flight.values()
                    if now - entry.started > timeout
                }
                if stuck:
                    # Running futures cannot be cancelled; kill the
                    # workers.  Only the overdue shards are charged —
                    # their siblings died as bystanders and are
                    # re-queued with their attempt refunded.
                    lost = list(in_flight.values())
                    in_flight.clear()
                    kill_pool()
                    for entry in lost:
                        if entry.future in stuck:
                            settle_failure(
                                entry.shard,
                                f"shard exceeded {timeout:.1f}s worker timeout",
                            )
                        else:
                            refund(entry.shard)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    ordered = [outcomes[index] for index in sorted(outcomes)]
    return ordered, timed_out
