"""Content-addressed cache of compiled (and rewritten) program images.

Campaigns rebuild the same program over and over: a conformance check
compiles one source once per scheme *per interpreter path*, a chaos case
builds its program twice (reference + faulted twin), and a shrinking
loop re-checks dozens of near-identical candidates.  Compilation is
deterministic — same source, same scheme, same toolchain ⇒ the same
image bit for bit — so those rebuilds are pure waste.

:class:`BuildCache` keys a finished :class:`~repro.binfmt.elf.Binary`
by ``sha256(source ‖ scheme-toolchain-fingerprint ‖ name)``.  The
fingerprint covers everything that can change the produced image: the
compiler pass, link mode, rewrite stage, the DBI multiplier, and a
global :data:`TOOLCHAIN_VERSION` bumped whenever the toolchain itself
changes incompatibly.  Mutation-kill self-checks monkeypatch live
compiler/rewriter code, which is exactly a toolchain change the
fingerprint cannot see — so :func:`repro.fuzz.mutants.planted` clears
the cache on entry and exit.

Hits hand out ``Binary.clone()`` copies (fresh function objects), so a
caller instrumenting or mutating its binary can never poison the
cached pristine image.  The cache is per-process, LRU-bounded, and its
hit/miss/eviction counters feed the telemetry registry
(``build_cache_*_total``) plus :meth:`BuildCache.stats` for the
benchmark gate and the nightly cache-stats artifact.

Environment knobs: ``REPRO_BUILD_CACHE=0`` disables the cache
entirely; ``REPRO_BUILD_CACHE_SIZE`` overrides the entry bound.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Callable, Dict, Optional

from .. import telemetry

#: Bump when the compiler/rewriter toolchain changes in a way the
#: :class:`SchemeSpec` fields cannot express (new codegen, new pass
#: ordering, ...).  Part of every cache key.
TOOLCHAIN_VERSION = 1

#: Default LRU bound (entries, not bytes: images are small ASTs).
DEFAULT_MAX_ENTRIES = 256

_ENABLE_ENV = "REPRO_BUILD_CACHE"
_SIZE_ENV = "REPRO_BUILD_CACHE_SIZE"


def toolchain_fingerprint(spec) -> str:
    """Stable digest of everything in a scheme spec that shapes the image.

    ``spec`` is a :class:`repro.core.deploy.SchemeSpec` (passed in, not
    imported, to keep this module free of the deploy layer).  The
    runtime factory is deliberately excluded: runtimes act at deploy
    time and never change the built image.
    """
    description = {
        "toolchain_version": TOOLCHAIN_VERSION,
        "scheme": spec.name,
        "pass": spec.pass_name,
        "static_link": spec.static_link,
        "dbi_multiplier": spec.dbi_multiplier,
        "rewrite": getattr(spec.rewrite, "__qualname__", None),
    }
    blob = json.dumps(description, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class BuildCache:
    """LRU cache of built binaries, content-addressed by build inputs."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is None:
            max_entries = int(os.environ.get(_SIZE_ENV, DEFAULT_MAX_ENTRIES))
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.enabled = os.environ.get(_ENABLE_ENV, "1") != "0"
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keying ----------------------------------------------------------

    @staticmethod
    def key_for(source: str, spec, name: str) -> str:
        """The content address of one build request."""
        digest = hashlib.sha256()
        digest.update(source.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(toolchain_fingerprint(spec).encode("ascii"))
        digest.update(b"\x00")
        digest.update(name.encode("utf-8"))
        return digest.hexdigest()

    # -- lookup ----------------------------------------------------------

    def get_or_build(self, source: str, spec, name: str, builder: Callable[[], object]):
        """Return a private copy of the image for this build request.

        On a miss ``builder()`` compiles the image, which is stored
        pristine; both hit and miss hand back ``Binary.clone()`` copies
        so no caller ever holds (or can mutate) the cached object.
        """
        key = self.key_for(source, spec, name)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            telemetry.count(
                "build_cache_hits_total", help="build cache hits"
            )
            return cached.clone()
        self.misses += 1
        telemetry.count("build_cache_misses_total", help="build cache misses")
        binary = builder()
        self._entries[key] = binary.clone()
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.count(
                "build_cache_evictions_total", help="build cache LRU evictions"
            )
        return binary

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (the toolchain changed under us)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Plain-data counters for gates and artifacts."""
        lookups = self.hits + self.misses
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


#: The per-process cache consulted by :func:`repro.core.deploy.build`.
_DEFAULT: Optional[BuildCache] = None


def build_cache() -> BuildCache:
    """The process-wide build cache (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BuildCache()
    return _DEFAULT


def reset_build_cache() -> BuildCache:
    """Replace the process-wide cache (tests; env-knob re-reads)."""
    global _DEFAULT
    _DEFAULT = BuildCache()
    return _DEFAULT
