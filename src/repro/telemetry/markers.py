"""Canary group-leader detection from instruction provenance notes.

Protection passes tag every instruction they emit with a ``note``
("pssp-prologue", "dcr-epilogue", ...).  Telemetry counts *dynamic*
prologue stores and epilogue checks, but instrumenting every tagged
instruction would (a) cost fast-path time on each of the 4-15
instructions per region and (b) over-count regions that mix several
notes (the hardened NT prologue interleaves "pssp-nt-hardened",
"…-hardened-c0", "…-fallback", "…-fallback-c0" in one region; the
binary rewriter splices "pssp-binary-prologue" into an "ssp-prologue"
region).

So each maximal run of same-group tagged instructions is one *region*
and only its first instruction — the **group leader** — is counted.
Every scheme enters its regions from the top (internal retry loops jump
back *past* the leader), so the leader executes exactly once per dynamic
prologue/epilogue, and both interpreter paths count the same leaders:
the fast path wraps the leader's step closure at decode time, the slow
path consults the same map per function.  That shared map is what makes
the fast/slow canary counters bit-identical by construction.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: note -> (category, region group).  A new region starts whenever the
#: (category, group) pair changes between adjacent instructions; notes
#: rewritten into a host scheme's region (pssp-binary, the inline
#: ablation) share the host's group so the splice stays one region.
NOTE_GROUPS: Dict[str, Tuple[str, str]] = {
    # prologues -----------------------------------------------------------
    "ssp-prologue": ("prologue", "ssp"),
    "pssp-binary-prologue": ("prologue", "ssp"),
    "inline-prologue": ("prologue", "ssp"),
    "pssp-prologue": ("prologue", "pssp"),
    "pssp-nt-prologue": ("prologue", "pssp-nt"),
    "pssp-nt-hardened": ("prologue", "pssp-nt-hardened"),
    "pssp-nt-hardened-c0": ("prologue", "pssp-nt-hardened"),
    "pssp-nt-fallback": ("prologue", "pssp-nt-hardened"),
    "pssp-nt-fallback-c0": ("prologue", "pssp-nt-hardened"),
    "pssp-lv-prologue": ("prologue", "pssp-lv"),
    "pssp-owf-prologue": ("prologue", "pssp-owf"),
    "dynaguard-prologue": ("prologue", "dynaguard"),
    "dcr-prologue": ("prologue", "dcr"),
    # epilogues -----------------------------------------------------------
    "ssp-epilogue": ("epilogue", "ssp"),
    "pssp-binary-epilogue": ("epilogue", "ssp"),
    "inline-epilogue": ("epilogue", "ssp"),
    "pssp-epilogue": ("epilogue", "pssp"),
    "pssp-lv-epilogue": ("epilogue", "pssp-lv"),
    "pssp-lv-postwrite": ("epilogue", "pssp-lv-postwrite"),
    "pssp-owf-epilogue": ("epilogue", "pssp-owf"),
    "dynaguard-epilogue": ("epilogue", "dynaguard"),
    "dcr-epilogue": ("epilogue", "dcr"),
}

PROLOGUE_NOTES = frozenset(
    note for note, (category, _) in NOTE_GROUPS.items() if category == "prologue"
)
EPILOGUE_NOTES = frozenset(
    note for note, (category, _) in NOTE_GROUPS.items() if category == "epilogue"
)


def canary_markers(function) -> Dict[int, str]:
    """Map group-leader indices to ``"prologue"`` / ``"epilogue"``.

    ``function`` needs only a ``body`` of instructions carrying ``note``
    attributes (duck-typed so rewritten clones work too).
    """
    markers: Dict[int, str] = {}
    previous: Tuple[str, str] = ("", "")
    for index, instruction in enumerate(function.body):
        entry = NOTE_GROUPS.get(getattr(instruction, "note", ""))
        if entry is None:
            previous = ("", "")
            continue
        if entry != previous:
            markers[index] = entry[0]
        previous = entry
    return markers
