"""Per-function cycle attribution from the fast path's batch accounting.

The fast loop already tracks cycles in a local accumulator and breaks
out of its inner step walk exactly when control leaves the current
function — so function-switch boundaries are natural, free attribution
points.  A :class:`Profiler` attached to ``cpu.profiler`` receives one
``enter`` per switch (and a final ``close``), records a *segment*
``(function, start_cycle, end_cycle)``, and aggregates per-function
totals.  Cost when attached: one closure call per function switch; cost
when not attached: a single ``is not None`` check per switch.  The slow
oracle path feeds the same callbacks, so attribution is path-agnostic.

Native helper cycles charged inside a SYNC step are attributed to the
*calling* function's segment (the accumulator resync lands there) —
matching how a sampling profiler attributes leaf libc time to callers.

Export formats:

* :meth:`Profiler.attribution` — per-function cycles/segments table;
* :meth:`Profiler.chrome_trace` — Chrome trace-event JSON ("X" complete
  events, microsecond timestamps derived from the simulated clock) for
  ``chrome://tracing`` / Perfetto.

Simulated-time conversion uses the single clock constant
:data:`repro.harness.metrics.CLOCK_HZ` (imported lazily to keep the
machine → telemetry import path free of the harness layer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _clock_hz() -> float:
    from ..harness.metrics import CLOCK_HZ

    return CLOCK_HZ


def cycles_to_us(cycles: float) -> float:
    """Simulated cycles → trace-event microseconds (``CLOCK_HZ`` scaled)."""
    return cycles * 1e6 / _clock_hz()


def chrome_trace_container(
    trace_events: List[Dict[str, object]],
    other: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The Chrome trace-event JSON envelope every exporter shares.

    Both the profiler and the fleet tracer emit through this, so a
    ``--trace-out`` file and a ``repro profile --out`` file are the same
    dialect: ``traceEvents`` object form, millisecond display unit, and
    the cycle↔seconds conversion recorded in ``otherData``.
    """
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_hz": _clock_hz(), **(other or {})},
    }


class Profiler:
    """Collects function segments from a CPU's run loops."""

    __slots__ = ("segments", "totals", "_open_name", "_open_start")

    def __init__(self) -> None:
        #: Closed segments: (function, start_cycle, end_cycle).
        self.segments: List[Tuple[str, float, float]] = []
        #: Aggregate cycles per function.
        self.totals: Dict[str, float] = {}
        self._open_name: Optional[str] = None
        self._open_start = 0.0

    # -- CPU-facing callbacks -------------------------------------------

    def enter(self, name: str, cycle: float) -> None:
        """Control entered ``name`` at ``cycle``; closes the open segment."""
        if self._open_name is not None:
            self._close_segment(cycle)
        self._open_name = name
        self._open_start = cycle

    def close(self, cycle: float) -> None:
        """Run loop unwound (return, fault, or limit) at ``cycle``."""
        if self._open_name is not None:
            self._close_segment(cycle)
            self._open_name = None

    def _close_segment(self, cycle: float) -> None:
        name = self._open_name
        assert name is not None
        self.segments.append((name, self._open_start, cycle))
        self.totals[name] = self.totals.get(name, 0.0) + (cycle - self._open_start)

    # -- reports ---------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return sum(end - start for _, start, end in self.segments)

    def attribution(self) -> List[Dict[str, object]]:
        """Per-function rows, hottest first."""
        counts: Dict[str, int] = {}
        for name, _, _ in self.segments:
            counts[name] = counts.get(name, 0) + 1
        total = self.total_cycles or 1.0
        clock = _clock_hz()
        return [
            {
                "function": name,
                "cycles": cycles,
                "segments": counts[name],
                "percent": cycles / total * 100.0,
                "seconds": cycles / clock,
            }
            for name, cycles in sorted(
                self.totals.items(), key=lambda item: -item[1]
            )
        ]

    def chrome_trace(
        self, *, pid: int = 1, tid: int = 1, process_name: str = "repro"
    ) -> Dict[str, object]:
        """Chrome trace-event JSON (the ``traceEvents`` object form).

        Timestamps are microseconds of simulated time:
        ``ts = cycles / CLOCK_HZ * 1e6``.
        """
        scale = 1e6 / _clock_hz()
        trace_events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": process_name},
            }
        ]
        for name, start, end in self.segments:
            trace_events.append(
                {
                    "name": name,
                    "cat": "simulated",
                    "ph": "X",
                    "ts": start * scale,
                    "dur": (end - start) * scale,
                    "pid": pid,
                    "tid": tid,
                }
            )
        return chrome_trace_container(
            trace_events, {"total_cycles": self.total_cycles}
        )

    def render(self, limit: int = 20) -> str:
        """Terminal attribution table."""
        rows = self.attribution()
        lines = [
            f"{'function':24s} {'cycles':>14s} {'segments':>9s} "
            f"{'%':>6s} {'sim time':>10s}"
        ]
        for row in rows[:limit]:
            lines.append(
                f"{str(row['function']):24s} {row['cycles']:>14,.0f} "
                f"{row['segments']:>9d} {row['percent']:>5.1f}% "
                f"{row['seconds'] * 1e6:>8.2f}us"
            )
        if len(rows) > limit:
            lines.append(f"... {len(rows) - limit} more function(s)")
        lines.append(
            f"{'total':24s} {self.total_cycles:>14,.0f} "
            f"{len(self.segments):>9d} {100.0:>5.1f}% "
            f"{self.total_cycles / _clock_hz() * 1e6:>8.2f}us"
        )
        return "\n".join(lines)
