"""Zero-slowdown telemetry plane (counters, events, canary tracing).

Public surface:

* :func:`registry` / :class:`Registry` — the process-wide instrument
  registry (:mod:`repro.telemetry.registry`).
* :func:`ring` / :class:`EventRing` — the canary lifecycle event stream
  (:mod:`repro.telemetry.events`).
* :func:`canary_markers` — shared group-leader map both interpreter
  paths count from (:mod:`repro.telemetry.markers`).
* Recording helpers (:func:`count`, :func:`observe`, :func:`event`,
  :func:`machine_flush`, :func:`canary_hooks`) — every one is a no-op
  when telemetry is disabled, and none is ever called per instruction
  on the fast path: the CPU flushes batched totals at run boundaries
  and only decode-time canary group leaders carry a wrapped step.

The profiler lives in :mod:`repro.telemetry.profile`; it is imported
lazily (by the CLI and tests) because it pulls in the harness layer,
which would otherwise create an import cycle with the machine package.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .events import EVENT_KINDS, Event, EventRing, ring
from .markers import EPILOGUE_NOTES, NOTE_GROUPS, PROLOGUE_NOTES, canary_markers
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Snapshot,
    SpanTimer,
    registry,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "Registry", "Snapshot", "SpanTimer",
    "Event", "EventRing", "EVENT_KINDS", "DEFAULT_BUCKETS",
    "NOTE_GROUPS", "PROLOGUE_NOTES", "EPILOGUE_NOTES", "canary_markers",
    "registry", "ring", "enabled", "enable", "disable", "generation",
    "reset", "snapshot", "delta", "absorb", "count", "observe", "event",
    "sampled_event", "counter_value", "machine_flush", "jit_flush",
    "canary_hooks", "CanaryHooks",
]

#: Run-cycle histogram buckets (simulated cycles per run-loop entry).
RUN_CYCLE_BUCKETS: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


# ---------------------------------------------------------------------------
# global state helpers
# ---------------------------------------------------------------------------

def enabled() -> bool:
    return registry().enabled


def enable() -> None:
    registry().enable()


def disable() -> None:
    registry().disable()


def generation() -> int:
    """Registry state generation (decode caches key off this)."""
    return registry().generation


def reset() -> None:
    """Zero every instrument and clear the event ring."""
    registry().reset()
    ring().clear()


def snapshot() -> Dict[str, object]:
    return registry().snapshot()


def delta(before: Dict[str, object]) -> Dict[str, object]:
    return registry().delta(before)


def absorb(worker_delta: "Snapshot | Dict[str, object]") -> None:
    """Fold a worker process's counter/histogram delta into this registry."""
    if not isinstance(worker_delta, Snapshot):
        worker_delta = Snapshot(worker_delta)
    registry().absorb(worker_delta)


# ---------------------------------------------------------------------------
# cold-path recording helpers (kernel, devices, faults, libc, campaigns)
# ---------------------------------------------------------------------------

def count(name: str, delta: float = 1, help: str = "") -> None:
    """Increment a counter; no-op while telemetry is disabled."""
    reg = registry()
    if reg.enabled:
        reg.counter(name, help).add(delta)


def observe(
    name: str,
    value: float,
    bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    help: str = "",
) -> None:
    """Observe a histogram sample; no-op while telemetry is disabled."""
    reg = registry()
    if reg.enabled:
        reg.histogram(name, bounds, help).observe(value)


def event(kind: str, **fields: object) -> None:
    """Record a rare lifecycle event (unconditional when enabled)."""
    if registry().enabled:
        ring().emit(kind, **fields)


def sampled_event(kind: str, **fields: object) -> None:
    """Record a high-frequency lifecycle event through the sampler."""
    if registry().enabled:
        ring().emit_sampled(kind, **fields)


def counter_value(name: str) -> float:
    """Current scalar value of a counter/gauge (0 when unregistered).

    A read, never a registration — the fleet tracer polls canary
    counters between requests with this, and an untraced run must not
    grow instruments it would otherwise never create.
    """
    return registry().value(name)


# ---------------------------------------------------------------------------
# machine hooks: batch-boundary flush + canary group-leader counting
# ---------------------------------------------------------------------------

class _MachineCounters:
    """Bound instrument references for the CPU's batch-boundary flush."""

    __slots__ = ("instructions", "cycles", "runs", "run_cycles")

    def __init__(self, reg: Registry) -> None:
        self.instructions = reg.counter(
            "machine_instructions_total", "instructions retired (both paths)"
        )
        self.cycles = reg.counter(
            "machine_cycles_total", "simulated cycles charged (DBI-scaled)"
        )
        self.runs = reg.counter(
            "machine_run_loops_total", "run-loop entries (calls, resumes)"
        )
        self.run_cycles = reg.histogram(
            "machine_run_cycles", RUN_CYCLE_BUCKETS,
            "simulated cycles per run-loop entry",
        )


_machine_cache: Tuple[int, Optional[_MachineCounters]] = (-1, None)


def _machine() -> Optional[_MachineCounters]:
    global _machine_cache
    reg = registry()
    cached_generation, cached = _machine_cache
    if cached_generation == reg.generation:
        return cached
    counters = _MachineCounters(reg) if reg.enabled else None
    _machine_cache = (reg.generation, counters)
    return counters


def machine_flush(cycles: float, instructions: int) -> None:
    """Flush one run loop's batched accounting into the registry.

    Called once per ``CPU._run_loop`` return — never per instruction —
    with the exact deltas the loop already computed for its own batched
    accounting, so telemetry-on and telemetry-off runs report identical
    ``CPU.cycles`` / ``instructions_executed``.
    """
    counters = _machine()
    if counters is None:
        return
    counters.instructions.value += instructions
    counters.cycles.value += cycles
    counters.runs.value += 1
    counters.run_cycles.observe(cycles)


class _JitCounters:
    """Bound instrument references for the fast loop's JIT flush."""

    __slots__ = ("entries", "side_exits")

    def __init__(self, reg: Registry) -> None:
        self.entries = reg.counter(
            "jit_block_entries_total", "superblock executions (JIT tier)"
        )
        self.side_exits = reg.counter(
            "jit_side_exits_total",
            "superblock side-exits into the generic step loop",
        )


_jit_cache: Tuple[int, Optional[_JitCounters]] = (-1, None)


def _jit() -> Optional[_JitCounters]:
    global _jit_cache
    reg = registry()
    cached_generation, cached = _jit_cache
    if cached_generation == reg.generation:
        return cached
    counters = _JitCounters(reg) if reg.enabled else None
    _jit_cache = (reg.generation, counters)
    return counters


def jit_flush(entries: int, side_exits: int) -> None:
    """Flush one run loop's batched JIT dispatch counts.

    Mirrors :func:`machine_flush`: called once per ``CPU._run_loop``
    return (and only when at least one superblock ran), never per
    block entry.
    """
    counters = _jit()
    if counters is None:
        return
    counters.entries.value += entries
    counters.side_exits.value += side_exits


class CanaryHooks:
    """Group-leader counting shared by both interpreter paths.

    The decoder calls :meth:`wrap` on leader steps (fast path: one extra
    closure on the handful of canary leaders, nothing on any other
    step); the slow loop calls :meth:`hit` when stepping onto a leader
    index.  Both funnel into the same two counters, so the paths agree
    exactly by construction.
    """

    __slots__ = ("prologues", "epilogues", "_ring")

    def __init__(self, reg: Registry) -> None:
        self.prologues = reg.counter(
            "canary_prologue_stores_total",
            "canary prologue regions executed (group leaders)",
        )
        self.epilogues = reg.counter(
            "canary_epilogue_checks_total",
            "canary epilogue checks executed (group leaders)",
        )
        self._ring = ring()

    def wrap(self, execute, marker: str, function: str, index: int):
        """Wrap a leader step closure with its counter bump."""
        counter = self.prologues if marker == "prologue" else self.epilogues
        event_kind = (
            "prologue-store" if marker == "prologue" else "epilogue-check"
        )
        event_ring = self._ring

        def counted() -> None:
            counter.value += 1
            if event_ring.sample_every > 0:
                event_ring.emit_sampled(
                    event_kind, function=function, index=index
                )
            execute()

        return counted

    def hit(self, marker: str, function: str, index: int) -> None:
        """Slow-path equivalent of an executed wrapped leader."""
        counter = self.prologues if marker == "prologue" else self.epilogues
        counter.value += 1
        if self._ring.sample_every > 0:
            self._ring.emit_sampled(
                "prologue-store" if marker == "prologue" else "epilogue-check",
                function=function,
                index=index,
            )


_hooks_cache: Tuple[int, Optional[CanaryHooks]] = (-1, None)


def canary_hooks() -> Optional[CanaryHooks]:
    """Current canary hooks, or ``None`` while telemetry is disabled."""
    global _hooks_cache
    reg = registry()
    cached_generation, cached = _hooks_cache
    if cached_generation == reg.generation:
        return cached
    hooks = CanaryHooks(reg) if reg.enabled else None
    _hooks_cache = (reg.generation, hooks)
    return hooks
