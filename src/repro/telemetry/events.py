"""Canary lifecycle event stream: a sampling-capable ring buffer.

The existing ``cpu.trace`` hook observes *every* step — and therefore
forces the slow interpreter loop.  This ring is the supported
alternative: rare lifecycle events (smash detection, degradation,
quarantine, shadow refresh, fork re-randomization) are recorded
unconditionally; high-frequency events (per-prologue stores, per-check
epilogues, rdrand draws) go through :meth:`EventRing.emit_sampled`,
which keeps every Nth occurrence.  Sampling defaults to **off**
(``sample_every = 0``) so the fast path pays only one attribute compare
per canary group leader; ``repro profile``/``repro stats`` and the
``--telemetry-out`` campaign flags turn it on for their run.

The buffer is a bounded ring: once ``capacity`` events are held, the
oldest is *overwritten in place* (an index wrap, never a list shift)
and counted in ``dropped`` — emission cost is O(1) regardless of
capacity and memory stays bounded no matter how long a campaign runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Canonical lifecycle event kinds (docs/observability.md lists these).
EVENT_KINDS = (
    "prologue-store",      # canary written into a frame (sampled)
    "epilogue-check",      # canary verified before return (sampled)
    "shadow-refresh",      # TLS shadow pair re-published
    "rdrand-draw",         # successful hardware entropy draw (sampled)
    "rdrand-retry",        # CF=0 draw absorbed by a retry loop
    "rdrand-quarantine",   # self-test quarantined the device
    "fork-rerandomize",    # child shadow pair refreshed after fork
    "smash-detected",      # __stack_chk_fail fired
    "degradation",         # fail-closed DegradedError surfaced
)


@dataclass
class Event:
    """One recorded lifecycle event."""

    seq: int
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        # The payload nests under "fields" so a field named "seq" or
        # "kind" can never shadow the envelope.
        return {"seq": self.seq, "kind": self.kind, "fields": dict(self.fields)}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Event":
        return cls(
            seq=int(data["seq"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            fields=dict(data.get("fields", {})),  # type: ignore[arg-type]
        )


class EventRing:
    """Bounded event buffer with optional 1-in-N sampling."""

    __slots__ = ("capacity", "sample_every", "dropped", "sampled_out",
                 "_buffer", "_head", "_next_seq", "_sample_counter")

    def __init__(self, capacity: int = 512, sample_every: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        #: 0 = high-frequency events skipped entirely; N>0 = keep 1-in-N.
        self.sample_every = sample_every
        self.dropped = 0
        self.sampled_out = 0
        self._buffer: List[Event] = []
        #: Index of the oldest held event once the buffer is full.
        self._head = 0
        self._next_seq = 0
        self._sample_counter = 0

    def emit(self, kind: str, /, **fields: object) -> None:
        """Record one event unconditionally (rare lifecycle events).

        ``kind`` is positional-only so a payload field may itself be
        named ``kind`` (it nests under ``fields`` in the JSON shape).
        """
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(Event(self._next_seq, kind, fields))
        else:
            head = self._head
            buffer[head] = Event(self._next_seq, kind, fields)
            head += 1
            self._head = 0 if head == self.capacity else head
            self.dropped += 1
        self._next_seq += 1

    def emit_sampled(self, kind: str, /, **fields: object) -> None:
        """Record every ``sample_every``-th call (high-frequency events)."""
        if self.sample_every <= 0:
            self.sampled_out += 1
            return
        self._sample_counter += 1
        if self._sample_counter % self.sample_every:
            self.sampled_out += 1
            return
        self.emit(kind, **fields)

    def clear(self) -> None:
        self._buffer.clear()
        self._head = 0
        self.dropped = 0
        self.sampled_out = 0
        self._next_seq = 0
        self._sample_counter = 0

    def events(self) -> List[Event]:
        """Held events, oldest first."""
        head = self._head
        if head == 0:
            return list(self._buffer)
        return self._buffer[head:] + self._buffer[:head]

    def to_json(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "events": [event.to_json() for event in self.events()],
        }


#: The process-wide default ring, shared with the default registry.
_DEFAULT = EventRing()


def ring() -> EventRing:
    """The process-wide default event ring."""
    return _DEFAULT
