"""Typed instrument registry: counters, gauges, histograms, span timers.

One process-wide :class:`Registry` (reachable via :func:`registry`) holds
every instrument by name.  Recording is designed around the interpreter
fast path's constraint: the hot loop never calls into this module per
instruction — subsystems accumulate locally (the CPU's batched
cycle/instruction accounting, the decode-time canary group leaders) and
flush aggregate deltas at batch boundaries.  Instruments therefore stay
plain Python objects with attribute arithmetic, no locks, no callbacks.

Instrument taxonomy (documented in docs/observability.md):

* :class:`Counter`   — monotonic; ``add`` rejects negative deltas.
* :class:`Gauge`     — last-write-wins level (``set``/``add``).
* :class:`Histogram` — fixed upper-bound buckets chosen at creation;
  ``observe`` is O(buckets) with no allocation.
* :class:`SpanTimer` — context manager observing durations into a
  histogram; the clock is pluggable so spans can measure host seconds
  (default) or simulated cycles.

Enable/disable is global and **generational**: every state flip bumps
``Registry.generation``, which the CPU's decode cache watches so stale
telemetry wrappers are re-decoded away instead of checked per step.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, Union

Number = Union[int, float]

#: Default histogram upper bounds: wide log-spaced cycle-ish buckets.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def add(self, delta: Number = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative add {delta!r}")
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A level that may move in either direction."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative exposition).

    ``bounds`` are ascending upper bounds; observations above the last
    bound land in the implicit +Inf bucket.
    """

    __slots__ = ("name", "help", "bounds", "counts", "total", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must ascend")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.total: float = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class SpanTimer:
    """Times a ``with`` block into a histogram via a pluggable clock."""

    __slots__ = ("histogram", "clock", "_start", "last")

    def __init__(
        self, histogram: Histogram, clock: Callable[[], float]
    ) -> None:
        self.histogram = histogram
        self.clock = clock
        self._start: Optional[float] = None
        #: Duration of the most recent completed span.
        self.last: Optional[float] = None

    def __enter__(self) -> "SpanTimer":
        self._start = self.clock()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.last = self.clock() - self._start
        self.histogram.observe(self.last)
        self._start = None


Instrument = Union[Counter, Gauge, Histogram]


class Registry:
    """All instruments of one process, plus the global enable switch."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self.enabled = True
        #: Bumped on every enable/disable/reset so decode-time telemetry
        #: wrappers (bound when a function was lowered) can be invalidated
        #: with one integer compare instead of per-step checks.
        self.generation = 0

    # -- instrument creation / lookup ------------------------------------

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"instrument {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds, help), "histogram")

    def span(
        self,
        name: str,
        *,
        clock: Optional[Callable[[], float]] = None,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> SpanTimer:
        return SpanTimer(
            self.histogram(name, bounds), clock or time.perf_counter
        )

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    # -- state -----------------------------------------------------------

    def enable(self) -> None:
        if not self.enabled:
            self.enabled = True
            self.generation += 1

    def disable(self) -> None:
        if self.enabled:
            self.enabled = False
            self.generation += 1

    def reset(self) -> None:
        """Zero every instrument (structure kept, values dropped)."""
        for instrument in self._instruments.values():
            instrument.reset()
        self.generation += 1

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def delta(self, before: Dict[str, object]) -> Dict[str, object]:
        """Difference of the current state against a prior snapshot.

        Counters/gauges subtract; histograms subtract counts and sums.
        Instruments created since ``before`` report their full value.
        """
        result: Dict[str, object] = {}
        for name, value in self.snapshot().items():
            prior = before.get(name)
            if isinstance(value, dict):
                prior_counts = prior["counts"] if isinstance(prior, dict) else None
                result[name] = {
                    "bounds": value["bounds"],
                    "counts": [
                        c - (prior_counts[i] if prior_counts else 0)
                        for i, c in enumerate(value["counts"])
                    ],
                    "sum": value["sum"]
                    - (prior["sum"] if isinstance(prior, dict) else 0.0),
                    "count": value["count"]
                    - (prior["count"] if isinstance(prior, dict) else 0),
                }
            else:
                result[name] = value - (prior if isinstance(prior, (int, float)) else 0)
        return result

    def to_json(self) -> Dict[str, object]:
        return {"enabled": self.enabled, "instruments": self.snapshot()}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters/gauges/histograms)."""
        lines: List[str] = []
        for instrument in self.instruments():
            name = instrument.name
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{bound:g}"}} {cumulative}'
                    )
                cumulative += instrument.counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {instrument.total:g}")
                lines.append(f"{name}_count {instrument.count}")
            else:
                lines.append(f"{name} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry (see module docstring).
_DEFAULT = Registry()


def registry() -> Registry:
    """The process-wide default registry."""
    return _DEFAULT
