"""Typed instrument registry: counters, gauges, histograms, span timers.

One process-wide :class:`Registry` (reachable via :func:`registry`) holds
every instrument by name.  Recording is designed around the interpreter
fast path's constraint: the hot loop never calls into this module per
instruction — subsystems accumulate locally (the CPU's batched
cycle/instruction accounting, the decode-time canary group leaders) and
flush aggregate deltas at batch boundaries.  Instruments therefore stay
plain Python objects with attribute arithmetic, no locks, no callbacks.

Instrument taxonomy (documented in docs/observability.md):

* :class:`Counter`   — monotonic; ``add`` rejects negative deltas.
* :class:`Gauge`     — last-write-wins level (``set``/``add``).
* :class:`Histogram` — fixed upper-bound buckets chosen at creation;
  ``observe`` is O(buckets) with no allocation.
* :class:`SpanTimer` — context manager observing durations into a
  histogram; the clock is pluggable so spans can measure host seconds
  (default) or simulated cycles.

Enable/disable is global and **generational**: every state flip bumps
``Registry.generation``, which the CPU's decode cache watches so stale
telemetry wrappers are re-decoded away instead of checked per step.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, Union

Number = Union[int, float]

#: Default histogram upper bounds: wide log-spaced cycle-ish buckets.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def add(self, delta: Number = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative add {delta!r}")
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A level that may move in either direction."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative exposition).

    ``bounds`` are ascending upper bounds; observations above the last
    bound land in the implicit +Inf bucket.
    """

    __slots__ = ("name", "help", "bounds", "counts", "total", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must ascend")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.total: float = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class SpanTimer:
    """Times a ``with`` block into a histogram via a pluggable clock."""

    __slots__ = ("histogram", "clock", "_start", "last")

    def __init__(
        self, histogram: Histogram, clock: Callable[[], float]
    ) -> None:
        self.histogram = histogram
        self.clock = clock
        self._start: Optional[float] = None
        #: Duration of the most recent completed span.
        self.last: Optional[float] = None

    def __enter__(self) -> "SpanTimer":
        self._start = self.clock()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.last = self.clock() - self._start
        self.histogram.observe(self.last)
        self._start = None


Instrument = Union[Counter, Gauge, Histogram]


class Snapshot:
    """A mergeable plain-data view of a registry's instruments.

    Wraps the ``name → value`` mapping produced by
    :meth:`Registry.snapshot` / :meth:`Registry.delta` (scalars for
    counters and gauges, ``{bounds, counts, sum, count}`` dicts for
    histograms) so per-worker telemetry can cross a process boundary as
    JSON and be aggregated in the parent.  :meth:`merge` is associative
    and has ``Snapshot()`` as its identity, which is what lets a
    sharded campaign fold worker deltas in canonical shard order and
    land on one deterministic aggregate regardless of completion order.
    """

    __slots__ = ("data",)

    def __init__(self, data: Optional[Dict[str, object]] = None) -> None:
        self.data: Dict[str, object] = dict(data or {})

    @classmethod
    def capture(cls, reg: Optional["Registry"] = None) -> "Snapshot":
        """Snapshot the given (default: process-wide) registry."""
        return cls((reg or _DEFAULT).snapshot())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Snapshot):
            return self.data == other.data
        return NotImplemented

    def __bool__(self) -> bool:
        return bool(self.data)

    @staticmethod
    def _merge_histograms(name: str, left: Dict, right: Dict) -> Dict:
        if list(left["bounds"]) != list(right["bounds"]):
            raise ValueError(
                f"histogram {name!r}: cannot merge differing bounds "
                f"{left['bounds']!r} vs {right['bounds']!r}"
            )
        return {
            "bounds": list(left["bounds"]),
            "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Return a new snapshot combining both sides.

        Counters and gauges add; histograms add counts/sum/count
        (bounds must agree); instruments present on one side only are
        carried over unchanged.  Mixing a scalar and a histogram under
        one name is a programming error and raises ``ValueError``.
        """
        merged: Dict[str, object] = {}
        for name in sorted(set(self.data) | set(other.data)):
            left, right = self.data.get(name), other.data.get(name)
            if left is None:
                merged[name] = right if not isinstance(right, dict) else dict(right)
            elif right is None:
                merged[name] = left if not isinstance(left, dict) else dict(left)
            elif isinstance(left, dict) and isinstance(right, dict):
                merged[name] = self._merge_histograms(name, left, right)
            elif isinstance(left, dict) or isinstance(right, dict):
                raise ValueError(
                    f"instrument {name!r}: scalar/histogram shape mismatch"
                )
            else:
                merged[name] = left + right
        return Snapshot(merged)

    def to_json(self) -> Dict[str, object]:
        return dict(self.data)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Snapshot":
        return cls(data)


class Registry:
    """All instruments of one process, plus the global enable switch."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self.enabled = True
        #: Bumped on every enable/disable/reset so decode-time telemetry
        #: wrappers (bound when a function was lowered) can be invalidated
        #: with one integer compare instead of per-step checks.
        self.generation = 0

    # -- instrument creation / lookup ------------------------------------

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"instrument {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds, help), "histogram")

    def span(
        self,
        name: str,
        *,
        clock: Optional[Callable[[], float]] = None,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> SpanTimer:
        return SpanTimer(
            self.histogram(name, bounds), clock or time.perf_counter
        )

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    def value(self, name: str) -> Number:
        """Current scalar value of a counter/gauge; 0 when unregistered.

        One dict lookup + attribute read — cheap enough for per-request
        polling (the fleet tracer attributes canary lifecycle counters to
        request spans this way), and never creates the instrument.
        """
        instrument = self._instruments.get(name)
        if instrument is None or isinstance(instrument, Histogram):
            return 0
        return instrument.value

    # -- state -----------------------------------------------------------

    def enable(self) -> None:
        if not self.enabled:
            self.enabled = True
            self.generation += 1

    def disable(self) -> None:
        if self.enabled:
            self.enabled = False
            self.generation += 1

    def reset(self) -> None:
        """Zero every instrument (structure kept, values dropped)."""
        for instrument in self._instruments.values():
            instrument.reset()
        self.generation += 1

    def absorb(self, snapshot: "Snapshot") -> None:
        """Fold a (merged) worker snapshot into this registry.

        The inverse of shipping :meth:`delta` across a process
        boundary: scalars add onto the existing instrument (a counter
        is created for unseen non-negative scalars, a gauge for
        negative ones, since the plain-data shape does not carry the
        kind), histograms add counts/sum/count bucket-wise.  No-op on
        the empty snapshot.
        """
        for name in sorted(snapshot.data):
            value = snapshot.data[name]
            if isinstance(value, dict):
                histogram = self.histogram(name, tuple(value["bounds"]))
                if list(histogram.bounds) != list(value["bounds"]):
                    raise ValueError(
                        f"histogram {name!r}: absorb bounds mismatch"
                    )
                for index, count in enumerate(value["counts"]):
                    histogram.counts[index] += count
                histogram.total += value["sum"]
                histogram.count += value["count"]
            elif name in self._instruments:
                self._instruments[name].add(value)
            elif value < 0:
                self.gauge(name).add(value)
            else:
                self.counter(name).add(value)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def delta(self, before: Dict[str, object]) -> Dict[str, object]:
        """Difference of the current state against a prior snapshot.

        Counters/gauges subtract; histograms subtract counts and sums.
        Instruments created since ``before`` report their full value.
        """
        result: Dict[str, object] = {}
        for name, value in self.snapshot().items():
            prior = before.get(name)
            if isinstance(value, dict):
                prior_counts = prior["counts"] if isinstance(prior, dict) else None
                result[name] = {
                    "bounds": value["bounds"],
                    "counts": [
                        c - (prior_counts[i] if prior_counts else 0)
                        for i, c in enumerate(value["counts"])
                    ],
                    "sum": value["sum"]
                    - (prior["sum"] if isinstance(prior, dict) else 0.0),
                    "count": value["count"]
                    - (prior["count"] if isinstance(prior, dict) else 0),
                }
            else:
                result[name] = value - (prior if isinstance(prior, (int, float)) else 0)
        return result

    def to_json(self) -> Dict[str, object]:
        return {"enabled": self.enabled, "instruments": self.snapshot()}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters/gauges/histograms).

        Every instrument gets a ``# HELP`` and a ``# TYPE`` line — a
        scrape-valid exposition even for instruments whose help text was
        lost crossing a process boundary (``absorb`` only ships values),
        which fall back to their own name.  Help text is escaped per the
        exposition format (backslash and newline).
        """
        lines: List[str] = []
        for instrument in self.instruments():
            name = instrument.name
            help_text = (instrument.help or name).replace(
                "\\", "\\\\"
            ).replace("\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{bound:g}"}} {cumulative}'
                    )
                cumulative += instrument.counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {instrument.total:g}")
                lines.append(f"{name}_count {instrument.count}")
            else:
                lines.append(f"{name} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry (see module docstring).
_DEFAULT = Registry()


def registry() -> Registry:
    """The process-wide default registry."""
    return _DEFAULT
