"""Runtime support objects for the P-SSP family.

A *runtime* is the part of a scheme that is not compiled into function
prologues/epilogues: preload constructors, fork/thread hooks, register or
TLS initialisation.  ``install(process)`` is invoked by the deployment
layer right after ``spawn`` — the moment the real constructors would run.
"""

from __future__ import annotations

from ..crypto.random import terminator_free_word
from ..kernel.process import Process
from ..libc.preload import PSSPPreload

#: Side-buffer capacity (entries) for the global-buffer variant.
GLOBAL_BUFFER_ENTRIES = 4096


class SchemeRuntime:
    """Base: no runtime support needed (SSP, P-SSP-NT, DCR-less builds)."""

    def install(self, process: Process) -> None:
        """Install hooks/initialisation on a freshly spawned process."""

    def reattach(self, process: Process) -> None:
        """Re-register hooks on a *restored* process.

        Unlike :meth:`install`, this must not draw entropy or touch
        memory/registers: a snapshot already contains every install-time
        side effect, and only the live hook callables (which cannot be
        serialized) need recreating.  The base scheme has no hooks.
        """

    def preload_binaries(self):
        """Simulated functions to interpose at load time."""
        return []


class PSSPRuntime(SchemeRuntime):
    """Adapter exposing :class:`PSSPPreload` through the runtime API."""

    def __init__(self, mode: str = "compiler") -> None:
        self.preload = PSSPPreload(mode)

    def install(self, process: Process) -> None:
        self.preload.install(process)

    def reattach(self, process: Process) -> None:
        self.preload.reattach(process)

    def preload_binaries(self):
        return self.preload.preload_binaries()


class HardenedNTRuntime(SchemeRuntime):
    """P-SSP-NT-hardened: keep the fallback shadow pair alive.

    The hardened prologue falls back onto the TLS shadow pair when its
    ``rdrand`` retry budget is exhausted, so this runtime maintains that
    pair exactly like compiler-mode P-SSP (constructor + fork/thread
    hooks).  It additionally runs a small ``rdrand`` self-test at install
    time: a device that cannot produce a few distinct words is
    quarantined up front, which turns per-prologue retry storms into a
    single recorded entropy-degraded event.
    """

    def __init__(self) -> None:
        self.preload = PSSPPreload("compiler")

    def install(self, process: Process) -> None:
        # Module-level call so chaos mutants can patch the policy surface.
        from ..faults import policy as fault_policy

        fault_policy.rdrand_selftest(process)
        self.preload.install(process)

    def reattach(self, process: Process) -> None:
        # No self-test re-run: the quarantine verdict is device state and
        # travels in the snapshot.
        self.preload.reattach(process)

    def preload_binaries(self):
        return self.preload.preload_binaries()


class RAFRuntime(SchemeRuntime):
    """RAF-SSP (Marco-Gisbert & Ripoll): renew the TLS canary after fork.

    Only the TLS copy is updated — inherited stack frames keep the old
    canary, so a child that returns through them aborts spuriously.  This
    is the correctness defect Table I records ("Correctness: No") and the
    caveat in the paper's §II-B motivates.
    """

    def on_fork(self, child: Process, parent: Process) -> None:
        child.tls.canary = terminator_free_word(child.entropy)

    def install(self, process: Process) -> None:
        process.fork_hooks.append(self.on_fork)

    #: Install draws no entropy and writes nothing — safe to replay.
    reattach = install


class OWFRuntime(SchemeRuntime):
    """P-SSP-OWF: park a random AES key in the reserved r12/r13 registers.

    The key is drawn once per program start; fork clones registers so
    children share it (their polymorphism comes from the rdtsc nonce),
    and threads inherit it explicitly.
    """

    def _set_key(self, context: Process, lo: int, hi: int) -> None:
        context.registers.write("r12", hi)
        context.registers.write("r13", lo)

    @staticmethod
    def _on_thread(thread: Process, parent: Process) -> None:
        thread.registers.write("r12", parent.registers.read("r12"))
        thread.registers.write("r13", parent.registers.read("r13"))

    def install(self, process: Process) -> None:
        lo = process.entropy.word(64)
        hi = process.entropy.word(64)
        self._set_key(process, lo, hi)
        process.thread_hooks.append(self._on_thread)

    def reattach(self, process: Process) -> None:
        # The key is already parked in the restored r12/r13.
        process.thread_hooks.append(self._on_thread)


class GlobalBufferRuntime(SchemeRuntime):
    """§VII-C variant: allocate the per-thread side buffer for C1 halves.

    Fork needs no hook — the buffer lives in ordinary process memory, so
    the kernel's address-space clone duplicates it, exactly the behaviour
    Figure 6 describes ("child processes clone their parent process'
    global buffer").
    """

    def _allocate(self, context: Process) -> None:
        base = context.brk
        context.brk += 8 * GLOBAL_BUFFER_ENTRIES
        tls = context.tls
        tls.global_buffer_base = base
        tls.global_buffer_count = 0

    def _on_thread(self, thread: Process, parent: Process) -> None:
        self._allocate(thread)

    def install(self, process: Process) -> None:
        self._allocate(process)
        process.thread_hooks.append(self._on_thread)

    def reattach(self, process: Process) -> None:
        # The process buffer (and its brk carve-out) is in the image.
        process.thread_hooks.append(self._on_thread)
