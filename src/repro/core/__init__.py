"""The paper's contribution: P-SSP and its extensions, plus baselines.

* :mod:`repro.core.rerandomize` — Algorithm 1 and its folded-32-bit form.
* :mod:`repro.core.schemes` — runtime support (preload hooks, key setup).
* :mod:`repro.core.baselines` — DynaGuard/DCR fork-time runtimes.
* :mod:`repro.core.deploy` — scheme registry; build + deploy pipelines.
"""

from .baselines import DCRRuntime, DynaGuardRuntime
from .deploy import SCHEMES, SchemeSpec, build, deploy, get_scheme, launch
from .rerandomize import (
    check_packed32,
    check_pair,
    fold32,
    re_randomize,
    re_randomize_packed32,
)
from .schemes import (
    GlobalBufferRuntime,
    OWFRuntime,
    PSSPRuntime,
    RAFRuntime,
    SchemeRuntime,
)

__all__ = [
    "DCRRuntime",
    "DynaGuardRuntime",
    "GlobalBufferRuntime",
    "OWFRuntime",
    "PSSPRuntime",
    "RAFRuntime",
    "SCHEMES",
    "SchemeRuntime",
    "SchemeSpec",
    "build",
    "check_packed32",
    "check_pair",
    "deploy",
    "fold32",
    "get_scheme",
    "launch",
    "re_randomize",
    "re_randomize_packed32",
]
