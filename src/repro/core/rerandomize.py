"""Algorithm 1: canary re-randomization — the heart of P-SSP.

    Re-Randomize(C):
        1. draw a fresh uniform C0 with ||C0|| = ||C||
        2. C1 = C0 ⊕ C
        3. return (C0, C1)

Properties (paper §III-B/C, Theorem 1):

* ``C0 ⊕ C1 == C`` always — the epilogue check.
* ``C0`` is independent of ``C``, so observing either half (or one half
  from each of many forks) yields zero information about ``C``.
* Each invocation's output pair is independent of every earlier pair.

The 32-bit folded variant serves the binary-instrumentation path, which
packs two 32-bit halves into the single canary word SSP already reserves
(§V-C): the 64-bit TLS canary is folded to 32 bits and split there.
"""

from __future__ import annotations

from typing import Tuple

from ..crypto.random import EntropySource


def re_randomize(entropy: EntropySource, canary: int, bits: int = 64) -> Tuple[int, int]:
    """Split ``canary`` into a fresh random pair (Algorithm 1)."""
    mask = (1 << bits) - 1
    c0 = entropy.word(bits)
    c1 = c0 ^ (canary & mask)
    return c0, c1


def fold32(canary: int) -> int:
    """Fold a 64-bit canary to the 32-bit challenge the rewriter uses."""
    return ((canary >> 32) ^ canary) & 0xFFFF_FFFF


def re_randomize_packed32(entropy: EntropySource, canary: int) -> int:
    """32-bit split packed into one 64-bit word: ``C0 | (C1 << 32)``.

    This is the TLS shadow-canary format of instrumentation-based P-SSP:
    the prologue's single ``mov`` copies the packed word onto the stack,
    preserving SSP's frame layout, and the modified ``__stack_chk_fail``
    verifies ``lo32 ⊕ hi32 == fold32(C)``.
    """
    c0, c1 = re_randomize(entropy, fold32(canary), bits=32)
    return (c0 & 0xFFFF_FFFF) | ((c1 & 0xFFFF_FFFF) << 32)


def check_pair(c0: int, c1: int, canary: int, bits: int = 64) -> bool:
    """Epilogue predicate: does the stack pair bind to the TLS canary?"""
    mask = (1 << bits) - 1
    return (c0 ^ c1) & mask == canary & mask


def check_packed32(packed: int, canary: int) -> bool:
    """Binary-path predicate over the packed 2×32-bit stack word."""
    lo = packed & 0xFFFF_FFFF
    hi = (packed >> 32) & 0xFFFF_FFFF
    return (lo ^ hi) == fold32(canary)
