"""Ablation variants of the paper's design choices.

These exist to *demonstrate why the paper's choices matter*, each paired
with a bench in ``benchmarks/``:

* :class:`NoNonceOWFPass` — P-SSP-OWF without the rdtsc nonce.  The paper
  warns (§IV-C) that omitting the nonce makes the canary a deterministic
  function of the return address, "subject to the byte-by-byte attack";
  the ablation bench shows exactly that.
* :func:`instrument_binary_inline` — the rewriter alternative the paper
  rejects: splice the full split-xor-compare into every epilogue instead
  of folding it into ``__stack_chk_fail``.  Semantically fine, but the
  epilogue grows, breaking address-layout preservation (functions must be
  relocated) and inflating code size — the bench quantifies it.
"""

from __future__ import annotations

from ..binfmt.elf import Binary
from ..compiler.passes.base import ProtectionPass
from ..compiler.passes.manager import available_passes, register_pass
from ..compiler.passes.pssp_owf import PSSPOWFPass
from ..isa.instructions import Imm, Label, Mem, Reg, Sym, ins
from ..machine.tls import CANARY_OFFSET, SHADOW_C0_OFFSET
from ..rewriter.matcher import find_epilogues, find_prologues
from ..rewriter.rewrite import RewriteError
from .deploy import SCHEMES, SchemeSpec
from .schemes import OWFRuntime, SchemeRuntime


class TlsHalfPass(ProtectionPass):
    """The §VII-C *rejected* design: keep C0 in the TLS, store only C1.

    "One might suggest to place C0 in the TLS as the TLS shadow canary
    and compute C1 in every function prologue so that only C1 is used as
    the stack canary. ... Unfortunately ... when the control flow of the
    child returns to its parent's code using stack frames created before
    forking, the parent's epilogue function does not have the proper TLS
    shadow canary (i.e. C0) to check and the program is doomed to crash."

    We implement it exactly to reproduce the crash the paper predicts —
    see ``tests/core/test_ablations.py``.
    """

    name = "pssp-tls-half"

    def canary_bytes(self, decl) -> int:
        return 8

    def emit_prologue(self, builder, plan) -> None:
        if not plan.protected:
            return
        note = "tls-half-prologue"
        slot = plan.canary_slots[0]
        # C1 = C0 (TLS shadow) ^ C — only C1 goes on the stack.
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C0_OFFSET),
                     note=note)
        builder.emit("xor", Reg("rax"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note=note)
        builder.emit("mov", Mem(base="rbp", disp=-slot), Reg("rax"), note=note)
        builder.emit("xor", Reg("rax"), Reg("rax"), note=note)

    def emit_epilogue_check(self, builder, plan) -> None:
        if not plan.protected:
            return
        note = "tls-half-epilogue"
        slot = plan.canary_slots[0]
        ok = builder.fresh("th_ok")
        builder.emit("mov", Reg("rdx"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=SHADOW_C0_OFFSET),
                     note=note)
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note=note)
        builder.emit("je", Label(ok), note=note)
        builder.emit("call", Sym("__stack_chk_fail"), note=note)
        builder.label(ok)


class TlsHalfRuntime(SchemeRuntime):
    """Runtime for the rejected variant: refresh the TLS C0 on fork.

    This is the step that dooms it: the child's new C0 no longer matches
    the C1 values sitting in frames inherited from the parent.
    """

    def _refresh(self, process) -> None:
        process.tls.shadow_c0 = process.entropy.word(64)

    def install(self, process) -> None:
        self._refresh(process)
        process.fork_hooks.append(lambda child, parent: self._refresh(child))


class NoNonceOWFPass(PSSPOWFPass):
    """P-SSP-OWF with the nonce zeroed: deliberately weakened.

    The stack canary degenerates to ``AES(key, 0 || ret)`` — fixed for a
    given call site across every fork, which restores the accumulation
    property the byte-by-byte attack needs.
    """

    name = "pssp-owf-nononce"

    def emit_prologue(self, builder, plan) -> None:
        if not plan.protected:
            return
        note = "owf-nononce-prologue"
        builder.emit("mov", Reg("rax"), Imm(0), note=note)  # no rdtsc!
        builder.emit("mov", Mem(base="rbp", disp=-plan.owf_nonce_offset),
                     Reg("rax"), note=note)
        self._emit_mac(builder, plan, note)
        builder.emit("movdqu", Mem(base="rbp", disp=-plan.owf_cipher_offset),
                     Reg("xmm15"), note=note)


def register_ablation_schemes() -> None:
    """Idempotently register the ablation passes and schemes."""
    from .schemes import PSSPRuntime

    if "pssp-owf-nononce" not in available_passes():
        register_pass("pssp-owf-nononce", NoNonceOWFPass)
    if "pssp-owf-nononce" not in SCHEMES:
        SCHEMES["pssp-owf-nononce"] = SchemeSpec(
            "pssp-owf-nononce", "pssp-owf-nononce", OWFRuntime
        )
    if "pssp-binary-inline" not in SCHEMES:
        SCHEMES["pssp-binary-inline"] = SchemeSpec(
            "pssp-binary-inline", "ssp", lambda: PSSPRuntime("binary"),
            rewrite=instrument_binary_inline,
        )
    if "pssp-tls-half" not in available_passes():
        register_pass("pssp-tls-half", TlsHalfPass)
    if "pssp-tls-half" not in SCHEMES:
        SCHEMES["pssp-tls-half"] = SchemeSpec(
            "pssp-tls-half", "pssp-tls-half", TlsHalfRuntime,
            fork_correct=False,  # the documented §VII-C rejection reason
        )


def instrument_binary_inline(binary: Binary, *, suffix: str = ".inline") -> Binary:
    """Rewrite SSP → P-SSP with the check inlined into every epilogue.

    Unlike :func:`repro.rewriter.rewrite.instrument_binary`, this variant
    makes no attempt at layout preservation: rewritten functions grow and
    would have to be relocated by a real tool.  Returns the instrumented
    binary; compare ``total_size()`` against the original to measure the
    inflation the paper's stub-folding trick avoids.
    """
    from ..machine.tls import SHADOW_C0_OFFSET

    result = binary.clone()
    result.name = binary.name + suffix
    result.protection = "pssp-binary-inline"
    for name, function in list(result.functions.items()):
        prologues = find_prologues(function)
        epilogues = find_epilogues(function)
        if not prologues or not epilogues:
            continue
        clone = function.copy()
        for match in prologues:
            destination = clone.body[match.index].operands[0]
            clone.body[match.index] = ins(
                "mov", destination, Mem(seg="fs", disp=SHADOW_C0_OFFSET),
                note="inline-prologue",
            )
        for match in sorted(epilogues, key=lambda m: m.load_index, reverse=True):
            load = clone.body[match.load_index]
            reg = load.operands[0]
            note = "inline-epilogue"
            # Full split-xor-fold-compare, inline (uses rcx/rsi as scratch).
            replacement = [
                ins("mov", Reg("rcx"), reg, note=note),
                ins("shr", Reg("rcx"), Imm(32), note=note),
                ins("shl", reg, Imm(32), note=note),
                ins("shr", reg, Imm(32), note=note),
                ins("xor", reg, Reg("rcx"), note=note),
                ins("mov", Reg("rcx"), Mem(seg="fs", disp=CANARY_OFFSET), note=note),
                ins("mov", Reg("rsi"), Reg("rcx"), note=note),
                ins("shr", Reg("rsi"), Imm(32), note=note),
                ins("xor", Reg("rcx"), Reg("rsi"), note=note),
                ins("shl", Reg("rcx"), Imm(32), note=note),
                ins("shr", Reg("rcx"), Imm(32), note=note),
                ins("cmp", reg, Reg("rcx"), note=note),
                ins("je", Label(match.ok_label), note=note),
                ins("call", Sym("__GI__fortify_fail"), note=note),
            ]
            old_span = match.call_index + 1 - match.xor_index
            clone.body[match.xor_index : match.call_index + 1] = replacement
            delta = len(replacement) - old_span
            for label_name, index in clone.labels.items():
                if index > match.xor_index:
                    clone.labels[label_name] = index + delta
        clone.protected = "pssp-binary-inline"
        result.functions[name] = clone
    if result.total_size() <= binary.total_size():
        raise RewriteError("inline variant unexpectedly failed to grow")
    return result
