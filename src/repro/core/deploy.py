"""Scheme registry and deployment: source → protected binary → process.

One :class:`SchemeSpec` per defence from the paper, covering how the
binary is *built* (compiler pass vs. static rewriting of an SSP build)
and how the process is *run* (preload/runtime hooks, PIN-style DBI).

========================  =======================  ==========================
scheme                    build                    runtime
========================  =======================  ==========================
``none``                  unprotected compile      —
``ssp``                   SSP pass                 —
``raf-ssp``               SSP pass                 TLS-canary renew on fork
``dynaguard``             DynaGuard pass           CAB walk on fork
``dynaguard-dbi``         SSP→DynaGuard under PIN  CAB walk + DBI multiplier
``dcr``                   DCR pass                 linked-list walk on fork
``pssp``                  P-SSP pass               preload (shadow refresh)
``pssp-binary``           SSP build, rewritten     preload (packed shadow) +
                                                   interposed stack_chk stub
``pssp-binary-static``    SSP static, Dyninst      in-binary setup/fork hooks
``pssp-nt``               P-SSP-NT pass            —
``pssp-nt-hardened``      hardened NT pass         rdrand selftest + shadow pair
``pssp-lv``               P-SSP-LV pass            —
``pssp-owf``              P-SSP-OWF pass           r12/r13 AES key
``pssp-gb``               global-buffer pass       side-buffer allocation
========================  =======================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..binfmt.elf import DYNAMIC, STATIC, Binary, merge_binaries
from ..compiler.codegen import compile_source
from ..errors import ProtectionError
from ..isa.costs import DBI_MULTIPLIER
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from ..libc.builtins import build_natives
from ..libc.glibc_sim import build_static_glibc
from ..parallel.buildcache import build_cache
from ..parallel.snapcache import image_cache
from .baselines import DCRRuntime, DynaGuardRuntime
from .schemes import (
    GlobalBufferRuntime,
    HardenedNTRuntime,
    OWFRuntime,
    PSSPRuntime,
    RAFRuntime,
    SchemeRuntime,
)


@dataclass
class SchemeSpec:
    """How to build and run one protection scheme."""

    name: str
    #: Compiler pass used for the build ("ssp" when the scheme rewrites an
    #: SSP binary instead of compiling natively).
    pass_name: str
    runtime_factory: Optional[Callable[[], SchemeRuntime]] = None
    #: Post-compile binary transformation (static rewriting).
    rewrite: Optional[Callable[[Binary], Binary]] = None
    #: Forces static linking of the glibc stubs before rewriting.
    static_link: bool = False
    #: Instrumentation cycle multiplier: PIN-style DBI tax (DynaGuard's
    #: 156 % variant) or static-rewriting dislocation tax (DCR's
    #: trampolines/displaced hot code — the component a pure instruction
    #: count cannot see; calibrated to the original's reported ~24 %).
    dbi_multiplier: float = 1.0
    #: Table I facts, used by the harness's security/correctness columns.
    prevents_brop: bool = True
    fork_correct: bool = True

    def make_runtime(self) -> Optional[SchemeRuntime]:
        return self.runtime_factory() if self.runtime_factory else None


def _dynamic_rewrite(binary: Binary) -> Binary:
    from ..rewriter.rewrite import instrument_binary

    return instrument_binary(binary)


def _static_rewrite(binary: Binary) -> Binary:
    from ..rewriter.dyninst import instrument_static_binary

    return instrument_static_binary(binary)


SCHEMES: Dict[str, SchemeSpec] = {
    spec.name: spec
    for spec in (
        SchemeSpec("none", "none", prevents_brop=False),
        SchemeSpec("ssp", "ssp", prevents_brop=False),
        SchemeSpec("raf-ssp", "ssp", RAFRuntime, fork_correct=False),
        SchemeSpec("dynaguard", "dynaguard", DynaGuardRuntime),
        SchemeSpec(
            "dynaguard-dbi", "dynaguard", DynaGuardRuntime,
            dbi_multiplier=DBI_MULTIPLIER,
        ),
        SchemeSpec("dcr", "dcr", DCRRuntime, dbi_multiplier=1.22),
        SchemeSpec("pssp", "pssp", lambda: PSSPRuntime("compiler")),
        SchemeSpec(
            "pssp-binary", "ssp", lambda: PSSPRuntime("binary"),
            rewrite=_dynamic_rewrite,
        ),
        SchemeSpec(
            "pssp-binary-static", "ssp", None,
            rewrite=_static_rewrite, static_link=True,
        ),
        SchemeSpec("pssp-nt", "pssp-nt"),
        SchemeSpec("pssp-nt-hardened", "pssp-nt-hardened", HardenedNTRuntime),
        SchemeSpec("pssp-lv", "pssp-lv"),
        SchemeSpec("pssp-owf", "pssp-owf", OWFRuntime),
        SchemeSpec("pssp-gb", "pssp-gb", GlobalBufferRuntime),
    )
}


def get_scheme(name: str) -> SchemeSpec:
    """Look up a scheme spec by name."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise ProtectionError(
            f"unknown scheme {name!r}; known: {sorted(SCHEMES)}"
        ) from None


def _build_uncached(source: str, spec: SchemeSpec, name: str) -> Binary:
    link_type = STATIC if spec.static_link else DYNAMIC
    binary = compile_source(source, protection=spec.pass_name, name=name,
                            link_type=link_type)
    if spec.static_link:
        binary = merge_binaries(binary, build_static_glibc(), name=binary.name)
    if spec.rewrite is not None:
        binary = spec.rewrite(binary)
    binary.protection = spec.name if spec.name != "none" else ""
    return binary


def build(
    source: str, scheme: str = "pssp", *, name: str = "a.out",
    cache: Optional[bool] = None,
) -> Binary:
    """Compile MiniC source under ``scheme`` (including rewriting paths).

    Builds are deterministic, so the result is served through the
    content-addressed :mod:`repro.parallel.buildcache` keyed by
    ``(source, scheme toolchain fingerprint, name)`` — campaigns that
    rebuild one program per interpreter path, per reference/faulted
    twin, or per shrink candidate reuse a single compile.  Pass
    ``cache=False`` to force a fresh compile (the cache itself hands
    out private clones either way, so hits are unobservable except in
    speed).
    """
    spec = get_scheme(scheme)
    store = build_cache()
    if cache is False or not store.enabled:
        return _build_uncached(source, spec, name)
    return store.get_or_build(
        source, spec, name, lambda: _build_uncached(source, spec, name)
    )


def deploy(
    kernel: Kernel,
    binary: Binary,
    scheme: str,
    *,
    natives: Optional[dict] = None,
    cycle_limit: int = 50_000_000,
    stack_size: int = 0x40000,
    aslr: bool = False,
    fast: bool = True,
) -> Tuple[Process, Optional[SchemeRuntime]]:
    """Spawn ``binary`` with the scheme's runtime support installed.

    Returns ``(process, runtime)``; the runtime is also installed on the
    process (hooks registered, TLS/registers initialised), so most
    callers only need the process.  ``aslr`` randomizes the address-space
    layout on top of whatever canary scheme is deployed (§VII-B).
    """
    spec = get_scheme(scheme)
    runtime = spec.make_runtime()
    preloads = runtime.preload_binaries() if runtime else []
    image = None
    if not aslr:
        # Warm boot: COW-clone a frozen post-load image instead of
        # re-running the loader.  Spawn images are captured before any
        # entropy draw, so the result is bit-identical to a cold spawn
        # (gated by tests/parallel/test_snapcache.py).  ASLR slides the
        # layout per spawn, so it always boots cold.
        image = image_cache().image_for(
            binary, spec, preloads, stack_size=stack_size
        )
    process = kernel.spawn(
        binary,
        preloads=preloads,
        natives=natives if natives is not None else build_natives(),
        dbi_multiplier=spec.dbi_multiplier,
        cycle_limit=cycle_limit,
        stack_size=stack_size,
        aslr=aslr,
        fast=fast,
        image=image,
    )
    if runtime is not None:
        runtime.install(process)
    return process, runtime


def launch(
    kernel: Kernel,
    source: str,
    scheme: str = "pssp",
    *,
    name: str = "a.out",
    cycle_limit: int = 50_000_000,
) -> Tuple[Process, Binary]:
    """One-shot convenience: build + deploy.  Returns (process, binary)."""
    binary = build(source, scheme, name=name)
    process, _ = deploy(kernel, binary, scheme, cycle_limit=cycle_limit)
    return process, binary
