"""Fork-time runtimes for the Table I baselines (DynaGuard, DCR).

Both schemes refresh the TLS canary on fork and must therefore repair
every stale canary in inherited stack frames — the canary-consistency
bookkeeping whose cost and complexity P-SSP is designed to avoid.
"""

from __future__ import annotations

from ..crypto.random import terminator_free_word
from ..kernel.process import Process
from .schemes import SchemeRuntime

#: Canary-address-buffer capacity (entries) per thread.
DYNAGUARD_CAB_ENTRIES = 4096

#: Mask of the offset field DCR embeds in each canary's low bits.
DCR_OFFSET_MASK = 0xFFFF


class DynaGuardRuntime(SchemeRuntime):
    """DynaGuard: canary address buffer + fork-time rewrite.

    The compiler pass appends each protected frame's canary address to
    the CAB; on fork we draw a new canary, rewrite every live CAB entry
    that still holds the old value, and update the TLS canary — keeping
    child frames consistent (Correctness: Yes, Table I).
    """

    def _allocate(self, context: Process) -> None:
        base = context.brk
        context.brk += 8 * DYNAGUARD_CAB_ENTRIES
        tls = context.tls
        tls.cab_base = base
        tls.cab_index = 0

    def on_fork(self, child: Process, parent: Process) -> None:
        tls = child.tls
        old = tls.canary
        new = terminator_free_word(child.entropy)
        base = tls.cab_base
        for i in range(tls.cab_index):
            slot_address = child.memory.read_word(base + 8 * i)
            if child.memory.read_word(slot_address) == old:
                child.memory.write_word(slot_address, new)
        tls.canary = new

    def _on_thread(self, thread: Process, parent: Process) -> None:
        self._allocate(thread)

    def install(self, process: Process) -> None:
        self._allocate(process)
        process.fork_hooks.append(self.on_fork)
        process.thread_hooks.append(self._on_thread)

    def reattach(self, process: Process) -> None:
        # The CAB allocation is ordinary memory and travels in the image.
        process.fork_hooks.append(self.on_fork)
        process.thread_hooks.append(self._on_thread)


class DCRRuntime(SchemeRuntime):
    """DCR: in-stack canary linked list threaded through embedded offsets.

    The list head lives in the TLS; each canary's low 16 bits hold the
    word-distance to the previous (higher-addressed) canary, terminated
    by a delta of zero at an anchor word near the stack top.  On fork we
    walk the list, re-randomizing the canary portion of every node while
    preserving the embedded offsets, then update the TLS canary.
    """

    def _plant_anchor(self, context: Process) -> None:
        stack = context.memory.segment("stack")
        anchor = stack.end - 8
        # Anchor node: delta 0 terminates every walk.
        context.memory.write_word(anchor, context.tls.canary)
        context.tls.dcr_head = anchor

    def on_fork(self, child: Process, parent: Process) -> None:
        tls = child.tls
        old = tls.canary
        new = terminator_free_word(child.entropy)
        node = tls.dcr_head
        seen = 0
        while seen < DYNAGUARD_CAB_ENTRIES:  # cycle guard
            word = child.memory.read_word(node)
            delta = (word ^ old) & DCR_OFFSET_MASK
            child.memory.write_word(node, new ^ delta)
            if delta == 0:
                break
            node += delta * 8
            seen += 1
        tls.canary = new

    def _on_thread(self, thread: Process, parent: Process) -> None:
        self._plant_anchor(thread)

    def install(self, process: Process) -> None:
        self._plant_anchor(process)
        process.fork_hooks.append(self.on_fork)
        process.thread_hooks.append(self._on_thread)

    def reattach(self, process: Process) -> None:
        # The anchor node is stack memory and travels in the image.
        process.fork_hooks.append(self.on_fork)
        process.thread_hooks.append(self._on_thread)
