"""The scheme-properties matrix, measured live.

``docs/schemes.md`` ends with a properties table; this module *measures*
it rather than asserting it: every cell comes from running the
corresponding experiment against the deployed scheme —

* **BROP prevented** — a byte-by-byte campaign fails;
* **fork-correct** — the child-returns-through-inherited-frame probe;
* **leak-replay resists** — the §IV-C disclosure scenario is detected;
* **unwinding-safe** — a longjmp over protected frames neither breaks
  later canary checks nor leaks bookkeeping;
* **per-call cycles** — the Table V micro-delta.

This is the paper's Table I generalised to every scheme in the registry,
including the extensions the paper evaluates only qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..attacks.byte_by_byte import byte_by_byte_attack
from ..attacks.correctness import probe_fork_correctness
from ..attacks.leak import leak_and_replay
from ..attacks.oracle import ForkingServer
from ..attacks.payloads import frame_map
from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel

_ATTACK_VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""

_LEAK_VICTIM = """
int win() {
    puts("PWNED");
    return 1;
}
int leaky(int n) {
    char buf[32];
    buf[0] = 1;
    return buf[0];
}
int target(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""

_UNWIND_VICTIM = """
int helper(int env) {
    char pad[16];
    pad[0] = 1;
    longjmp(env, 7);
    return 0;
}
int work(int env) {
    char buf[16];
    buf[0] = 2;
    return helper(env);
}
int after(int x) {
    char buf2[16];
    buf2[0] = x;
    return buf2[0];
}
int main() {
    int env[8];
    int r;
    r = setjmp(env);
    if (r == 0) {
        work(env);
        return 99;
    }
    return after(r);
}
"""

_MICRO = """
int victim() {
    char buf[16];
    buf[0] = 1;
    return buf[0];
}
int main() { return victim(); }
"""


@dataclass
class SchemeProperties:
    """One measured row."""

    scheme: str
    brop_prevented: bool
    fork_correct: bool
    leak_resilient: bool
    unwinding_safe: bool
    per_call_cycles: float


@dataclass
class PropertiesMatrix:
    rows: List[SchemeProperties]

    def row(self, scheme: str) -> SchemeProperties:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)

    def render(self) -> str:
        lines = [
            f"{'scheme':14s} {'BROP':>5s} {'fork-ok':>8s} "
            f"{'leak-res':>9s} {'unwind-ok':>10s} {'cy/call':>8s}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.scheme:14s} {_tick(row.brop_prevented):>5s} "
                f"{_tick(row.fork_correct):>8s} "
                f"{_tick(row.leak_resilient):>9s} "
                f"{_tick(row.unwinding_safe):>10s} "
                f"{row.per_call_cycles:8.1f}"
            )
        return "\n".join(lines)


def _tick(value: bool) -> str:
    return "yes" if value else "NO"


def _brop_prevented(scheme: str, seed: int, max_trials: int) -> bool:
    kernel = Kernel(seed)
    binary = build(_ATTACK_VICTIM, scheme, name="victim")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    return not byte_by_byte_attack(server, frame, max_trials=max_trials).success


def _leak_resilient(scheme: str, seed: int) -> bool:
    kernel = Kernel(seed)
    binary = build(_LEAK_VICTIM, scheme, name="victim")
    process, _ = deploy(kernel, binary, scheme)
    report = leak_and_replay(kernel, process, binary)
    return report.detected and not report.hijacked


def _unwinding_safe(scheme: str, seed: int) -> bool:
    kernel = Kernel(seed)
    binary = build(_UNWIND_VICTIM, scheme, name="victim")
    process, _ = deploy(kernel, binary, scheme)
    result = process.run()
    return result.state == "exited" and result.exit_status == 7


def _per_call_cycles(scheme: str, seed: int) -> float:
    from .metrics import run_program

    protected = run_program(_MICRO, scheme, name="micro", seed=seed)
    native = run_program(_MICRO, "none", name="micro", seed=seed)
    return protected.cycles - native.cycles


def properties_matrix(
    schemes: Optional[List[str]] = None,
    *,
    seed: int = 2024,
    attack_trials: int = 3000,
) -> PropertiesMatrix:
    """Measure the full matrix (defaults to the paper's schemes + extensions)."""
    if schemes is None:
        schemes = [
            "ssp", "raf-ssp", "dynaguard", "dcr",
            "pssp", "pssp-binary", "pssp-nt", "pssp-lv",
            "pssp-owf", "pssp-gb",
        ]
    rows = []
    for scheme in schemes:
        rows.append(
            SchemeProperties(
                scheme=scheme,
                brop_prevented=_brop_prevented(scheme, seed, attack_trials),
                fork_correct=probe_fork_correctness(scheme, seed=seed + 1).fork_correct,
                leak_resilient=_leak_resilient(scheme, seed + 2),
                unwinding_safe=_unwinding_safe(scheme, seed + 3),
                per_call_cycles=_per_call_cycles(scheme, seed + 4),
            )
        )
    return PropertiesMatrix(rows)
