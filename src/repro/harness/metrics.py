"""Measurement primitives shared by the table/figure regenerators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .. import telemetry
from ..binfmt.elf import Binary
from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel

#: Simulated clock for cycle→time conversions (i7-4770K-class, 3.5 GHz).
#: The single source of truth: benchmarks and the telemetry profiler
#: import this constant rather than re-declaring the frequency.
CLOCK_HZ = 3.5e9


def _counter(snapshot: Dict[str, object], name: str) -> int:
    value = snapshot.get(name, 0)
    return int(value) if isinstance(value, (int, float)) else 0


@dataclass
class RunMetrics:
    """One program execution under one scheme."""

    program: str
    scheme: str
    cycles: float
    instructions: int
    exit_status: int
    crashed: bool
    text_bytes: int
    #: Smash detections (__stack_chk_fail firings) during the run, from
    #: the telemetry delta — lets effectiveness tables report detections
    #: directly instead of inferring them from exit status alone.
    smashes_detected: int = 0
    #: Fail-closed DegradedError aborts during the run.
    degradations: int = 0
    #: Full telemetry counter/histogram delta for the run (empty when
    #: telemetry is disabled).
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / CLOCK_HZ


def run_program(
    source: str,
    scheme: str,
    *,
    name: str = "bench",
    seed: int = 97,
    entry: Optional[str] = None,
    cycle_limit: int = 50_000_000,
) -> RunMetrics:
    """Build + run one program, returning its metrics."""
    before = telemetry.snapshot() if telemetry.enabled() else {}
    kernel = Kernel(seed)
    binary = build(source, scheme, name=name)
    process, _ = deploy(kernel, binary, scheme, cycle_limit=cycle_limit)
    result = process.run(entry)
    delta = telemetry.delta(before) if telemetry.enabled() else {}
    return RunMetrics(
        program=name,
        scheme=scheme,
        cycles=result.cycles,
        instructions=result.instructions,
        exit_status=result.exit_status,
        crashed=result.crashed,
        text_bytes=binary.text_size(),
        smashes_detected=_counter(delta, "canary_smashes_detected_total"),
        degradations=_counter(delta, "degradations_total"),
        telemetry=delta,
    )


def overhead_percent(baseline: RunMetrics, candidate: RunMetrics) -> float:
    """Relative slowdown of ``candidate`` vs ``baseline`` in percent."""
    if baseline.cycles == 0:
        return 0.0
    return (candidate.cycles - baseline.cycles) / baseline.cycles * 100.0


def expansion_percent(native: Binary, protected: Binary) -> float:
    """Code-size growth in percent (Table II's metric)."""
    base = native.total_size()
    if base == 0:
        return 0.0
    return (protected.total_size() - base) / base * 100.0
