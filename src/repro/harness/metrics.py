"""Measurement primitives shared by the table/figure regenerators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..binfmt.elf import Binary
from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel

#: Simulated clock for cycle→time conversions (i7-4770K-class, 3.5 GHz).
CLOCK_HZ = 3.5e9


@dataclass
class RunMetrics:
    """One program execution under one scheme."""

    program: str
    scheme: str
    cycles: float
    instructions: int
    exit_status: int
    crashed: bool
    text_bytes: int

    @property
    def seconds(self) -> float:
        return self.cycles / CLOCK_HZ


def run_program(
    source: str,
    scheme: str,
    *,
    name: str = "bench",
    seed: int = 97,
    entry: Optional[str] = None,
    cycle_limit: int = 50_000_000,
) -> RunMetrics:
    """Build + run one program, returning its metrics."""
    kernel = Kernel(seed)
    binary = build(source, scheme, name=name)
    process, _ = deploy(kernel, binary, scheme, cycle_limit=cycle_limit)
    result = process.run(entry)
    return RunMetrics(
        program=name,
        scheme=scheme,
        cycles=result.cycles,
        instructions=result.instructions,
        exit_status=result.exit_status,
        crashed=result.crashed,
        text_bytes=binary.text_size(),
    )


def overhead_percent(baseline: RunMetrics, candidate: RunMetrics) -> float:
    """Relative slowdown of ``candidate`` vs ``baseline`` in percent."""
    if baseline.cycles == 0:
        return 0.0
    return (candidate.cycles - baseline.cycles) / baseline.cycles * 100.0


def expansion_percent(native: Binary, protected: Binary) -> float:
    """Code-size growth in percent (Table II's metric)."""
    base = native.total_size()
    if base == 0:
        return 0.0
    return (protected.total_size() - base) / base * 100.0
