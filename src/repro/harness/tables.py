"""Regenerators for every table in the paper's evaluation.

Each ``tableN`` function *measures* its numbers by building, deploying,
attacking and timing the simulated systems — nothing is hard-coded — and
returns a structured result with a ``render()`` ASCII view.  Paper
reference values are attached for side-by-side comparison in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..attacks.byte_by_byte import byte_by_byte_attack
from ..attacks.correctness import probe_fork_correctness
from ..attacks.oracle import ForkingServer
from ..attacks.payloads import frame_map
from ..binfmt.elf import STATIC, merge_binaries
from ..compiler.codegen import compile_source
from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel
from ..libc.glibc_sim import build_static_glibc
from ..rewriter.dyninst import instrument_static_binary
from ..rewriter.rewrite import instrument_binary
from ..workloads.database import DATABASES, DatabaseStats
from ..workloads.spec import SPEC_PROGRAMS, program
from ..workloads.webserver import WEB_SERVERS, ServerStats
from .metrics import expansion_percent, overhead_percent, run_program

#: Victim used by attack-driven columns: a classic network echo handler.
ATTACK_VICTIM_SOURCE = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""

#: Default SPEC subset for overhead columns (keeps wall-clock modest);
#: pass ``spec_names=None`` for the full suite.
DEFAULT_SPEC_SUBSET = ("perlbench", "gcc", "mcf", "sjeng", "h264ref", "milc")


def _spec_sources(spec_names: Optional[Sequence[str]]) -> List[Tuple[str, str]]:
    if spec_names is None:
        return [(p.name, p.source) for p in SPEC_PROGRAMS]
    return [(name, program(name).source) for name in spec_names]


def _mean_overhead(
    scheme: str,
    baseline: str,
    spec_names: Optional[Sequence[str]],
    seed: int,
) -> float:
    """Mean cycle overhead of ``scheme`` over ``baseline`` on the suite."""
    overheads = []
    for name, source in _spec_sources(spec_names):
        base = run_program(source, baseline, name=name, seed=seed)
        cand = run_program(source, scheme, name=name, seed=seed)
        overheads.append(overhead_percent(base, cand))
    return mean(overheads)


# ---------------------------------------------------------------------------
# Table I — defence-tool comparison
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    scheme: str
    brop_prevented: Optional[bool]
    fork_correct: bool
    compiler_overhead: Optional[float]
    instrumentation_overhead: Optional[float]
    attack_trials: int = 0


@dataclass
class Table1:
    rows: List[Table1Row]
    #: Paper's reference values for the overhead columns.
    paper = {
        "ssp": (False, True, None, None),
        "raf-ssp": (True, False, 0.0, 0.0),
        "dynaguard": (True, True, 1.5, 156.0),
        "dcr": (True, True, None, 24.0),
        "pssp": (True, True, 0.24, 1.01),
    }

    def row(self, scheme: str) -> Table1Row:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)

    def render(self) -> str:
        lines = [
            f"{'scheme':12s} {'BROP prev.':>10s} {'correct':>8s} "
            f"{'compiler%':>10s} {'instr%':>8s} {'trials':>7s}"
        ]
        for row in self.rows:
            compiler = (
                f"{row.compiler_overhead:.2f}"
                if row.compiler_overhead is not None
                else "-"
            )
            instr = (
                f"{row.instrumentation_overhead:.2f}"
                if row.instrumentation_overhead is not None
                else "-"
            )
            brop = "-" if row.brop_prevented is None else str(row.brop_prevented)
            lines.append(
                f"{row.scheme:12s} {brop:>10s} {str(row.fork_correct):>8s} "
                f"{compiler:>10s} {instr:>8s} {row.attack_trials:>7d}"
            )
        return "\n".join(lines)


def _brop_prevented(scheme: str, seed: int, max_trials: int) -> Tuple[bool, int]:
    """Run the byte-by-byte attack; prevention == attack failure."""
    kernel = Kernel(seed)
    binary = build(ATTACK_VICTIM_SOURCE, scheme, name="victim")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    report = byte_by_byte_attack(server, frame, max_trials=max_trials)
    return (not report.success), report.trials


def table1(
    *,
    seed: int = 1806,
    spec_names: Optional[Sequence[str]] = DEFAULT_SPEC_SUBSET,
    attack_trials: int = 4000,
) -> Table1:
    """Regenerate Table I: security, correctness, and overhead columns."""
    rows: List[Table1Row] = []
    # (scheme, compiler-overhead scheme or None, instrumentation scheme or None)
    layout = [
        ("ssp", None, None),
        ("raf-ssp", "raf-ssp", "raf-ssp"),
        ("dynaguard", "dynaguard", "dynaguard-dbi"),
        ("dcr", None, "dcr"),
        ("pssp", "pssp", "pssp-binary"),
    ]
    for scheme, compiler_scheme, instr_scheme in layout:
        prevented, trials = _brop_prevented(scheme, seed, attack_trials)
        if scheme == "ssp":
            prevented = False  # the attack *succeeds*: nothing to prevent
        correct = probe_fork_correctness(scheme, seed=seed + 1).fork_correct
        compiler_overhead = (
            _mean_overhead(compiler_scheme, "ssp", spec_names, seed)
            if compiler_scheme
            else None
        )
        instrumentation_overhead = (
            _mean_overhead(instr_scheme, "ssp", spec_names, seed)
            if instr_scheme
            else None
        )
        rows.append(
            Table1Row(
                scheme,
                prevented,
                correct,
                compiler_overhead,
                instrumentation_overhead,
                trials,
            )
        )
    return Table1(rows)


# ---------------------------------------------------------------------------
# Table II — code expansion
# ---------------------------------------------------------------------------


@dataclass
class Table2:
    compiler_expansion: float
    instrumentation_dynamic_expansion: float
    instrumentation_static_expansion: float
    per_program: Dict[str, float]
    #: Absolute bytes the compiler path adds per protected function and
    #: the static path adds per binary — the scale-free metric (our MiniC
    #: functions are ~50–200 bytes vs SPEC's kilobytes, so percentages
    #: inflate by exactly that size ratio; the absolute deltas match the
    #: real tool's).
    compiler_bytes_per_function: float = 0.0
    static_bytes_added: float = 0.0
    paper = (0.27, 0.0, 2.78)

    def render(self) -> str:
        return (
            f"{'Compilation':>14s} {'Instr (dynamic)':>16s} {'Instr (static)':>15s}\n"
            f"{self.compiler_expansion:13.2f}% "
            f"{self.instrumentation_dynamic_expansion:15.2f}% "
            f"{self.instrumentation_static_expansion:14.2f}%\n"
            f"(+{self.compiler_bytes_per_function:.0f} B per protected function; "
            f"+{self.static_bytes_added:.0f} B new section per static binary)"
        )


def table2(*, spec_names: Optional[Sequence[str]] = None) -> Table2:
    """Regenerate Table II: code expansion per deployment vehicle."""
    compiler_rates: List[float] = []
    dynamic_rates: List[float] = []
    static_rates: List[float] = []
    per_program: Dict[str, float] = {}
    bytes_per_function: List[float] = []
    static_bytes: List[float] = []
    for name, source in _spec_sources(spec_names):
        native = compile_source(source, protection="ssp", name=name)
        pssp = compile_source(source, protection="pssp", name=name)
        rate = expansion_percent(native, pssp)
        compiler_rates.append(rate)
        per_program[name] = rate
        protected = sum(1 for f in pssp.functions.values() if f.protected)
        if protected:
            bytes_per_function.append(
                (pssp.total_size() - native.total_size()) / protected
            )

        rewritten = instrument_binary(native)
        dynamic_rates.append(expansion_percent(native, rewritten))

        static_native = merge_binaries(
            compile_source(source, protection="ssp", name=name,
                           link_type=STATIC),
            build_static_glibc(),
            name=name,
        )
        static_instrumented = instrument_static_binary(static_native)
        static_rates.append(expansion_percent(static_native, static_instrumented))
        static_bytes.append(
            static_instrumented.total_size() - static_native.total_size()
        )
    return Table2(
        compiler_expansion=mean(compiler_rates),
        instrumentation_dynamic_expansion=mean(dynamic_rates),
        instrumentation_static_expansion=mean(static_rates),
        per_program=per_program,
        compiler_bytes_per_function=mean(bytes_per_function),
        static_bytes_added=mean(static_bytes),
    )


# ---------------------------------------------------------------------------
# Tables III & IV — server impact
# ---------------------------------------------------------------------------

#: Build columns common to Tables III/IV.
SERVER_SCHEMES = ("ssp", "pssp", "pssp-binary")
SERVER_COLUMN_NAMES = {
    "ssp": "Native",
    "pssp": "Compiler P-SSP",
    "pssp-binary": "Instrumented P-SSP",
}


@dataclass
class Table3:
    results: Dict[str, Dict[str, ServerStats]]
    paper = {
        "apache2": (33.006, 33.008, 33.099),
        "nginx": (3.088, 3.090, 3.088),
    }

    def render(self) -> str:
        lines = [
            f"{'server':10s} " + " ".join(
                f"{SERVER_COLUMN_NAMES[s]:>20s}" for s in SERVER_SCHEMES
            )
        ]
        for server, by_scheme in self.results.items():
            cells = " ".join(
                f"{by_scheme[s].mean_response_ms:20.4f}" for s in SERVER_SCHEMES
            )
            lines.append(f"{server:10s} {cells}  (ms/request)")
        return "\n".join(lines)


def table3(*, seed: int = 20180625, requests: int = 40) -> Table3:
    """Regenerate Table III: web-server mean response times."""
    results: Dict[str, Dict[str, ServerStats]] = {}
    for workload in WEB_SERVERS:
        results[workload.name] = {
            scheme: workload.measure(scheme, requests=requests, seed=seed)
            for scheme in SERVER_SCHEMES
        }
    return Table3(results)


@dataclass
class Table4:
    results: Dict[str, Dict[str, DatabaseStats]]
    paper = {
        "mysql": (3.33, 22.59),
        "sqlite": (167.27, 20.58),
    }

    def render(self) -> str:
        lines = [
            f"{'database':10s} " + " ".join(
                f"{SERVER_COLUMN_NAMES[s]:>26s}" for s in SERVER_SCHEMES
            )
        ]
        for database, by_scheme in self.results.items():
            cells = " ".join(
                f"{by_scheme[s].mean_query_ms:12.3f}ms/{by_scheme[s].memory_mb:8.2f}MB"
                for s in SERVER_SCHEMES
            )
            lines.append(f"{database:10s} {cells}")
        return "\n".join(lines)


def table4(*, seed: int = 20180626) -> Table4:
    """Regenerate Table IV: database query time and memory usage."""
    results: Dict[str, Dict[str, DatabaseStats]] = {}
    for workload in DATABASES:
        results[workload.name] = {
            scheme: workload.measure(scheme, seed=seed)
            for scheme in SERVER_SCHEMES
        }
    return Table4(results)


# ---------------------------------------------------------------------------
# Table V — prologue/epilogue cycle costs
# ---------------------------------------------------------------------------

_MICRO_ONE_BUFFER = """
int victim() {
    char buf[16];
    buf[0] = 1;
    return buf[0];
}
int main() { return victim(); }
"""

_MICRO_TWO_VARS = """
int victim() {
    critical char a[8];
    critical char b[8];
    a[0] = 1;
    b[0] = 2;
    return a[0] + b[0];
}
int main() { return victim(); }
"""

_MICRO_FOUR_VARS = """
int victim() {
    critical char a[8];
    critical char b[8];
    critical char c[8];
    critical char d[8];
    a[0] = 1;
    b[0] = 2;
    c[0] = 3;
    d[0] = 4;
    return a[0] + b[0] + c[0] + d[0];
}
int main() { return victim(); }
"""


@dataclass
class Table5:
    cycles: Dict[str, float]
    paper = {
        "pssp": 6,
        "pssp-nt": 343,
        "pssp-lv (2 vars)": 343,
        "pssp-lv (4 vars)": 986,
        "pssp-owf": 278,
    }

    def render(self) -> str:
        lines = [f"{'scheme':20s} {'extra cycles':>12s}"]
        for scheme, value in self.cycles.items():
            lines.append(f"{scheme:20s} {value:12.1f}")
        return "\n".join(lines)


def table5(*, seed: int = 55, include_ablation: bool = True) -> Table5:
    """Regenerate Table V: per-call canary cost of every scheme.

    The metric is total run cycles of a one-call micro program under the
    scheme minus the unprotected build of the same source — i.e. exactly
    the prologue + epilogue instrumentation cost.
    """
    cycles: Dict[str, float] = {}

    def delta(label: str, source: str, scheme: str) -> None:
        protected = run_program(source, scheme, name=f"micro-{label}", seed=seed)
        native = run_program(source, "none", name=f"micro-{label}", seed=seed)
        cycles[label] = protected.cycles - native.cycles

    delta("pssp", _MICRO_ONE_BUFFER, "pssp")
    delta("pssp-nt", _MICRO_ONE_BUFFER, "pssp-nt")
    delta("pssp-lv (2 vars)", _MICRO_TWO_VARS, "pssp-lv")
    delta("pssp-lv (4 vars)", _MICRO_FOUR_VARS, "pssp-lv")
    delta("pssp-owf", _MICRO_ONE_BUFFER, "pssp-owf")
    if include_ablation:
        delta("ssp", _MICRO_ONE_BUFFER, "ssp")
        delta("dynaguard", _MICRO_ONE_BUFFER, "dynaguard")
        delta("dcr", _MICRO_ONE_BUFFER, "dcr")
        delta("pssp-gb", _MICRO_ONE_BUFFER, "pssp-gb")
        delta("pssp-binary", _MICRO_ONE_BUFFER, "pssp-binary")
    return Table5(cycles)


# ---------------------------------------------------------------------------
# §VI-C — effectiveness & compatibility
# ---------------------------------------------------------------------------


@dataclass
class EffectivenessRow:
    server: str
    scheme: str
    attack_succeeded: bool
    trials: int
    #: Refuted-probe detections during the attack, from the telemetry
    #: smash counter (not inferred from worker exit statuses).
    smashes_detected: int = 0


@dataclass
class EffectivenessReport:
    rows: List[EffectivenessRow]
    compat_false_positives: int
    compat_runs: int
    #: Telemetry-counted __stack_chk_fail firings across the benign
    #: compatibility runs; nonzero would mean the canary runtime itself
    #: (not a memory bug) aborted a legitimate mixed build.
    compat_smash_detections: int = 0

    def render(self) -> str:
        lines = [
            f"{'server':8s} {'scheme':8s} {'attack ok':>10s} {'trials':>8s} "
            f"{'detected':>9s}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.server:8s} {row.scheme:8s} "
                f"{str(row.attack_succeeded):>10s} {row.trials:>8d} "
                f"{row.smashes_detected:>9d}"
            )
        lines.append(
            f"compatibility: {self.compat_false_positives} false positives "
            f"({self.compat_smash_detections} canary aborts) "
            f"in {self.compat_runs} mixed-build runs"
        )
        return "\n".join(lines)


#: "Ali" — the second server attacked in §VI-C: a login-style service.
ALI_SOURCE = """
int handler(int n) {
    char user[48];
    char line[64];
    int len;
    len = read(0, user, 4096);
    user[47] = 0;
    sprintf(line, "login attempt");
    return len;
}
int main() { return 0; }
"""


#: The §VI-C attack grid in canonical order: (server, scheme) cells.
#: Indexed by the parallel shard plan, so cell ``i`` is the same work
#: for any ``jobs`` value.
_EFFECTIVENESS_CELLS: Tuple[Tuple[str, str], ...] = (
    ("nginx", "ssp"), ("nginx", "pssp"), ("ali", "ssp"), ("ali", "pssp"),
)


def _effectiveness_cell(
    server_name: str, scheme: str, *, seed: int, max_trials: int
) -> EffectivenessRow:
    """Attack one (server, scheme) cell; the unit of §VI-C work."""
    source = ATTACK_VICTIM_SOURCE if server_name == "nginx" else ALI_SOURCE
    kernel = Kernel(seed)
    binary = build(source, scheme, name=server_name)
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    before = telemetry.snapshot()
    report = byte_by_byte_attack(server, frame, max_trials=max_trials)
    delta = telemetry.delta(before)
    smashes = int(delta.get("canary_smashes_detected_total", 0) or 0)
    return EffectivenessRow(
        server_name, scheme, report.success, report.trials, smashes
    )


def _effectiveness_worker(config: Dict[str, object], indices, attempt: int):
    """Process-pool entry point: attack one shard's grid cells."""
    before = telemetry.snapshot()
    rows = []
    for index in indices:
        server_name, scheme = _EFFECTIVENESS_CELLS[index]
        row = _effectiveness_cell(
            server_name, scheme,
            seed=config["seed"], max_trials=config["max_trials"],
        )
        rows.append({
            "server": row.server,
            "scheme": row.scheme,
            "attack_succeeded": row.attack_succeeded,
            "trials": row.trials,
            "smashes_detected": row.smashes_detected,
        })
    return {"rows": rows, "telemetry": telemetry.delta(before)}


def effectiveness(
    *,
    seed: int = 625,
    max_trials: int = 4000,
    compat_runs: int = 3,
    jobs: int = 1,
) -> EffectivenessReport:
    """Regenerate §VI-C: byte-by-byte vs SSP/P-SSP servers + compat runs.

    ``jobs > 1`` runs the four attack cells across a process pool (the
    compatibility runs stay in-process); rows merge in grid order, so
    the report matches a serial run exactly.  A cell whose worker died
    is re-run in-process — the grid is never left incomplete.
    """
    rows: List[EffectivenessRow] = []
    if jobs <= 1:
        for server_name, scheme in _EFFECTIVENESS_CELLS:
            rows.append(_effectiveness_cell(
                server_name, scheme, seed=seed, max_trials=max_trials
            ))
    else:
        from ..parallel import plan_shards, run_shards

        config = {"seed": seed, "max_trials": max_trials}
        shards = plan_shards(0, len(_EFFECTIVENESS_CELLS))
        outcomes, _ = run_shards(
            _effectiveness_worker, config, shards, jobs=jobs, retries=1,
        )
        merged = telemetry.Snapshot()
        for outcome in outcomes:
            if outcome.ok:
                rows.extend(
                    EffectivenessRow(
                        row["server"], row["scheme"],
                        row["attack_succeeded"], row["trials"],
                        row["smashes_detected"],
                    )
                    for row in outcome.value["rows"]
                )
                merged = merged.merge(
                    telemetry.Snapshot(outcome.value["telemetry"])
                )
            else:
                for index in outcome.shard.seeds:
                    server_name, scheme = _EFFECTIVENESS_CELLS[index]
                    rows.append(_effectiveness_cell(
                        server_name, scheme, seed=seed, max_trials=max_trials
                    ))
        if merged:
            telemetry.absorb(merged)

    # Compatibility: P-SSP-compiled program calling SSP-compiled "library"
    # code, and vice versa, running under the P-SSP preload.  The paper's
    # claim: mixtures behave normally, zero false positives.
    false_positives = 0
    runs = 0
    compat_before = telemetry.snapshot()
    mixed_pairs = (("pssp", "ssp"), ("ssp", "pssp"))
    for main_scheme, lib_scheme in mixed_pairs:
        for round_index in range(compat_runs):
            kernel = Kernel(seed + round_index)
            main_binary = compile_source(
                _COMPAT_MAIN, protection=main_scheme, name="app"
            )
            lib_binary = compile_source(
                _COMPAT_LIB, protection=lib_scheme, name="lib"
            )
            merged = merge_binaries(main_binary, lib_binary, name="app+lib")
            merged.protection = main_scheme
            process, _ = deploy(kernel, merged, "pssp")
            result = process.run()
            runs += 1
            if result.crashed:
                false_positives += 1
    compat_delta = telemetry.delta(compat_before)
    compat_smashes = int(
        compat_delta.get("canary_smashes_detected_total", 0) or 0
    )
    return EffectivenessReport(rows, false_positives, runs, compat_smashes)


_COMPAT_MAIN = """
int app_work(int n) {
    char scratch[32];
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        scratch[i % 31] = i;
        acc = acc + lib_transform(i);
    }
    return acc;
}
int main() {
    int pid;
    pid = fork();
    return app_work(24) & 255;
}
"""

_COMPAT_LIB = """
int lib_transform(int x) {
    char tmp[24];
    sprintf(tmp, "v%d", x);
    return strlen(tmp) + x * 3;
}
"""
