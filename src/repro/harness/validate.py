"""Self-validation: a fast health check over the full scheme matrix.

``python -m repro validate`` (or :func:`validate_all`) runs, for every
registered scheme: a semantic cross-check (checksums must match the
unprotected build), a benign-traffic check (no false positives), and a
detection check (a blind smash must be caught by every protecting
scheme).  This is the 30-second answer to "did my change break a scheme
somewhere?" without waiting for the full suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.deploy import SCHEMES, build, deploy
from ..errors import CampaignError
from ..kernel.kernel import Kernel

_CHECK_PROGRAM = """
int work(int rounds) {
    char buf[24];
    int acc; int i;
    buf[0] = rounds;
    acc = 0;
    for (i = 0; i < rounds; i = i + 1) {
        acc = acc + i * buf[0];
    }
    return acc & 0xff;
}
int main() { return work(9); }
"""

#: The canonical overflow victim: ``read(2)`` lets stdin length decide
#: between benign traffic and a 160-byte blind smash of the 48-byte
#: buffer.  Shared with the conformance fuzzer's detection probe
#: (``repro.fuzz.conformance``) so both health checks agree on what
#: "detects an overflow" means.
DETECTION_VICTIM = """
int handler(int n) {
    char buf[48];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


@dataclass
class SchemeValidation:
    """Per-scheme verdicts."""

    scheme: str
    semantics_ok: bool
    benign_ok: bool
    detection_ok: bool
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.semantics_ok and self.benign_ok and self.detection_ok


@dataclass
class ValidationReport:
    results: List[SchemeValidation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def render(self) -> str:
        lines = [
            f"{'scheme':22s} {'semantics':>9s} {'benign':>7s} {'detects':>8s}"
        ]
        for result in self.results:
            lines.append(
                f"{result.scheme:22s} {str(result.semantics_ok):>9s} "
                f"{str(result.benign_ok):>7s} {str(result.detection_ok):>8s}"
                + (f"  ({result.note})" if result.note else "")
            )
        lines.append("ALL OK" if self.ok else "FAILURES PRESENT")
        return "\n".join(lines)


def validate_scheme(scheme: str, *, seed: int = 1234) -> SchemeValidation:
    """Run the three checks for one scheme."""
    note = ""
    try:
        reference = _run_checksum("none", seed)
        semantics_ok = _run_checksum(scheme, seed) == reference
    except Exception as error:  # a build/deploy crash is a failure, not a skip
        return SchemeValidation(scheme, False, False, False, note=str(error))

    try:
        kernel = Kernel(seed)
        binary = build(DETECTION_VICTIM, scheme, name="victim")
        process, _ = deploy(kernel, binary, scheme)
        process.feed_stdin(b"ok")
        benign_ok = process.call("handler", (2,)).state == "exited"

        process2, _ = deploy(kernel, binary, scheme)
        process2.feed_stdin(b"A" * 160)
        result = process2.call("handler", (160,))
        if scheme == "none":
            detection_ok = True  # nothing to detect by definition
            note = "unprotected baseline"
        else:
            detection_ok = result.smashed
    except Exception as error:
        return SchemeValidation(scheme, semantics_ok, False, False,
                                note=str(error))
    return SchemeValidation(scheme, semantics_ok, benign_ok, detection_ok,
                            note=note)


def _run_checksum(scheme: str, seed: int) -> int:
    kernel = Kernel(seed)
    binary = build(_CHECK_PROGRAM, scheme, name="check")
    process, _ = deploy(kernel, binary, scheme)
    result = process.run()
    if result.crashed:
        raise CampaignError(f"{scheme}: checksum run crashed: {result.crash}")
    return result.exit_status


def validate_all(*, seed: int = 1234) -> ValidationReport:
    """Validate every registered scheme."""
    report = ValidationReport()
    for scheme in sorted(SCHEMES):
        report.results.append(validate_scheme(scheme, seed=seed))
    return report
