"""Regenerators for every figure in the paper.

Figures 1/2/6 are structural (stack/buffer layouts): we regenerate them
by *executing* protected code and snapshotting live frames, then
rendering the same diagrams as data + ASCII art.  Figures 3/4 are code
listings of the modified ``__stack_chk_fail``: we disassemble the actual
rewriter output.  Figure 5 is the per-program overhead chart: we measure
every SPEC-like program under the compiler and instrumentation builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel
from ..rewriter.rewrite import instrument_binary
from ..rewriter.stack_chk import build_stack_chk_function
from ..workloads.spec import SPEC_PROGRAMS, program
from .metrics import overhead_percent, run_program

# ---------------------------------------------------------------------------
# Figures 1 & 2 — stack layouts
# ---------------------------------------------------------------------------

_LAYOUT_SOURCE = """
int inner() {
    char data[16];
    data[0] = 2;
    return data[0];
}
int outer() {
    char buf[16];
    buf[0] = 1;
    return inner() + buf[0];
}
int main() { return outer(); }
"""


@dataclass
class FrameSnapshot:
    """One live frame captured mid-execution."""

    function: str
    rbp: int
    #: (rbp-relative offset, value) for each canary word, top-down.
    canary_words: List[Tuple[int, int]]


@dataclass
class LayoutFigure:
    scheme: str
    frames: List[FrameSnapshot]

    def render(self) -> str:
        lines = [f"stack layout under {self.scheme}:"]
        for frame in self.frames:
            lines.append(f"  {frame.function} frame (rbp={frame.rbp:#x})")
            lines.append(f"    [rbp+8]  return address")
            lines.append(f"    [rbp+0]  saved rbp")
            for offset, value in frame.canary_words:
                lines.append(f"    [rbp-{offset:<3d}] canary word = {value:#018x}")
            lines.append(f"    [lower]  local variables / buffers")
        return "\n".join(lines)


def _capture_layout(scheme: str, *, seed: int = 77) -> LayoutFigure:
    kernel = Kernel(seed)
    binary = build(_LAYOUT_SOURCE, scheme, name="layout")
    process, _ = deploy(kernel, binary, scheme)
    captured: Dict[str, FrameSnapshot] = {}

    def trace(name: str, index: int, instruction) -> None:
        if name not in ("outer", "inner"):
            return
        if instruction.op in ("leave", "ret", "push", "mov", "sub"):
            # Skip frame setup/teardown instants where rbp belongs to the
            # caller; sample only once the body is executing.
            if instruction.note in ("frame", "spill"):
                return
        function = process.image.function(name)
        slots = function.meta.get("canary_slots", [])
        if not slots:
            return
        rbp = process.registers.read("rbp")
        try:
            words = [(s, process.memory.read_word(rbp - s)) for s in slots]
        except Exception:
            return
        captured[name] = FrameSnapshot(name, rbp, words)

    process.cpu.trace = trace
    process.run()
    process.cpu.trace = None
    frames = [captured[n] for n in ("outer", "inner") if n in captured]
    return LayoutFigure(scheme, frames)


def figure1(*, seed: int = 77) -> Dict[str, LayoutFigure]:
    """Figure 1: SSP's single canary word vs P-SSP's (C0, C1) pair."""
    return {scheme: _capture_layout(scheme, seed=seed) for scheme in ("ssp", "pssp")}


def figure2(*, seed: int = 78) -> Dict[str, LayoutFigure]:
    """Figure 2: P-SSP shares one stack canary across frames; P-SSP-NT
    gives every frame its own."""
    return {
        scheme: _capture_layout(scheme, seed=seed)
        for scheme in ("pssp", "pssp-nt")
    }


def frames_share_canary(figure: LayoutFigure) -> bool:
    """True when all captured frames carry identical canary words."""
    sets = [tuple(v for _, v in frame.canary_words) for frame in figure.frames]
    return len(set(sets)) == 1


# ---------------------------------------------------------------------------
# Figures 3 & 4 — the modified __stack_chk_fail and the rewritten epilogue
# ---------------------------------------------------------------------------


@dataclass
class StackChkFigure:
    rewritten_epilogue: str
    stack_chk_listing: str

    def render(self) -> str:
        return (
            "rewritten function epilogue (Code 6):\n"
            + self.rewritten_epilogue
            + "\n\nmodified __stack_chk_fail (Figures 3/4):\n"
            + self.stack_chk_listing
        )


def figure3(*, source: Optional[str] = None) -> StackChkFigure:
    """Disassemble the rewriter's actual output."""
    from ..compiler.codegen import compile_source

    victim = source or _LAYOUT_SOURCE
    native = compile_source(victim, protection="ssp", name="fig3")
    rewritten = instrument_binary(native)
    outer = rewritten.function("outer")
    start = max(0, len(outer.body) - 12)
    epilogue_lines = [str(i) for i in outer.body[start:]]
    return StackChkFigure(
        rewritten_epilogue="\n".join(f"    {line}" for line in epilogue_lines),
        stack_chk_listing=build_stack_chk_function().disassemble(),
    )


# ---------------------------------------------------------------------------
# Figure 5 — per-program runtime overhead
# ---------------------------------------------------------------------------


@dataclass
class Figure5:
    #: program → (compiler overhead %, instrumentation overhead %)
    overheads: Dict[str, Tuple[float, float]]
    compiler_average: float
    instrumentation_average: float
    paper_averages = (0.24, 1.01)

    def render(self) -> str:
        lines = [f"{'program':12s} {'compiler%':>10s} {'instr%':>8s}"]
        for name, (compiler, instr) in self.overheads.items():
            lines.append(f"{name:12s} {compiler:10.3f} {instr:8.3f}")
        lines.append(
            f"{'AVERAGE':12s} {self.compiler_average:10.3f} "
            f"{self.instrumentation_average:8.3f}"
        )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV series for external plotting (program, compiler%, instr%)."""
        lines = ["program,compiler_overhead_pct,instrumentation_overhead_pct"]
        for name, (compiler, instr) in self.overheads.items():
            lines.append(f"{name},{compiler:.6f},{instr:.6f}")
        lines.append(
            f"AVERAGE,{self.compiler_average:.6f},"
            f"{self.instrumentation_average:.6f}"
        )
        return "\n".join(lines) + "\n"


def figure5(
    *,
    seed: int = 5,
    spec_names: Optional[Sequence[str]] = None,
) -> Figure5:
    """Regenerate Figure 5 over the (sub)suite.

    Baseline is the default build (SSP, as on the paper's Debian testbed);
    candidates are compiler-based P-SSP and instrumentation-based P-SSP.
    """
    programs = (
        SPEC_PROGRAMS
        if spec_names is None
        else [program(name) for name in spec_names]
    )
    overheads: Dict[str, Tuple[float, float]] = {}
    for spec_program in programs:
        base = run_program(spec_program.source, "ssp", name=spec_program.name,
                           seed=seed)
        compiled = run_program(spec_program.source, "pssp",
                               name=spec_program.name, seed=seed)
        instrumented = run_program(spec_program.source, "pssp-binary",
                                   name=spec_program.name, seed=seed)
        overheads[spec_program.name] = (
            overhead_percent(base, compiled),
            overhead_percent(base, instrumented),
        )
    return Figure5(
        overheads=overheads,
        compiler_average=mean(v[0] for v in overheads.values()),
        instrumentation_average=mean(v[1] for v in overheads.values()),
    )


# ---------------------------------------------------------------------------
# Figure 6 — the global-buffer variant
# ---------------------------------------------------------------------------


@dataclass
class Figure6:
    scheme: str
    #: Buffer entries observed at maximum call depth: (index, C1 value).
    buffer_entries: List[Tuple[int, int]]
    #: Stack canaries (C0 values) of the live frames, outermost first.
    stack_halves: List[int]
    tls_canary: int

    def consistent(self) -> bool:
        """Every (C0, C1) pair must XOR to the TLS canary."""
        if len(self.buffer_entries) < len(self.stack_halves):
            return False
        pairs = zip(self.stack_halves, (v for _, v in self.buffer_entries))
        return all((c0 ^ c1) == self.tls_canary for c0, c1 in pairs)

    def render(self) -> str:
        lines = [f"global-buffer variant ({self.scheme}):",
                 f"  TLS canary C = {self.tls_canary:#018x}"]
        for (index, c1), c0 in zip(self.buffer_entries, self.stack_halves):
            lines.append(
                f"  frame {index}: stack C0={c0:#018x}  buffer C1={c1:#018x}"
                f"  C0^C1==C: {(c0 ^ c1) == self.tls_canary}"
            )
        return "\n".join(lines)


def figure6(*, seed: int = 79) -> Figure6:
    """Run nested protected calls under pssp-gb and dump the side buffer."""
    kernel = Kernel(seed)
    binary = build(_LAYOUT_SOURCE, "pssp-gb", name="fig6")
    process, _ = deploy(kernel, binary, "pssp-gb")
    snapshot: Dict[str, object] = {}

    def trace(name: str, index: int, instruction) -> None:
        # Snapshot at maximum depth: while `inner` executes, both frames
        # are live and the buffer holds two entries.
        if name != "inner":
            return
        tls = process.tls
        count = tls.global_buffer_count
        if count < 2 or "entries" in snapshot:
            return
        base = tls.global_buffer_base
        snapshot["entries"] = [
            (i, process.memory.read_word(base + 8 * i)) for i in range(count)
        ]
        inner_rbp = process.registers.read("rbp")
        outer_rbp = process.memory.read_word(inner_rbp)
        snapshot["stack"] = [
            process.memory.read_word(outer_rbp - 8),
            process.memory.read_word(inner_rbp - 8),
        ]

    process.cpu.trace = trace
    process.run()
    process.cpu.trace = None
    return Figure6(
        scheme="pssp-gb",
        buffer_entries=snapshot.get("entries", []),
        stack_halves=snapshot.get("stack", []),
        tls_canary=process.tls.canary,
    )
