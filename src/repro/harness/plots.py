"""Terminal plots: ASCII bar charts for the figure data.

The paper presents Figure 5 as a bar chart; ``python -m repro figure 5
--plot`` renders the measured equivalent directly in the terminal, and
the sweep commands reuse the same renderer.  No plotting dependencies —
the charts are monospace text, sized to fit a standard 80-column view.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Glyph used for filled bar cells.
_BAR = "█"
_HALF = "▌"


def bar_chart(
    series: Sequence[Tuple[str, float]],
    *,
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Render one horizontal bar chart.

    ``series`` is (label, value) pairs; values must be non-negative.
    Bars scale to the maximum value; each row shows the numeric value.
    """
    if not series:
        return title
    label_width = max(len(label) for label, _ in series)
    peak = max(value for _, value in series) or 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in series:
        cells = value / peak * width
        filled = _BAR * int(cells)
        if cells - int(cells) >= 0.5:
            filled += _HALF
        lines.append(
            f"{label:<{label_width}s} |{filled:<{width}s}| "
            f"{value:.3f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Sequence[Tuple[str, float]]],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render several series under one shared scale."""
    peak = max(
        (value for series in groups.values() for _, value in series),
        default=1.0,
    ) or 1.0
    blocks: List[str] = []
    for name, series in groups.items():
        label_width = max((len(label) for label, _ in series), default=1)
        lines = [f"[{name}]"]
        for label, value in series:
            cells = value / peak * width
            filled = _BAR * int(cells)
            if cells - int(cells) >= 0.5:
                filled += _HALF
            lines.append(
                f"  {label:<{label_width}s} |{filled:<{width}s}| "
                f"{value:.3f}{unit}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def figure5_chart(figure5, *, width: int = 40) -> str:
    """Render a Figure-5 result as the paper's two bar series."""
    compiler_series = [
        (name, values[0]) for name, values in figure5.overheads.items()
    ]
    instr_series = [
        (name, values[1]) for name, values in figure5.overheads.items()
    ]
    chart = grouped_bar_chart(
        {
            "compiler-based P-SSP overhead": compiler_series,
            "instrumentation-based P-SSP overhead": instr_series,
        },
        width=width,
        unit="%",
    )
    return (
        chart
        + f"\n\naverages: compiler {figure5.compiler_average:.3f}%  "
        + f"instrumentation {figure5.instrumentation_average:.3f}%"
    )
