"""Compiler optimizations.

Two layers, both optional (``compile_source(..., optimize=True)``):

* **AST constant folding** — arithmetic/logic on literals, constant
  branch pruning.
* **Peephole** — a small set of *flag-safe* rewrites on generated code
  (``push R; pop S`` → ``mov S, R``; self-moves; jumps to the next
  instruction).  Patterns that would clobber condition flags are
  deliberately excluded: canary epilogues and comparison idioms depend on
  ZF surviving between producer and consumer.

There is also :func:`reorder_declarations`, which shuffles local-array
declaration order the way LLVM's optimizations reorder stack slots — the
phenomenon the paper flags as breaking naive local-variable canaries
(§V-E2).  Our P-SSP-LV pass owns the frame layout, so it keeps each
canary adjacent to its variable regardless of declaration order; the
tests demonstrate exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..crypto.random import EntropySource
from ..isa.instructions import Function, Instruction, Label, Reg, ins
from . import ast_nodes as ast

# ---------------------------------------------------------------------------
# AST constant folding
# ---------------------------------------------------------------------------

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: int(a / b) if b else None,
    "%": lambda a, b: a - int(a / b) * b if b else None,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def fold_expr(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
    """Recursively fold constant sub-expressions."""
    if expr is None:
        return None
    if isinstance(expr, ast.Binary):
        expr.left = fold_expr(expr.left)
        expr.right = fold_expr(expr.right)
        if isinstance(expr.left, ast.IntLiteral) and isinstance(
            expr.right, ast.IntLiteral
        ):
            op = _FOLDABLE.get(expr.op)
            if op is not None:
                value = op(expr.left.value, expr.right.value)
                if value is not None:
                    return ast.IntLiteral(line=expr.line, value=value)
        return expr
    if isinstance(expr, ast.Unary):
        expr.operand = fold_expr(expr.operand)
        if isinstance(expr.operand, ast.IntLiteral):
            if expr.op == "-":
                return ast.IntLiteral(line=expr.line, value=-expr.operand.value)
            if expr.op == "!":
                return ast.IntLiteral(line=expr.line,
                                      value=int(not expr.operand.value))
            if expr.op == "~":
                return ast.IntLiteral(line=expr.line, value=~expr.operand.value)
        return expr
    if isinstance(expr, ast.Assign):
        expr.value = fold_expr(expr.value)
        return expr
    if isinstance(expr, ast.Index):
        expr.array = fold_expr(expr.array)
        expr.index = fold_expr(expr.index)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [fold_expr(a) for a in expr.args]
        return expr
    return expr


def _fold_statements(statements: List[ast.Stmt]) -> List[ast.Stmt]:
    result: List[ast.Stmt] = []
    for statement in statements:
        if isinstance(statement, ast.Declaration):
            statement.init = fold_expr(statement.init)
            result.append(statement)
        elif isinstance(statement, ast.ExprStmt):
            statement.expr = fold_expr(statement.expr)
            result.append(statement)
        elif isinstance(statement, ast.Return):
            statement.value = fold_expr(statement.value)
            result.append(statement)
        elif isinstance(statement, ast.If):
            statement.cond = fold_expr(statement.cond)
            statement.then = _fold_statements(statement.then)
            statement.otherwise = _fold_statements(statement.otherwise)
            if isinstance(statement.cond, ast.IntLiteral):
                # Constant branch: keep only the live arm.  Declarations in
                # the dead arm must survive (they own frame slots), so the
                # arm is pruned only when it declares nothing.
                live = statement.then if statement.cond.value else statement.otherwise
                dead = statement.otherwise if statement.cond.value else statement.then
                if not _declares_anything(dead):
                    result.extend(live)
                    continue
            result.append(statement)
        elif isinstance(statement, ast.While):
            statement.cond = fold_expr(statement.cond)
            statement.body = _fold_statements(statement.body)
            result.append(statement)
        elif isinstance(statement, ast.For):
            if isinstance(statement.init, ast.ExprStmt):
                statement.init.expr = fold_expr(statement.init.expr)
            elif isinstance(statement.init, ast.Declaration):
                statement.init.init = fold_expr(statement.init.init)
            statement.cond = fold_expr(statement.cond)
            statement.step = fold_expr(statement.step)
            statement.body = _fold_statements(statement.body)
            result.append(statement)
        else:
            result.append(statement)
    return result


def _declares_anything(statements: List[ast.Stmt]) -> bool:
    for statement in statements:
        if isinstance(statement, ast.Declaration):
            return True
        if isinstance(statement, ast.If):
            if _declares_anything(statement.then) or _declares_anything(
                statement.otherwise
            ):
                return True
        if isinstance(statement, (ast.While,)) and _declares_anything(statement.body):
            return True
        if isinstance(statement, ast.For):
            if isinstance(statement.init, ast.Declaration):
                return True
            if _declares_anything(statement.body):
                return True
    return False


def fold_program(program: ast.Program) -> ast.Program:
    """Fold constants across every function (in place; returns program)."""
    for function in program.functions:
        function.body = _fold_statements(function.body)
    return program


# ---------------------------------------------------------------------------
# peephole
# ---------------------------------------------------------------------------


def peephole(function: Function) -> Function:
    """Apply flag-safe peephole rewrites; labels are re-indexed."""
    body = list(function.body)
    labels = dict(function.labels)
    changed = True
    while changed:
        changed = False
        new_body: List[Instruction] = []
        remap: Dict[int, int] = {}
        skip_next = False
        for index, instruction in enumerate(body):
            remap[index] = len(new_body)
            if skip_next:
                skip_next = False
                continue
            nxt = body[index + 1] if index + 1 < len(body) else None
            # push R ; pop S  →  mov S, R   (or nothing when R == S)
            if (
                instruction.op == "push"
                and nxt is not None
                and nxt.op == "pop"
                and isinstance(instruction.operands[0], Reg)
                and isinstance(nxt.operands[0], Reg)
                and not _label_between(labels, index + 1)
            ):
                src = instruction.operands[0]
                dst = nxt.operands[0]
                if src.name != dst.name:
                    new_body.append(ins("mov", dst, src, note="peephole"))
                skip_next = True
                changed = True
                continue
            # mov R, R  →  (drop)
            if (
                instruction.op == "mov"
                and len(instruction.operands) == 2
                and isinstance(instruction.operands[0], Reg)
                and isinstance(instruction.operands[1], Reg)
                and instruction.operands[0] == instruction.operands[1]
            ):
                changed = True
                continue
            # jmp .L where .L is the very next position  →  (drop)
            if (
                instruction.op == "jmp"
                and isinstance(instruction.operands[0], Label)
                and labels.get(instruction.operands[0].name) == index + 1
            ):
                changed = True
                continue
            new_body.append(instruction)
        remap[len(body)] = len(new_body)
        labels = {name: remap[idx] for name, idx in labels.items()}
        body = new_body
    optimized = Function(function.name, body, labels)
    optimized.protected = function.protected
    optimized.has_buffer = function.has_buffer
    optimized.frame_size = function.frame_size
    optimized.meta = dict(function.meta)
    return optimized


def _label_between(labels: Dict[str, int], index: int) -> bool:
    """True if any label lands exactly at ``index`` (a jump target sits
    between the two instructions, so fusing them would change behaviour)."""
    return any(position == index for position in labels.values())


# ---------------------------------------------------------------------------
# declaration reordering (the LLVM behaviour §V-E2 warns about)
# ---------------------------------------------------------------------------


def reorder_declarations(program: ast.Program, entropy: EntropySource) -> ast.Program:
    """Shuffle each function's top-level array declarations in place.

    Models optimizing compilers reordering stack slots.  Breaks any
    scheme that assumes source order == stack order; P-SSP-LV survives
    because its pass assigns layout from the (reordered) declaration list
    itself, keeping every canary adjacent to its variable.
    """
    for function in program.functions:
        indices = [
            i for i, statement in enumerate(function.body)
            if isinstance(statement, ast.Declaration) and statement.ctype.is_array
        ]
        declarations = [function.body[i] for i in indices]
        entropy.shuffle(declarations)
        for position, declaration in zip(indices, declarations):
            function.body[position] = declaration
    return program
