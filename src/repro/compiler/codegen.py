"""MiniC code generation.

A deliberately simple one-pass code generator: expression values travel in
``rax``, temporaries ride the hardware stack (``push``/``pop``), locals
live at fixed ``rbp``-relative slots assigned by the protection pass's
frame plan.  Simplicity keeps the generated code *predictable*, which is
what the binary rewriter's pattern matcher and the cycle-accounting
experiments need.

Function shape::

    push rbp
    mov rbp, rsp
    sub rsp, <frame>
    <parameter spills>
    <protection-pass prologue>       ; canary setup
    <body>
    xor rax, rax                     ; implicit return 0
  .Lret:
    <protection-pass epilogue check> ; canary verification
    leave
    ret

``return`` statements evaluate into ``rax`` and jump to ``.Lret`` so the
canary check guards *every* exit, as the paper's pass does by inserting
the epilogue "right before each ret instruction".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt.elf import DYNAMIC, Binary
from ..errors import CompileError
from ..isa.instructions import Function, Imm, Label, Mem, Reg, Sym
from ..isa.registers import ARG_REGS
from . import ast_nodes as ast
from .builder import AsmBuilder
from .parser import parse
from .passes.base import FramePlan, ProtectionPass
from .passes.manager import get_pass

_RETURN_LABEL = ".Lret"


class _FunctionEmitter:
    """Emits one function."""

    def __init__(
        self,
        decl: ast.FunctionDecl,
        protection: ProtectionPass,
        program: ast.Program,
        rodata: Dict[str, bytes],
    ) -> None:
        self.decl = decl
        self.protection = protection
        self.program = program
        self.rodata = rodata
        self.plan: FramePlan = protection.plan_frame(decl)
        self.function = Function(decl.name)
        self.function.has_buffer = decl.has_buffer()
        self.function.frame_size = self.plan.frame_size
        if self.plan.protected:
            self.function.protected = protection.name
        self.function.meta = {
            "canary_slots": list(self.plan.canary_slots),
            "buffers": {
                name: (var.offset, var.ctype.size)
                for name, var in self.plan.vars.items()
                if var.ctype.is_array
            },
            "owf_nonce_offset": self.plan.owf_nonce_offset,
            "owf_cipher_offset": self.plan.owf_cipher_offset,
        }
        self.builder = AsmBuilder(self.function)
        #: (break_label, continue_label) stack for loops.
        self._loops: List[Tuple[str, str]] = []
        self._string_counter = len(rodata)

    # -- helpers ------------------------------------------------------------

    def _emit(self, op: str, *operands, note: str = "") -> None:
        self.builder.emit(op, *operands, note=note)

    def _var(self, name: str):
        try:
            return self.plan.var(name)
        except KeyError:
            raise CompileError(
                f"{self.decl.name}: undeclared variable {name!r}"
            ) from None

    def _intern_string(self, text: str) -> str:
        blob = text.encode("utf-8") + b"\x00"
        for symbol, existing in self.rodata.items():
            if existing == blob:
                return symbol
        symbol = f"str_lit_{len(self.rodata)}"
        self.rodata[symbol] = blob
        return symbol

    # -- top level -----------------------------------------------------------

    def emit_function(self) -> Function:
        self._emit("push", Reg("rbp"), note="frame")
        self._emit("mov", Reg("rbp"), Reg("rsp"), note="frame")
        if self.plan.frame_size:
            self._emit("sub", Reg("rsp"), Imm(self.plan.frame_size), note="frame")
        for param, register in zip(self.decl.params, ARG_REGS):
            slot = self.plan.var(param.name)
            self._emit("mov", Mem(base="rbp", disp=-slot.offset), Reg(register),
                       note="spill")
        self.protection.emit_prologue(self.builder, self.plan)
        for statement in self.decl.body:
            self.gen_statement(statement)
        self._emit("xor", Reg("rax"), Reg("rax"), note="implicit-return")
        self.builder.label(_RETURN_LABEL)
        self.protection.emit_epilogue_check(self.builder, self.plan)
        self._emit("leave", note="frame")
        self._emit("ret", note="frame")
        return self.function

    # -- statements -----------------------------------------------------------

    def gen_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Declaration):
            if statement.init is not None:
                target = ast.VarRef(line=statement.line, name=statement.name)
                self.gen_value(
                    ast.Assign(line=statement.line, target=target,
                               value=statement.init)
                )
            return
        if isinstance(statement, ast.ExprStmt):
            self.gen_value(statement.expr)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self.gen_value(statement.value)
            else:
                self._emit("xor", Reg("rax"), Reg("rax"))
            self._emit("jmp", Label(_RETURN_LABEL))
            return
        if isinstance(statement, ast.If):
            self.gen_if(statement)
            return
        if isinstance(statement, ast.While):
            self.gen_while(statement)
            return
        if isinstance(statement, ast.For):
            self.gen_for(statement)
            return
        if isinstance(statement, ast.Break):
            if not self._loops:
                raise CompileError("break outside a loop", statement.line)
            self._emit("jmp", Label(self._loops[-1][0]))
            return
        if isinstance(statement, ast.Continue):
            if not self._loops:
                raise CompileError("continue outside a loop", statement.line)
            self._emit("jmp", Label(self._loops[-1][1]))
            return
        raise CompileError(f"cannot generate statement {statement!r}", statement.line)

    def gen_if(self, statement: ast.If) -> None:
        else_label = self.builder.fresh("else")
        end_label = self.builder.fresh("endif")
        self.gen_value(statement.cond)
        self._emit("test", Reg("rax"), Reg("rax"))
        self._emit("je", Label(else_label))
        for inner in statement.then:
            self.gen_statement(inner)
        self._emit("jmp", Label(end_label))
        self.builder.label(else_label)
        for inner in statement.otherwise:
            self.gen_statement(inner)
        self.builder.label(end_label)

    def gen_while(self, statement: ast.While) -> None:
        head = self.builder.fresh("while")
        end = self.builder.fresh("wend")
        self.builder.label(head)
        self.gen_value(statement.cond)
        self._emit("test", Reg("rax"), Reg("rax"))
        self._emit("je", Label(end))
        self._loops.append((end, head))
        for inner in statement.body:
            self.gen_statement(inner)
        self._loops.pop()
        self._emit("jmp", Label(head))
        self.builder.label(end)

    def gen_for(self, statement: ast.For) -> None:
        head = self.builder.fresh("for")
        step_label = self.builder.fresh("fstep")
        end = self.builder.fresh("fend")
        if statement.init is not None:
            self.gen_statement(statement.init)
        self.builder.label(head)
        if statement.cond is not None:
            self.gen_value(statement.cond)
            self._emit("test", Reg("rax"), Reg("rax"))
            self._emit("je", Label(end))
        self._loops.append((end, step_label))
        for inner in statement.body:
            self.gen_statement(inner)
        self._loops.pop()
        self.builder.label(step_label)
        if statement.step is not None:
            self.gen_value(statement.step)
        self._emit("jmp", Label(head))
        self.builder.label(end)

    # -- lvalues -----------------------------------------------------------------

    def gen_address(self, expr: ast.Expr) -> ast.Type:
        """Emit code leaving an object's address in rax; return its type."""
        if isinstance(expr, ast.VarRef):
            var = self._var(expr.name)
            self._emit("lea", Reg("rax"), Mem(base="rbp", disp=-var.offset))
            return var.ctype
        if isinstance(expr, ast.Index):
            element = self._gen_index_address(expr)
            return element
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointee_holder = self.gen_value(expr.operand)
            if not (pointee_holder.is_pointer or pointee_holder.is_array):
                raise CompileError("dereference of a non-pointer", expr.line)
            return pointee_holder.decay().element()
        raise CompileError("expression is not assignable", expr.line)

    def _gen_index_address(self, expr: ast.Index) -> ast.Type:
        base_type = self.gen_value(expr.array)
        if not (base_type.is_pointer or base_type.is_array):
            raise CompileError("subscript of a non-array", expr.line)
        element = base_type.decay().element()
        self._emit("push", Reg("rax"))
        self.gen_value(expr.index)
        self._emit("mov", Reg("rcx"), Reg("rax"))
        self._emit("pop", Reg("rax"))
        if element.size == 8:
            self._emit("shl", Reg("rcx"), Imm(3))
        elif element.size != 1:
            self._emit("imul", Reg("rcx"), Imm(element.size))
        self._emit("add", Reg("rax"), Reg("rcx"))
        return element

    def _load(self, ctype: ast.Type) -> None:
        """Load from the address in rax, honoring the access width."""
        if ctype.access_width == 1:
            self._emit("movzxb", Reg("rax"), Mem(base="rax"))
        else:
            self._emit("mov", Reg("rax"), Mem(base="rax"))

    # -- rvalues -----------------------------------------------------------------

    def gen_value(self, expr: ast.Expr) -> ast.Type:
        """Emit code leaving the expression value in rax; return its type."""
        if isinstance(expr, ast.IntLiteral):
            self._emit("mov", Reg("rax"), Imm(expr.value))
            return ast.INT
        if isinstance(expr, ast.StringLiteral):
            symbol = self._intern_string(expr.value)
            self._emit("lea", Reg("rax"), Sym(symbol))
            return ast.Type("char", 1)
        if isinstance(expr, ast.VarRef):
            if expr.name not in self.plan.vars:
                # Not a local: a reference to another function in this
                # translation unit yields its address (function pointers
                # for pthread_create and friends); anything else is a
                # genuine undeclared identifier.
                if any(f.name == expr.name for f in self.program.functions):
                    self._emit("lea", Reg("rax"), Sym(expr.name))
                    return ast.Type("void", 1)
            var = self._var(expr.name)
            if var.ctype.is_array:
                self._emit("lea", Reg("rax"), Mem(base="rbp", disp=-var.offset))
                return var.ctype.decay()
            if var.ctype.access_width == 1:
                self._emit("movzxb", Reg("rax"), Mem(base="rbp", disp=-var.offset))
            else:
                self._emit("mov", Reg("rax"), Mem(base="rbp", disp=-var.offset))
            return var.ctype
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self.gen_assign(expr)
        if isinstance(expr, ast.Index):
            element = self._gen_index_address(expr)
            if element.is_array:
                return element.decay()
            self._load(element)
            return element
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        raise CompileError(f"cannot generate expression {expr!r}", expr.line)

    def gen_unary(self, expr: ast.Unary) -> ast.Type:
        if expr.op == "&":
            ctype = self.gen_address(expr.operand)
            return ctype.decay() if ctype.is_array else ast.Type(
                ctype.base, ctype.pointer + 1
            )
        if expr.op == "*":
            base_type = self.gen_value(expr.operand)
            if not (base_type.is_pointer or base_type.is_array):
                raise CompileError("dereference of a non-pointer", expr.line)
            element = base_type.decay().element()
            self._load(element)
            return element
        if expr.op == "-":
            self.gen_value(expr.operand)
            self._emit("neg", Reg("rax"))
            return ast.INT
        if expr.op == "~":
            self.gen_value(expr.operand)
            self._emit("not", Reg("rax"))
            return ast.INT
        if expr.op == "!":
            self.gen_value(expr.operand)
            true_label = self.builder.fresh("not")
            self._emit("test", Reg("rax"), Reg("rax"))
            self._emit("mov", Reg("rax"), Imm(1))
            self._emit("je", Label(true_label))
            self._emit("mov", Reg("rax"), Imm(0))
            self.builder.label(true_label)
            return ast.INT
        raise CompileError(f"unknown unary operator {expr.op!r}", expr.line)

    _COMPARISONS = {"==": "je", "!=": "jne", "<": "jl", "<=": "jle",
                    ">": "jg", ">=": "jge"}

    def gen_binary(self, expr: ast.Binary) -> ast.Type:
        if expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        left_type = self.gen_value(expr.left)
        self._emit("push", Reg("rax"))
        right_type = self.gen_value(expr.right)
        self._emit("mov", Reg("rcx"), Reg("rax"))
        self._emit("pop", Reg("rax"))

        if expr.op in self._COMPARISONS:
            done = self.builder.fresh("cmp")
            self._emit("cmp", Reg("rax"), Reg("rcx"))
            self._emit("mov", Reg("rax"), Imm(1))
            self._emit(self._COMPARISONS[expr.op], Label(done))
            self._emit("mov", Reg("rax"), Imm(0))
            self.builder.label(done)
            return ast.INT

        pointerish = left_type.is_pointer or left_type.is_array
        right_pointerish = right_type.is_pointer or right_type.is_array
        if expr.op == "-" and pointerish and right_pointerish:
            # Pointer difference: byte delta divided by the element size.
            element = left_type.decay().element()
            self._emit("sub", Reg("rax"), Reg("rcx"))
            if element.size == 8:
                self._emit("sar", Reg("rax"), Imm(3))
            elif element.size != 1:
                self._emit("mov", Reg("rcx"), Imm(element.size))
                self._emit("idiv", Reg("rcx"))
            return ast.INT
        if expr.op in ("+", "-") and pointerish:
            element = left_type.decay().element()
            if element.size == 8:
                self._emit("shl", Reg("rcx"), Imm(3))
            elif element.size != 1:
                self._emit("imul", Reg("rcx"), Imm(element.size))
            self._emit("add" if expr.op == "+" else "sub", Reg("rax"), Reg("rcx"))
            return left_type.decay()

        simple = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
                  "<<": "shl", ">>": "shr", "*": "imul"}
        if expr.op in simple:
            self._emit(simple[expr.op], Reg("rax"), Reg("rcx"))
            return ast.INT
        if expr.op in ("/", "%"):
            self._emit("idiv", Reg("rcx"))
            if expr.op == "%":
                self._emit("mov", Reg("rax"), Reg("rdx"))
            return ast.INT
        raise CompileError(f"unknown binary operator {expr.op!r}", expr.line)

    def _gen_logical(self, expr: ast.Binary) -> ast.Type:
        false_label = self.builder.fresh("sc_false")
        true_label = self.builder.fresh("sc_true")
        end_label = self.builder.fresh("sc_end")
        if expr.op == "&&":
            self.gen_value(expr.left)
            self._emit("test", Reg("rax"), Reg("rax"))
            self._emit("je", Label(false_label))
            self.gen_value(expr.right)
            self._emit("test", Reg("rax"), Reg("rax"))
            self._emit("je", Label(false_label))
            self._emit("mov", Reg("rax"), Imm(1))
            self._emit("jmp", Label(end_label))
            self.builder.label(false_label)
            self._emit("mov", Reg("rax"), Imm(0))
            self.builder.label(end_label)
            self.builder.label(true_label)  # unused but keeps labels defined
            return ast.INT
        self.gen_value(expr.left)
        self._emit("test", Reg("rax"), Reg("rax"))
        self._emit("jne", Label(true_label))
        self.gen_value(expr.right)
        self._emit("test", Reg("rax"), Reg("rax"))
        self._emit("jne", Label(true_label))
        self._emit("mov", Reg("rax"), Imm(0))
        self._emit("jmp", Label(end_label))
        self.builder.label(true_label)
        self._emit("mov", Reg("rax"), Imm(1))
        self.builder.label(end_label)
        self.builder.label(false_label)
        return ast.INT

    def gen_assign(self, expr: ast.Assign) -> ast.Type:
        target_type = self.gen_address(expr.target)
        self._emit("push", Reg("rax"))
        self.gen_value(expr.value)
        self._emit("pop", Reg("rcx"))
        if target_type.access_width == 1:
            self._emit("movb", Mem(base="rcx"), Reg("rax"))
        else:
            self._emit("mov", Mem(base="rcx"), Reg("rax"))
        return target_type

    def gen_call(self, expr: ast.Call) -> ast.Type:
        if len(expr.args) > len(ARG_REGS):
            raise CompileError(
                f"call to {expr.name}: more than {len(ARG_REGS)} arguments",
                expr.line,
            )
        for argument in expr.args:
            self.gen_value(argument)
            self._emit("push", Reg("rax"))
        for register in reversed(ARG_REGS[: len(expr.args)]):
            self._emit("pop", Reg(register))
        self._emit("call", Sym(expr.name))
        self.protection.post_call_check(self.builder, self.plan, expr.name)
        return ast.INT


def compile_program(
    program: ast.Program,
    *,
    protection: "str | ProtectionPass | None" = "ssp",
    name: str = "a.out",
    link_type: str = DYNAMIC,
    entry: str = "main",
    optimize: bool = False,
) -> Binary:
    """Compile a parsed program into a :class:`Binary`.

    ``optimize`` enables constant folding and the flag-safe peephole
    (``repro.compiler.optimizer``).  Off by default so measured numbers
    correspond to the straightforward -O0-style code the experiments are
    calibrated on.
    """
    protection_pass = get_pass(protection)
    if optimize:
        from .optimizer import fold_program

        program = fold_program(program)
    binary = Binary(name, entry=entry, link_type=link_type,
                    protection=protection_pass.name)
    rodata: Dict[str, bytes] = {}
    for decl in program.functions:
        emitter = _FunctionEmitter(decl, protection_pass, program, rodata)
        function = emitter.emit_function()
        if optimize:
            from .optimizer import peephole

            function = peephole(function)
        binary.add_function(function)
    binary.rodata.update(rodata)
    return binary


def compile_source(
    source: str,
    *,
    protection: "str | ProtectionPass | None" = "ssp",
    name: str = "a.out",
    link_type: str = DYNAMIC,
    entry: str = "main",
    optimize: bool = False,
) -> Binary:
    """Compile MiniC source text into a :class:`Binary`.

    ``protection`` selects the registered pass by name (``"ssp"``,
    ``"pssp"``, ``"pssp-nt"``, ``"pssp-lv"``, ``"pssp-owf"``,
    ``"pssp-gb"``, ``"dynaguard"``, ``"dcr"``) or ``None`` for an
    unprotected build.
    """
    return compile_program(
        parse(source), protection=protection, name=name,
        link_type=link_type, entry=entry, optimize=optimize,
    )
