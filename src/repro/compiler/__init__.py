"""MiniC compiler: frontend, code generation, and protection passes."""

from .ast_nodes import FunctionDecl, Program, Type
from .codegen import compile_program, compile_source
from .lexer import tokenize
from .parser import parse
from .passes.base import FramePlan, NoProtection, ProtectionPass
from .passes.manager import available_passes, get_pass, register_pass

__all__ = [
    "FramePlan",
    "FunctionDecl",
    "NoProtection",
    "Program",
    "ProtectionPass",
    "Type",
    "available_passes",
    "compile_program",
    "compile_source",
    "get_pass",
    "parse",
    "register_pass",
    "tokenize",
]
