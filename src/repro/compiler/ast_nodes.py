"""AST node definitions and the MiniC type model.

Types are deliberately small: 64-bit ``int``, 8-bit ``char``, pointers to
either, and fixed-size arrays of either.  Arrays decay to pointers in
expression position, as in C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A MiniC type.

    ``base`` is ``int``, ``char``, or ``void``; ``pointer`` counts
    indirections; ``array_length`` is set for array-typed declarations.
    """

    base: str = "int"
    pointer: int = 0
    array_length: Optional[int] = None

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0

    @property
    def is_array(self) -> bool:
        return self.array_length is not None

    def element(self) -> "Type":
        """The pointee/element type of a pointer or array."""
        if self.is_array:
            return Type(self.base, self.pointer)
        if self.is_pointer:
            return Type(self.base, self.pointer - 1)
        raise ValueError(f"{self} has no element type")

    def decay(self) -> "Type":
        """Array-to-pointer decay."""
        if self.is_array:
            return Type(self.base, self.pointer + 1)
        return self

    @property
    def size(self) -> int:
        """Byte size of one object of this type."""
        if self.is_array:
            return self.array_length * self.element().size
        if self.is_pointer:
            return 8
        return {"int": 8, "char": 1, "void": 0}[self.base]

    @property
    def access_width(self) -> int:
        """Load/store width for scalar accesses (1 for char, else 8)."""
        if self.is_pointer or self.base == "int":
            return 8
        return 1

    def __str__(self) -> str:
        text = self.base + "*" * self.pointer
        if self.is_array:
            text += f"[{self.array_length}]"
        return text


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class; ``ctype`` is filled in during type annotation."""

    line: int = 0
    ctype: Type = INT


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""
    #: rodata symbol assigned during codegen.
    symbol: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~', '*', '&'
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    target: Optional[Expr] = None  # VarRef, Index, or Unary('*')
    value: Optional[Expr] = None


@dataclass
class Index(Expr):
    array: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Declaration(Stmt):
    name: str = ""
    ctype: Type = INT
    init: Optional[Expr] = None
    #: P-SSP-LV: declared with the ``critical`` qualifier.
    critical: bool = False


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: List[Stmt] = field(default_factory=list)
    otherwise: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: Type


@dataclass
class FunctionDecl:
    """One function definition."""

    name: str
    return_type: Type
    params: List[Param]
    body: List[Stmt]
    line: int = 0

    def local_declarations(self) -> List[Declaration]:
        """All declarations anywhere in the body, in source order."""
        found: List[Declaration] = []

        def walk(statements: List[Stmt]) -> None:
            for statement in statements:
                if isinstance(statement, Declaration):
                    found.append(statement)
                elif isinstance(statement, If):
                    walk(statement.then)
                    walk(statement.otherwise)
                elif isinstance(statement, While):
                    walk(statement.body)
                elif isinstance(statement, For):
                    if isinstance(statement.init, Declaration):
                        found.append(statement.init)
                    walk(statement.body)

        walk(self.body)
        return found

    def has_buffer(self) -> bool:
        """True if any local is a (char or int) array — the condition the
        paper's pass uses to decide whether to protect a function."""
        return any(d.ctype.is_array for d in self.local_declarations())


@dataclass
class Program:
    """A parsed translation unit."""

    functions: List[FunctionDecl] = field(default_factory=list)

    def function(self, name: str) -> FunctionDecl:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)
