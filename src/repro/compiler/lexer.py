"""Lexer for MiniC, the small C dialect the workloads are written in.

MiniC covers what the paper's benchmark programs and vulnerable servers
need: ``int``/``char`` (and pointers/arrays of them), functions, the usual
statements and operators, string/char literals, and one extension — the
``critical`` storage qualifier marking variables for P-SSP-LV protection
(the paper's §V-E2 "manually identify sensitive variables").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import CompileError

KEYWORDS = frozenset(
    (
        "int",
        "char",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "critical",
    )
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
)

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"', "r": "\r"}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'int', 'ident', 'string', 'char', 'op', 'kw', 'eof'
    text: str
    value: int = 0
    line: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source, raising :class:`CompileError` on bad input."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        char = source[i]
        if char == "\n":
            line += 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if char.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", source[i:j], value, line))
            i = j
            continue
        if char.isalpha() or char == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, line))
            i = j
            continue
        if char == '"':
            value_chars, i = _scan_quoted(source, i, '"', line)
            tokens.append(Token("string", value_chars, 0, line))
            continue
        if char == "'":
            value_chars, i = _scan_quoted(source, i, "'", line)
            if len(value_chars) != 1:
                raise CompileError(f"bad char literal {value_chars!r}", line)
            tokens.append(Token("char", value_chars, ord(value_chars), line))
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, i):
                tokens.append(Token("op", operator, 0, line))
                i += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", 0, line))
    return tokens


def _scan_quoted(source: str, start: int, quote: str, line: int) -> "tuple[str, int]":
    """Scan a quoted literal starting at ``start``; return (text, next_i)."""
    out: List[str] = []
    i = start + 1
    n = len(source)
    while i < n:
        char = source[i]
        if char == quote:
            return "".join(out), i + 1
        if char == "\n":
            raise CompileError("newline in literal", line)
        if char == "\\":
            if i + 1 >= n:
                raise CompileError("dangling escape", line)
            escape = source[i + 1]
            if escape not in _ESCAPES:
                raise CompileError(f"unknown escape \\{escape}", line)
            out.append(_ESCAPES[escape])
            i += 2
            continue
        out.append(char)
        i += 1
    raise CompileError("unterminated literal", line)


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        """Look at the current (or a later) token without consuming."""
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        """Consume and return the current token."""
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept(self, kind: str, text: str = "") -> "Token | None":
        """Consume the current token iff it matches; else return None."""
        token = self.peek()
        if token.kind == kind and (not text or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: str = "") -> Token:
        """Consume a token of the given kind/text or raise."""
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise CompileError(
                f"expected {wanted!r}, found {actual.text or actual.kind!r}",
                actual.line,
            )
        return token

    def at(self, kind: str, text: str = "") -> bool:
        """True if the current token matches."""
        token = self.peek()
        return token.kind == kind and (not text or token.text == text)
