"""P-SSP-NT: per-call re-randomization, no TLS update (paper §IV-A, Code 7).

Every prologue draws a fresh ``C0`` with ``rdrand`` and stores
``C1 = C0 ⊕ C`` next to it; the epilogue is identical to P-SSP's.  No
preload library, no fork wrapper, no TLS layout change — the easiest
scheme to deploy, at the price of ~340 ``rdrand`` cycles per protected
call (Table V).

The plain pass trusts the ISA contract blindly: ``rdrand`` leaves CF=0
and ``rax = 0`` on failure, so a starved DRBG silently degrades the pair
to ``(0, C)`` — a *predictable* canary.  :class:`PSSPNTHardenedPass`
closes that hole with a bounded retry loop (``nop`` pause between
attempts, Intel's recommended shape) and a fail-closed fallback onto the
TLS shadow pair, which its runtime keeps initialised exactly like
compiler-mode P-SSP.
"""

from __future__ import annotations

from ...faults.policy import RDRAND_RETRY_LIMIT
from ...isa.instructions import Imm, Label, Mem, Reg
from ...machine.tls import CANARY_OFFSET, SHADOW_C0_OFFSET, SHADOW_C1_OFFSET
from .base import FramePlan
from .pssp import PSSPPass


class PSSPNTPass(PSSPPass):
    """Polymorphic SSP without TLS update: per-frame canaries."""

    name = "pssp-nt"

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        c0_slot, c1_slot = plan.canary_slots[0], plan.canary_slots[1]
        builder.emit("rdrand", Reg("rax"), note="pssp-nt-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c0_slot), Reg("rax"),
                     note="pssp-nt-prologue")
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note="pssp-nt-prologue")
        builder.emit("xor", Reg("rcx"), Reg("rax"), note="pssp-nt-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c1_slot), Reg("rcx"),
                     note="pssp-nt-prologue")
        builder.emit("xor", Reg("rax"), Reg("rax"), note="pssp-nt-prologue")
        builder.emit("xor", Reg("rcx"), Reg("rcx"), note="pssp-nt-prologue")

    def runtime(self):
        return None  # the whole point: no runtime support needed


class PSSPNTHardenedPass(PSSPNTPass):
    """P-SSP-NT with a degradation-aware prologue.

    Fresh path: up to :data:`RDRAND_RETRY_LIMIT` ``rdrand`` attempts
    (CF checked with ``jb``) before giving up on per-call entropy.
    Fallback path: load the TLS shadow pair — maintained by
    :class:`~repro.core.schemes.HardenedNTRuntime`'s preload — so the
    frame still carries an unpredictable, ``C``-bound pair.  Instruction
    notes distinguish the two stores ("…-hardened-c0" vs "…-fallback-c0")
    so the chaos auditor can tell a fresh draw from a fallback and flag
    any zero/stuck canary that slips through.
    """

    name = "pssp-nt-hardened"

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        c0_slot, c1_slot = plan.canary_slots[0], plan.canary_slots[1]
        note = "pssp-nt-hardened"
        retry = builder.fresh("ntrh_retry")
        fresh_ok = builder.fresh("ntrh_ok")
        done = builder.fresh("ntrh_done")
        # rdx is free here: parameters are spilled to frame slots before
        # the protection prologue runs (codegen emits spills first).
        builder.emit("mov", Reg("rdx"), Imm(RDRAND_RETRY_LIMIT), note=note)
        builder.label(retry)
        builder.emit("rdrand", Reg("rax"), note=note)
        builder.emit("jb", Label(fresh_ok), note=note)
        builder.emit("nop", note=note)  # pause-style backoff between attempts
        builder.emit("dec", Reg("rdx"), note=note)
        builder.emit("jne", Label(retry), note=note)
        # Retry budget exhausted: fail closed onto the TLS shadow pair.
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C0_OFFSET),
                     note="pssp-nt-fallback")
        builder.emit("mov", Mem(base="rbp", disp=-c0_slot), Reg("rax"),
                     note="pssp-nt-fallback-c0")
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=SHADOW_C1_OFFSET),
                     note="pssp-nt-fallback")
        builder.emit("mov", Mem(base="rbp", disp=-c1_slot), Reg("rcx"),
                     note="pssp-nt-fallback")
        builder.emit("jmp", Label(done), note=note)
        builder.label(fresh_ok)
        builder.emit("mov", Mem(base="rbp", disp=-c0_slot), Reg("rax"),
                     note="pssp-nt-hardened-c0")
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note=note)
        builder.emit("xor", Reg("rcx"), Reg("rax"), note=note)
        builder.emit("mov", Mem(base="rbp", disp=-c1_slot), Reg("rcx"),
                     note=note)
        builder.label(done)
        builder.emit("xor", Reg("rax"), Reg("rax"), note=note)
        builder.emit("xor", Reg("rcx"), Reg("rcx"), note=note)
        builder.emit("xor", Reg("rdx"), Reg("rdx"), note=note)

    def runtime(self):
        from ...core.schemes import HardenedNTRuntime

        return HardenedNTRuntime()
