"""P-SSP-NT: per-call re-randomization, no TLS update (paper §IV-A, Code 7).

Every prologue draws a fresh ``C0`` with ``rdrand`` and stores
``C1 = C0 ⊕ C`` next to it; the epilogue is identical to P-SSP's.  No
preload library, no fork wrapper, no TLS layout change — the easiest
scheme to deploy, at the price of ~340 ``rdrand`` cycles per protected
call (Table V).
"""

from __future__ import annotations

from ...isa.instructions import Mem, Reg
from ...machine.tls import CANARY_OFFSET
from .base import FramePlan
from .pssp import PSSPPass


class PSSPNTPass(PSSPPass):
    """Polymorphic SSP without TLS update: per-frame canaries."""

    name = "pssp-nt"

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        c0_slot, c1_slot = plan.canary_slots[0], plan.canary_slots[1]
        builder.emit("rdrand", Reg("rax"), note="pssp-nt-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c0_slot), Reg("rax"),
                     note="pssp-nt-prologue")
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note="pssp-nt-prologue")
        builder.emit("xor", Reg("rcx"), Reg("rax"), note="pssp-nt-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c1_slot), Reg("rcx"),
                     note="pssp-nt-prologue")
        builder.emit("xor", Reg("rax"), Reg("rax"), note="pssp-nt-prologue")
        builder.emit("xor", Reg("rcx"), Reg("rcx"), note="pssp-nt-prologue")

    def runtime(self):
        return None  # the whole point: no runtime support needed
