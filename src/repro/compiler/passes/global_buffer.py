"""The 64-bit global-buffer variant (paper §VII-C, Figure 6).

Addresses the instrumentation path's entropy loss without growing the
frame: the stack keeps a single 64-bit word ``C0`` (SSP-compatible
layout), while the matching ``C1 = C0 ⊕ C`` half lives in a per-thread
side buffer that fork clones along with the rest of the address space.
The prologue pushes a fresh ``C0``/``C1`` pair per call; the epilogue pops
the buffer and verifies ``C0 ⊕ C1 == C``.
"""

from __future__ import annotations

from ...isa.instructions import Label, Mem, Reg, Sym
from ...machine.tls import (
    CANARY_OFFSET,
    GLOBAL_BUFFER_BASE_OFFSET,
    GLOBAL_BUFFER_COUNT_OFFSET,
)
from .base import FramePlan
from .ssp import SSPPass


class GlobalBufferPass(SSPPass):
    """P-SSP with full-width canaries and a per-thread side buffer."""

    name = "pssp-gb"

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "pssp-gb-prologue"
        slot = plan.canary_slots[0]
        builder.emit("rdrand", Reg("rax"), note=note)
        builder.emit("mov", Mem(base="rbp", disp=-slot), Reg("rax"), note=note)
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=CANARY_OFFSET), note=note)
        builder.emit("xor", Reg("rcx"), Reg("rax"), note=note)
        builder.emit("mov", Reg("rdx"), Mem(seg="fs", disp=GLOBAL_BUFFER_BASE_OFFSET),
                     note=note)
        builder.emit("mov", Reg("r10"), Mem(seg="fs", disp=GLOBAL_BUFFER_COUNT_OFFSET),
                     note=note)
        builder.emit("mov", Mem(base="rdx", index="r10", scale=8), Reg("rcx"),
                     note=note)
        builder.emit("inc", Reg("r10"), note=note)
        builder.emit("mov", Mem(seg="fs", disp=GLOBAL_BUFFER_COUNT_OFFSET), Reg("r10"),
                     note=note)
        builder.emit("xor", Reg("rax"), Reg("rax"), note=note)
        builder.emit("xor", Reg("rcx"), Reg("rcx"), note=note)

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "pssp-gb-epilogue"
        slot = plan.canary_slots[0]
        ok = builder.fresh("gb_ok")
        builder.emit("mov", Reg("r10"), Mem(seg="fs", disp=GLOBAL_BUFFER_COUNT_OFFSET),
                     note=note)
        builder.emit("dec", Reg("r10"), note=note)
        builder.emit("mov", Mem(seg="fs", disp=GLOBAL_BUFFER_COUNT_OFFSET), Reg("r10"),
                     note=note)
        builder.emit("mov", Reg("rdx"), Mem(seg="fs", disp=GLOBAL_BUFFER_BASE_OFFSET),
                     note=note)
        builder.emit("mov", Reg("rdi"), Mem(base="rdx", index="r10", scale=8),
                     note=note)
        builder.emit("mov", Reg("rdx"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("xor", Reg("rdx"), Reg("rdi"), note=note)
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET), note=note)
        builder.emit("je", Label(ok), note=note)
        builder.emit("call", Sym("__stack_chk_fail"), note=note)
        builder.label(ok)

    def runtime(self):
        from ...core.schemes import GlobalBufferRuntime

        return GlobalBufferRuntime()
