"""Compiler-based P-SSP (the paper's basic scheme, Code 3/4).

The prologue copies the TLS *shadow* canary pair ``(C0, C1)`` from
``fs:0x2a8``/``fs:0x2b0`` into the frame; the epilogue checks
``C0 ⊕ C1 == C`` against the unchanged TLS canary at ``fs:0x28``.

Re-randomization happens at fork/thread-creation time in the preload
library (``repro.libc.preload``), not here — the pass itself is as cheap
as SSP plus one extra copy, which is why the paper measures only 0.24 %
overhead.
"""

from __future__ import annotations

from ...isa.instructions import Label, Mem, Reg, Sym
from ...machine.tls import CANARY_OFFSET, SHADOW_C0_OFFSET, SHADOW_C1_OFFSET
from .base import FramePlan, ProtectionPass


class PSSPPass(ProtectionPass):
    """Polymorphic SSP, fork-time re-randomization (16-byte stack canary:
    ``C0`` at ``[rbp-8]``, ``C1`` at ``[rbp-16]``)."""

    name = "pssp"

    def canary_bytes(self, decl) -> int:
        return 16

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        c0_slot, c1_slot = plan.canary_slots[0], plan.canary_slots[1]
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C0_OFFSET),
                     note="pssp-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c0_slot), Reg("rax"),
                     note="pssp-prologue")
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C1_OFFSET),
                     note="pssp-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-c1_slot), Reg("rax"),
                     note="pssp-prologue")
        builder.emit("xor", Reg("rax"), Reg("rax"), note="pssp-prologue")

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        c0_slot, c1_slot = plan.canary_slots[0], plan.canary_slots[1]
        ok = builder.fresh("pssp_ok")
        builder.emit("mov", Reg("rdx"), Mem(base="rbp", disp=-c0_slot),
                     note="pssp-epilogue")
        builder.emit("mov", Reg("rdi"), Mem(base="rbp", disp=-c1_slot),
                     note="pssp-epilogue")
        builder.emit("xor", Reg("rdx"), Reg("rdi"), note="pssp-epilogue")
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note="pssp-epilogue")
        builder.emit("je", Label(ok), note="pssp-epilogue")
        builder.emit("call", Sym("__stack_chk_fail"), note="pssp-epilogue")
        builder.label(ok)

    def runtime(self):
        from ...libc.preload import PSSPPreload

        return PSSPPreload(mode="compiler")
