"""Pass registry and manager (the analogue of LLVM's PassManager).

The paper registers ``P-SSP-Pass`` (compiled into ``libP-SSP.so``) with
LLVM's pass manager; here schemes register by name and the compiler
front-end asks the manager for the configured protection pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...errors import ProtectionError
from .base import NoProtection, ProtectionPass
from .baselines import DCRPass, DynaGuardPass
from .global_buffer import GlobalBufferPass
from .pssp import PSSPPass
from .pssp_lv import PSSPLVPass
from .pssp_nt import PSSPNTHardenedPass, PSSPNTPass
from .pssp_owf import PSSPOWFPass
from .ssp import SSPPass

_REGISTRY: Dict[str, Callable[[], ProtectionPass]] = {
    "none": NoProtection,
    "ssp": SSPPass,
    "pssp": PSSPPass,
    "pssp-nt": PSSPNTPass,
    "pssp-nt-hardened": PSSPNTHardenedPass,
    "pssp-lv": PSSPLVPass,
    "pssp-owf": PSSPOWFPass,
    "pssp-gb": GlobalBufferPass,
    "dynaguard": DynaGuardPass,
    "dcr": DCRPass,
}


def register_pass(name: str, factory: Callable[[], ProtectionPass]) -> None:
    """Register a custom protection pass (plugin mechanism)."""
    if name in _REGISTRY:
        raise ProtectionError(f"pass {name!r} already registered")
    _REGISTRY[name] = factory


def get_pass(name_or_pass: "str | ProtectionPass | None") -> ProtectionPass:
    """Resolve a pass by name, instance, or ``None`` (→ no protection)."""
    if name_or_pass is None:
        return NoProtection()
    if isinstance(name_or_pass, ProtectionPass):
        return name_or_pass
    try:
        return _REGISTRY[name_or_pass]()
    except KeyError:
        raise ProtectionError(
            f"unknown protection {name_or_pass!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available_passes() -> "list[str]":
    """Names of all registered protection passes."""
    return sorted(_REGISTRY)
