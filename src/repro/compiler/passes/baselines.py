"""Baseline schemes from the paper's Table I: DynaGuard and DCR.

Both take the approach P-SSP explicitly avoids — refreshing the *TLS*
canary on fork and then chasing down every stale canary in live stack
frames — so both need per-call bookkeeping describing where those
canaries are:

* **DynaGuard** (Petsios et al., ACSAC'15) appends each frame's canary
  address to a per-thread *canary address buffer* (CAB) in the prologue
  and pops it in the epilogue; the fork hook rewrites every recorded
  canary plus the TLS canary.
* **DCR** (Hawkins et al., CISRC'16) stores no side buffer: it embeds the
  word-distance to the *previous* canary inside the canary value itself
  (low 16 bits), forming an in-stack linked list headed from the TLS; the
  fork hook walks the list re-randomizing each node.  The embedding costs
  canary entropy — an honestly reproduced trade-off of the original.

Their fork-time runtimes live in :mod:`repro.core.baselines`; here are
the compiler passes with the per-call sequences whose cost Table I's
overhead columns reflect.
"""

from __future__ import annotations

from ...isa.instructions import Imm, Label, Mem, Reg, Sym
from ...machine.tls import (
    CANARY_OFFSET,
    DCR_LIST_HEAD_OFFSET,
    DYNAGUARD_CAB_BASE_OFFSET,
    DYNAGUARD_CAB_INDEX_OFFSET,
)
from .base import FramePlan
from .ssp import SSPPass


class DynaGuardPass(SSPPass):
    """SSP plus canary-address-buffer maintenance."""

    name = "dynaguard"

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        super().emit_prologue(builder, plan)
        note = "dynaguard-prologue"
        slot = plan.canary_slots[0]
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=DYNAGUARD_CAB_BASE_OFFSET),
                     note=note)
        builder.emit("mov", Reg("rdx"), Mem(seg="fs", disp=DYNAGUARD_CAB_INDEX_OFFSET),
                     note=note)
        builder.emit("lea", Reg("rax"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("mov", Mem(base="rcx", index="rdx", scale=8), Reg("rax"),
                     note=note)
        builder.emit("inc", Reg("rdx"), note=note)
        builder.emit("mov", Mem(seg="fs", disp=DYNAGUARD_CAB_INDEX_OFFSET), Reg("rdx"),
                     note=note)
        builder.emit("xor", Reg("rax"), Reg("rax"), note=note)

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "dynaguard-epilogue"
        builder.emit("mov", Reg("rdx"), Mem(seg="fs", disp=DYNAGUARD_CAB_INDEX_OFFSET),
                     note=note)
        builder.emit("dec", Reg("rdx"), note=note)
        builder.emit("mov", Mem(seg="fs", disp=DYNAGUARD_CAB_INDEX_OFFSET), Reg("rdx"),
                     note=note)
        super().emit_epilogue_check(builder, plan)

    def runtime(self):
        from ...core.baselines import DynaGuardRuntime

        return DynaGuardRuntime()


class DCRPass(SSPPass):
    """Dynamic Canary Randomization: offsets embedded in canary values.

    The stack canary is ``C ⊕ delta`` where ``delta`` is the word-distance
    to the previous canary (16-bit field).  The epilogue validates that
    the recovered delta's upper 48 bits are zero and pops the list head.
    """

    name = "dcr"

    #: Bits of the canary sacrificed for the embedded offset.
    OFFSET_BITS = 16

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "dcr-prologue"
        slot = plan.canary_slots[0]
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=CANARY_OFFSET), note=note)
        builder.emit("mov", Reg("rcx"), Mem(seg="fs", disp=DCR_LIST_HEAD_OFFSET),
                     note=note)
        builder.emit("lea", Reg("rdx"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("mov", Mem(seg="fs", disp=DCR_LIST_HEAD_OFFSET), Reg("rdx"),
                     note=note)
        builder.emit("sub", Reg("rcx"), Reg("rdx"), note=note)
        builder.emit("shr", Reg("rcx"), Imm(3), note=note)
        builder.emit("xor", Reg("rax"), Reg("rcx"), note=note)
        builder.emit("mov", Mem(base="rbp", disp=-slot), Reg("rax"), note=note)
        builder.emit("xor", Reg("rax"), Reg("rax"), note=note)

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "dcr-epilogue"
        slot = plan.canary_slots[0]
        ok = builder.fresh("dcr_ok")
        builder.emit("mov", Reg("rdx"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET), note=note)
        builder.emit("mov", Reg("rcx"), Reg("rdx"), note=note)
        builder.emit("shr", Reg("rcx"), Imm(self.OFFSET_BITS), note=note)
        builder.emit("je", Label(ok), note=note)
        builder.emit("call", Sym("__stack_chk_fail"), note=note)
        builder.label(ok)
        # Pop the list: head = this_canary_address + delta * 8.
        builder.emit("shl", Reg("rdx"), Imm(3), note=note)
        builder.emit("lea", Reg("rcx"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("add", Reg("rcx"), Reg("rdx"), note=note)
        builder.emit("mov", Mem(seg="fs", disp=DCR_LIST_HEAD_OFFSET), Reg("rcx"),
                     note=note)

    def runtime(self):
        from ...core.baselines import DCRRuntime

        return DCRRuntime()
