"""Baseline SSP: the classic ``-fstack-protector`` pass.

Emits exactly the paper's Code 1/2 shape: the prologue copies the TLS
canary at ``%fs:0x28`` into ``[rbp-8]``; the epilogue xors the stack copy
against the TLS canary and calls ``__stack_chk_fail`` on mismatch.
"""

from __future__ import annotations

from ...isa.instructions import Label, Mem, Reg, Sym
from ...machine.tls import CANARY_OFFSET
from .base import FramePlan, ProtectionPass


class SSPPass(ProtectionPass):
    """Stack Smashing Protection (the paper's baseline and 'native'
    default — Debian compiles with ``-fstack-protector-strong``)."""

    name = "ssp"

    def canary_bytes(self, decl) -> int:
        return 8

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note="ssp-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-plan.canary_slots[0]), Reg("rax"),
                     note="ssp-prologue")
        builder.emit("xor", Reg("rax"), Reg("rax"), note="ssp-prologue")

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        ok = builder.fresh("ssp_ok")
        builder.emit("mov", Reg("rdx"), Mem(base="rbp", disp=-plan.canary_slots[0]),
                     note="ssp-epilogue")
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note="ssp-epilogue")
        builder.emit("je", Label(ok), note="ssp-epilogue")
        builder.emit("call", Sym("__stack_chk_fail"), note="ssp-epilogue")
        builder.label(ok)
