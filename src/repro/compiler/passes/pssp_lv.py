"""P-SSP-LV: per-critical-local-variable canaries (paper §IV-B, Algorithm 2).

Each critical variable gets a distinct canary in the adjacent word just
*above* it (so overflowing the variable kills its own canary before
reaching anything else); the topmost canary sits at ``[rbp-8]`` guarding
the saved frame pointer and return address.  All but the last canary are
drawn with ``rdrand``; the last is computed so that the XOR of every
canary in the frame equals the TLS canary ``C`` — the epilogue (and the
optional post-write inspections) check exactly that collective property.

With ``m`` critical variables the prologue performs ``m - 1`` ``rdrand``
draws, matching the paper's Table V costs (2 variables ≈ one draw ≈
P-SSP-NT; 4 variables ≈ three draws ≈ 3×).

Variable selection follows §V-E2: variables declared with the MiniC
``critical`` qualifier are protected; when a function contains buffers
but marks none critical, every local array is treated as critical
(the paper's "compiler discovers sensitive local variables" option).
"""

from __future__ import annotations

from typing import List

from ...isa.instructions import Label, Mem, Reg, Sym
from ...machine.tls import CANARY_OFFSET
from ..ast_nodes import Declaration, FunctionDecl
from .base import FramePlan, ProtectionPass, _align


class PSSPLVPass(ProtectionPass):
    """Local-variable protection built on per-call re-randomization.

    Parameters
    ----------
    check_on_write:
        Also splice a canary inspection after calls to overflow-prone
        libc routines (``strcpy``, ``read``, ...), catching local-variable
        corruption before the function returns (§IV-B's "too late at
        function return" concern).
    """

    name = "pssp-lv"

    def __init__(self, check_on_write: bool = True) -> None:
        self.check_on_write = check_on_write

    # -- selection ----------------------------------------------------------

    def _critical_declarations(self, decl: FunctionDecl) -> List[Declaration]:
        declarations = decl.local_declarations()
        critical = [d for d in declarations if d.critical]
        if critical:
            return critical
        return [d for d in declarations if d.ctype.is_array]

    def should_protect(self, decl: FunctionDecl) -> bool:
        return bool(self._critical_declarations(decl))

    # -- layout ----------------------------------------------------------------

    def plan_frame(self, decl: FunctionDecl) -> FramePlan:
        plan = FramePlan(decl.name)
        plan.protected = self.should_protect(decl)
        if not plan.protected:
            return super().plan_frame(decl)
        critical = self._critical_declarations(decl)
        critical_names = {d.name for d in critical}
        cursor = 0
        # With a single critical variable, m canaries would mean m-1 = 0
        # random draws and the frame canary would be the TLS canary
        # verbatim — constant across forks, handing byte-by-byte right
        # back to the attacker.  Guarantee polymorphism by always keeping
        # at least two canaries (one rdrand-fresh): the extra top slot
        # doubles as the return-address guard.
        if len(critical) == 1:
            cursor += 8
            plan.canary_slots.append(cursor)
        # Interleave: canary above each critical variable, in declaration
        # order from the top of the frame downward.
        for declaration in critical:
            cursor += 8
            plan.canary_slots.append(cursor)
            size = _align(declaration.ctype.size, 8)
            cursor += size
            plan.add(declaration.name, declaration.ctype, cursor,
                     critical=True)
        for declaration in decl.local_declarations():
            if declaration.name in critical_names:
                continue
            size = _align(declaration.ctype.size, 8)
            cursor += size
            plan.add(declaration.name, declaration.ctype, cursor,
                     critical=False)
        for param in decl.params:
            cursor += 8
            plan.add(param.name, param.ctype, cursor, is_param=True)
        plan.frame_size = _align(cursor, 16)
        return plan

    # -- instrumentation ----------------------------------------------------------

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        slots = plan.canary_slots
        count = len(slots)
        for j, slot in enumerate(slots[:-1]):
            builder.emit("rdrand", Reg("rax"), note="pssp-lv-prologue")
            builder.emit("mov", Mem(base="rbp", disp=-slot), Reg("rax"),
                         note="pssp-lv-prologue")
            if j == 0:
                builder.emit("mov", Reg("rcx"), Reg("rax"),
                             note="pssp-lv-prologue")
            else:
                builder.emit("xor", Reg("rcx"), Reg("rax"),
                             note="pssp-lv-prologue")
        # Last canary: computed so the XOR of all canaries equals C.
        builder.emit("mov", Reg("rax"), Mem(seg="fs", disp=CANARY_OFFSET),
                     note="pssp-lv-prologue")
        if count > 1:
            builder.emit("xor", Reg("rax"), Reg("rcx"), note="pssp-lv-prologue")
        builder.emit("mov", Mem(base="rbp", disp=-slots[-1]), Reg("rax"),
                     note="pssp-lv-prologue")
        builder.emit("xor", Reg("rax"), Reg("rax"), note="pssp-lv-prologue")
        builder.emit("xor", Reg("rcx"), Reg("rcx"), note="pssp-lv-prologue")

    def _emit_check(self, builder, plan: FramePlan, note: str) -> None:
        slots = plan.canary_slots
        ok = builder.fresh("lv_ok")
        builder.emit("mov", Reg("rdx"), Mem(base="rbp", disp=-slots[0]), note=note)
        for slot in slots[1:]:
            builder.emit("xor", Reg("rdx"), Mem(base="rbp", disp=-slot), note=note)
        builder.emit("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET), note=note)
        builder.emit("je", Label(ok), note=note)
        builder.emit("call", Sym("__stack_chk_fail"), note=note)
        builder.label(ok)

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if plan.protected:
            self._emit_check(builder, plan, "pssp-lv-epilogue")

    def post_call_check(self, builder, plan: FramePlan, callee: str) -> None:
        if not (plan.protected and self.check_on_write):
            return
        from ...libc.builtins import OVERFLOW_VECTORS

        if callee in OVERFLOW_VECTORS:
            self._emit_check(builder, plan, "pssp-lv-postwrite")
