"""P-SSP-OWF: exposure-resilient canaries via a one-way function
(paper §IV-C / §V-E3, Algorithm 3, Code 8/9).

The stack canary is ``AES-128(key = r12||r13, plaintext = rdtsc || ret)``:
a randomized MAC of the return address keyed by a register-resident
secret.  Leaking one frame's canary reveals nothing about the key, and a
canary copied into another frame (different return address) or replayed
later (different nonce) fails verification.

Frame storage: the 64-bit nonce at ``[rbp-8]`` and the 128-bit ciphertext
at ``[rbp-24 .. rbp-9]`` (24 canary bytes total).  The key registers
``r12``/``r13`` are reserved as global register variables and initialised
by the scheme's runtime at program start.
"""

from __future__ import annotations

from ...isa.instructions import Imm, Label, Mem, Reg, Sym
from .base import FramePlan, ProtectionPass


class PSSPOWFPass(ProtectionPass):
    """One-way-function canaries with AES-NI (simulated)."""

    name = "pssp-owf"

    def canary_bytes(self, decl) -> int:
        return 24

    def plan_frame(self, decl) -> FramePlan:
        plan = super().plan_frame(decl)
        if plan.protected:
            plan.owf_nonce_offset = plan.canary_slots[0]      # [rbp-8]
            plan.owf_cipher_offset = plan.canary_slots[2]     # [rbp-24]
        return plan

    def _emit_mac(self, builder, plan: FramePlan, note: str,
                  nonce_reg: str = "rax") -> None:
        """Shared tail: pack plaintext/key into xmm and encrypt.

        Precondition: ``nonce_reg`` holds the 64-bit nonce.  The epilogue
        uses ``r11`` so the function's return value in ``rax`` survives.
        """
        builder.emit("movq", Reg("xmm15"), Reg(nonce_reg), note=note)
        builder.emit("movhps", Reg("xmm15"), Mem(base="rbp", disp=8), note=note)
        builder.emit("movq", Reg("xmm1"), Reg("r13"), note=note)
        builder.emit("punpckhdq", Reg("xmm1"), Reg("r12"), note=note)
        builder.emit("call", Sym("AES_ENCRYPT_128"), note=note)

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "pssp-owf-prologue"
        builder.emit("rdtsc", note=note)
        builder.emit("shl", Reg("rdx"), Imm(32), note=note)
        builder.emit("or", Reg("rax"), Reg("rdx"), note=note)
        builder.emit("mov", Mem(base="rbp", disp=-plan.owf_nonce_offset),
                     Reg("rax"), note=note)
        self._emit_mac(builder, plan, note)
        builder.emit("movdqu", Mem(base="rbp", disp=-plan.owf_cipher_offset),
                     Reg("xmm15"), note=note)

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        if not plan.protected:
            return
        note = "pssp-owf-epilogue"
        ok = builder.fresh("owf_ok")
        builder.emit("mov", Reg("r11"),
                     Mem(base="rbp", disp=-plan.owf_nonce_offset), note=note)
        self._emit_mac(builder, plan, note, nonce_reg="r11")
        builder.emit("comiss", Reg("xmm15"),
                     Mem(base="rbp", disp=-plan.owf_cipher_offset), note=note)
        builder.emit("je", Label(ok), note=note)
        builder.emit("call", Sym("__stack_chk_fail"), note=note)
        builder.label(ok)

    def runtime(self):
        from ...core.schemes import OWFRuntime

        return OWFRuntime()
