"""Protection passes (the LLVM-plugin analogues)."""

from .base import FramePlan, FrameVar, NoProtection, ProtectionPass
from .baselines import DCRPass, DynaGuardPass
from .global_buffer import GlobalBufferPass
from .manager import available_passes, get_pass, register_pass
from .pssp import PSSPPass
from .pssp_lv import PSSPLVPass
from .pssp_nt import PSSPNTPass
from .pssp_owf import PSSPOWFPass
from .ssp import SSPPass

__all__ = [
    "DCRPass",
    "DynaGuardPass",
    "FramePlan",
    "FrameVar",
    "GlobalBufferPass",
    "NoProtection",
    "PSSPLVPass",
    "PSSPNTPass",
    "PSSPOWFPass",
    "PSSPPass",
    "ProtectionPass",
    "SSPPass",
    "available_passes",
    "get_pass",
    "register_pass",
]
