"""Protection-pass framework.

The paper deploys P-SSP as an LLVM ``FunctionPass`` whose
``runOnFunction`` (a) decides whether a function needs protection (it has
a local buffer), (b) reserves canary storage in the frame, and (c) splices
prologue/epilogue instrumentation.  Our compiler mirrors that contract:

* :meth:`ProtectionPass.should_protect` — the per-function decision;
* :meth:`ProtectionPass.plan_frame` — frame layout, including canary
  slots (P-SSP-LV interleaves canaries between critical variables, so the
  pass owns layout, not the code generator);
* :meth:`ProtectionPass.emit_prologue` / :meth:`emit_epilogue_check` —
  the instrumentation sequences;
* :meth:`ProtectionPass.post_call_check` — optional canary inspection
  after overflow-prone libc calls (used by P-SSP-LV, §IV-B).

Frame-layout convention (addresses descending from the saved base
pointer): canary region first (``[rbp-8]`` downward), then arrays —
closest to the canaries, GCC ``-fstack-protector`` style, so a buffer
overflow reaches a canary before anything else — then scalars and spilled
parameters.  An offset ``o`` means the object's lowest byte lives at
``rbp - o``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...isa.instructions import Function
from ..ast_nodes import FunctionDecl, Type


@dataclass
class FrameVar:
    """One object with a slot in the frame."""

    name: str
    ctype: Type
    offset: int  # lowest byte at rbp - offset
    critical: bool = False
    is_param: bool = False


@dataclass
class FramePlan:
    """The layout a pass chose for one function's frame."""

    function: str
    vars: Dict[str, FrameVar] = field(default_factory=dict)
    #: Offsets of canary words (each 8 bytes at ``rbp - offset``), ordered
    #: from highest address (nearest the return address) downward.
    canary_slots: List[int] = field(default_factory=list)
    #: For P-SSP-OWF: offsets of (nonce, ciphertext) storage instead.
    owf_nonce_offset: int = 0
    owf_cipher_offset: int = 0
    frame_size: int = 0
    protected: bool = False

    def var(self, name: str) -> FrameVar:
        return self.vars[name]

    def add(self, name: str, ctype: Type, offset: int, **kw) -> FrameVar:
        frame_var = FrameVar(name, ctype, offset, **kw)
        self.vars[name] = frame_var
        return frame_var


def _align(value: int, boundary: int) -> int:
    return (value + boundary - 1) & ~(boundary - 1)


class ProtectionPass:
    """Base class: no protection.  Subclasses override the hooks."""

    #: Scheme identifier recorded on compiled functions and binaries.
    name = "none"

    def should_protect(self, decl: FunctionDecl) -> bool:
        """Default policy (matches ``-fstack-protector`` and the paper's
        ``runOnFunction``): protect iff the function has a local array."""
        return decl.has_buffer()

    def canary_bytes(self, decl: FunctionDecl) -> int:
        """Bytes reserved at the top of the frame for canaries."""
        return 0

    # -- layout ----------------------------------------------------------------

    def plan_frame(self, decl: FunctionDecl) -> FramePlan:
        """Standard layout: canaries, then arrays, then scalars/params."""
        plan = FramePlan(decl.name)
        plan.protected = self.should_protect(decl)
        cursor = 0
        if plan.protected:
            reserved = self.canary_bytes(decl)
            for slot in range(reserved // 8):
                cursor += 8
                plan.canary_slots.append(cursor)
            cursor = reserved
        declarations = decl.local_declarations()
        arrays = [d for d in declarations if d.ctype.is_array]
        scalars = [d for d in declarations if not d.ctype.is_array]
        for declaration in arrays:
            size = _align(declaration.ctype.size, 8)
            cursor += size
            plan.add(declaration.name, declaration.ctype, cursor,
                     critical=declaration.critical)
        for param in decl.params:
            cursor += 8
            plan.add(param.name, param.ctype, cursor, is_param=True)
        for declaration in scalars:
            cursor += 8
            plan.add(declaration.name, declaration.ctype, cursor,
                     critical=declaration.critical)
        plan.frame_size = _align(cursor, 16)
        return plan

    # -- instrumentation ----------------------------------------------------------

    def emit_prologue(self, builder, plan: FramePlan) -> None:
        """Emit instrumentation right after frame setup (``sub rsp, N``)."""

    def emit_epilogue_check(self, builder, plan: FramePlan) -> None:
        """Emit the check sequence immediately before ``leave; ret``.

        On mismatch the sequence must transfer control to
        ``__stack_chk_fail``; on success it must fall through.
        """

    def post_call_check(self, builder, plan: FramePlan, callee: str) -> None:
        """Optional inspection after a call to an overflow-prone routine."""

    # -- runtime side ----------------------------------------------------------------

    def runtime(self):
        """The matching runtime support object (preload library / hooks),
        or ``None`` when the scheme needs no runtime (SSP, P-SSP-NT).

        Implemented by schemes in :mod:`repro.core`; the compiler only
        carries it through so deployment stays one call.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class NoProtection(ProtectionPass):
    """Explicit no-op pass (compiles like ``-fno-stack-protector``)."""

    name = "none"

    def should_protect(self, decl: FunctionDecl) -> bool:
        return False
