"""AsmBuilder: an IRBuilder-style emitter over a :class:`Function`.

Both the code generator and the protection passes append instructions and
define labels through one builder, so label indices are always consistent
regardless of who emitted the surrounding code.
"""

from __future__ import annotations

from ..isa.instructions import Function, Operand


class AsmBuilder:
    """Appends instructions/labels to a function under construction."""

    def __init__(self, function: Function) -> None:
        self.function = function

    def emit(self, op: str, *operands: Operand, note: str = "") -> None:
        """Append one instruction."""
        self.function.emit(op, *operands, note=note)

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        self.function.label_here(name)

    def fresh(self, hint: str = "L") -> str:
        """Reserve a fresh label name (not yet defined)."""
        name = self.function.fresh_label(hint)
        # Reserve it so a second fresh() before label() cannot collide;
        # label() will overwrite the placeholder index.
        self.function.labels[name] = -1
        return name

    @property
    def position(self) -> int:
        """Index the next instruction will occupy."""
        return len(self.function.body)
