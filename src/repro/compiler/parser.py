"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from ..errors import CompileError
from . import ast_nodes as ast
from .lexer import Token, TokenStream, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


def parse(source: str) -> ast.Program:
    """Parse a MiniC translation unit."""
    return _Parser(TokenStream(tokenize(source))).parse_program()


class _Parser:
    def __init__(self, stream: TokenStream) -> None:
        self.ts = stream

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.ts.at("eof"):
            program.functions.append(self.parse_function())
        return program

    def _parse_base_type(self) -> ast.Type:
        token = self.ts.peek()
        if token.kind == "kw" and token.text in ("int", "char", "void"):
            self.ts.next()
            pointer = 0
            while self.ts.accept("op", "*"):
                pointer += 1
            return ast.Type(token.text, pointer)
        raise CompileError(f"expected a type, found {token.text!r}", token.line)

    def parse_function(self) -> ast.FunctionDecl:
        line = self.ts.peek().line
        return_type = self._parse_base_type()
        name = self.ts.expect("ident").text
        self.ts.expect("op", "(")
        params: List[ast.Param] = []
        if not self.ts.at("op", ")"):
            while True:
                if self.ts.at("kw", "void") and self.ts.peek(1).text == ")":
                    self.ts.next()
                    break
                ptype = self._parse_base_type()
                pname = self.ts.expect("ident").text
                params.append(ast.Param(pname, ptype))
                if not self.ts.accept("op", ","):
                    break
        self.ts.expect("op", ")")
        body = self.parse_block()
        return ast.FunctionDecl(name, return_type, params, body, line)

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> List[ast.Stmt]:
        self.ts.expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self.ts.accept("op", "}"):
            statements.append(self.parse_statement())
        return statements

    def _at_declaration(self) -> bool:
        token = self.ts.peek()
        return token.kind == "kw" and token.text in ("int", "char", "critical")

    def parse_statement(self) -> ast.Stmt:
        token = self.ts.peek()
        if self._at_declaration():
            statement = self.parse_declaration()
            self.ts.expect("op", ";")
            return statement
        if token.kind == "kw":
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "for":
                return self.parse_for()
            if token.text == "return":
                self.ts.next()
                value: Optional[ast.Expr] = None
                if not self.ts.at("op", ";"):
                    value = self.parse_expression()
                self.ts.expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self.ts.next()
                self.ts.expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.ts.next()
                self.ts.expect("op", ";")
                return ast.Continue(line=token.line)
        if self.ts.at("op", "{"):
            # Anonymous block: flatten into an If(1) for simplicity.
            block = self.parse_block()
            return ast.If(line=token.line, cond=ast.IntLiteral(value=1), then=block)
        expr = self.parse_expression()
        self.ts.expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def parse_declaration(self) -> ast.Declaration:
        token = self.ts.peek()
        critical = bool(self.ts.accept("kw", "critical"))
        ctype = self._parse_base_type()
        name = self.ts.expect("ident").text
        if self.ts.accept("op", "["):
            length = self.ts.expect("int").value
            self.ts.expect("op", "]")
            ctype = ast.Type(ctype.base, ctype.pointer, length)
        init: Optional[ast.Expr] = None
        if self.ts.accept("op", "="):
            init = self.parse_expression()
        return ast.Declaration(
            line=token.line, name=name, ctype=ctype, init=init, critical=critical
        )

    def parse_if(self) -> ast.If:
        token = self.ts.expect("kw", "if")
        self.ts.expect("op", "(")
        cond = self.parse_expression()
        self.ts.expect("op", ")")
        then = self._statement_or_block()
        otherwise: List[ast.Stmt] = []
        if self.ts.accept("kw", "else"):
            otherwise = self._statement_or_block()
        return ast.If(line=token.line, cond=cond, then=then, otherwise=otherwise)

    def parse_while(self) -> ast.While:
        token = self.ts.expect("kw", "while")
        self.ts.expect("op", "(")
        cond = self.parse_expression()
        self.ts.expect("op", ")")
        return ast.While(line=token.line, cond=cond, body=self._statement_or_block())

    def parse_for(self) -> ast.For:
        token = self.ts.expect("kw", "for")
        self.ts.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.ts.at("op", ";"):
            if self._at_declaration():
                init = self.parse_declaration()
            else:
                init = ast.ExprStmt(line=token.line, expr=self.parse_expression())
        self.ts.expect("op", ";")
        cond: Optional[ast.Expr] = None
        if not self.ts.at("op", ";"):
            cond = self.parse_expression()
        self.ts.expect("op", ";")
        step: Optional[ast.Expr] = None
        if not self.ts.at("op", ")"):
            step = self.parse_expression()
        self.ts.expect("op", ")")
        return ast.For(
            line=token.line, init=init, cond=cond, step=step,
            body=self._statement_or_block(),
        )

    def _statement_or_block(self) -> List[ast.Stmt]:
        if self.ts.at("op", "{"):
            return self.parse_block()
        return [self.parse_statement()]

    # -- expressions ------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_binary(0)
        token = self.ts.peek()
        if token.kind == "op" and token.text == "=":
            self.ts.next()
            value = self.parse_assignment()
            return ast.Assign(line=token.line, target=left, value=value)
        if token.kind == "op" and token.text in _COMPOUND_ASSIGN:
            self.ts.next()
            value = self.parse_assignment()
            op = _COMPOUND_ASSIGN[token.text]
            combined = ast.Binary(line=token.line, op=op, left=left, right=value)
            return ast.Assign(line=token.line, target=left, value=combined)
        return left

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.ts.peek()
            if token.kind != "op":
                return left
            precedence = _PRECEDENCE.get(token.text, 0)
            if precedence == 0 or precedence < min_precedence:
                return left
            self.ts.next()
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(line=token.line, op=token.text, left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        token = self.ts.peek()
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.ts.next()
            operand = self.parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "op" and token.text in ("++", "--"):
            # Prefix increment: sugar for (x = x +/- 1).
            self.ts.next()
            target = self.parse_unary()
            op = "+" if token.text == "++" else "-"
            combined = ast.Binary(
                line=token.line, op=op, left=target, right=ast.IntLiteral(value=1)
            )
            return ast.Assign(line=token.line, target=target, value=combined)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.ts.accept("op", "["):
                index = self.parse_expression()
                self.ts.expect("op", "]")
                expr = ast.Index(line=self.ts.peek().line, array=expr, index=index)
                continue
            token = self.ts.peek()
            if token.kind == "op" and token.text in ("++", "--"):
                # Postfix on a statement-expression level behaves like
                # prefix in MiniC (value not used in any workload).
                self.ts.next()
                op = "+" if token.text == "++" else "-"
                combined = ast.Binary(
                    line=token.line, op=op, left=expr, right=ast.IntLiteral(value=1)
                )
                expr = ast.Assign(line=token.line, target=expr, value=combined)
                continue
            return expr

    def parse_primary(self) -> ast.Expr:
        token = self.ts.next()
        if token.kind == "int":
            return ast.IntLiteral(line=token.line, value=token.value)
        if token.kind == "char":
            return ast.IntLiteral(line=token.line, value=token.value)
        if token.kind == "string":
            return ast.StringLiteral(line=token.line, value=token.text)
        if token.kind == "ident":
            if self.ts.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.ts.at("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.ts.accept("op", ","):
                            break
                self.ts.expect("op", ")")
                return ast.Call(line=token.line, name=token.text, args=args)
            return ast.VarRef(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            expr = self.parse_expression()
            self.ts.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {token.text or token.kind!r}", token.line)
