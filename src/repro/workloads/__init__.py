"""Workloads: the SPEC-like suite, web servers, and database engines."""

from .database import DATABASES, MYSQL, SQLITE, DatabaseStats, DatabaseWorkload
from .spec import SPEC_PROGRAMS, SPECFP, SPECINT, SpecProgram, program
from .webserver import (
    APACHE2,
    CYCLES_PER_MS,
    NGINX,
    WEB_SERVERS,
    ServerStats,
    WebServerWorkload,
)

__all__ = [
    "APACHE2",
    "CYCLES_PER_MS",
    "DATABASES",
    "DatabaseStats",
    "DatabaseWorkload",
    "MYSQL",
    "NGINX",
    "SPECFP",
    "SPECINT",
    "SPEC_PROGRAMS",
    "SQLITE",
    "ServerStats",
    "SpecProgram",
    "WEB_SERVERS",
    "WebServerWorkload",
    "program",
]
