"""SPEC CPU2006-like benchmark suite in MiniC.

The paper evaluates runtime overhead on the 28 SPEC CPU2006 programs
(Figure 5) — unavailable offline, so this module provides a suite of
kernel programs named after their SPEC counterparts, each echoing the
original's computational character (string hashing for perlbench, RLE
coding for bzip2, shortest paths for mcf, ...).  What matters for the
overhead experiment is the *call density*: canary schemes tax protected
calls, so programs span the same range from call-heavy (perlbench, gcc)
to loop-heavy (lbm, libquantum) as the real suite — that spread is what
gives Figure 5 its per-program variation.

Every program returns a deterministic checksum in ``main`` so builds can
be cross-validated: all protection schemes must produce identical
checksums (protection must never change program semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SpecProgram:
    """One benchmark program."""

    name: str
    kind: str  # "int" or "fp" (fp = fixed-point arithmetic character)
    source: str


def _p(name: str, kind: str, source: str) -> SpecProgram:
    return SpecProgram(name, kind, source)


SPEC_PROGRAMS: List[SpecProgram] = [
    # ----------------------------------------------------------- SPECint —
    _p("perlbench", "int", """
int hash_string(char *s, int len) {
    char buf[32];
    int h; int i;
    strncpy(buf, s, 31);
    h = 5381;
    for (i = 0; i < len && i < 31; i = i + 1) {
        h = h * 33 + buf[i];
    }
    return h & 0xffffff;
}
int main() {
    char word[64];
    int total; int i;
    total = 0;
    for (i = 0; i < 90; i = i + 1) {
        sprintf(word, "token%d", i * 7);
        total = total + hash_string(word, strlen(word));
    }
    return total & 255;
}
"""),
    _p("bzip2", "int", """
int rle_encode(char *src, int n, char *dst) {
    char window[48];
    int i; int out; int run;
    out = 0;
    i = 0;
    strncpy(window, src, 47);
    while (i < n && i < 47) {
        run = 1;
        while (i + run < n && window[i + run] == window[i] && run < 9) {
            run = run + 1;
        }
        dst[out] = window[i];
        dst[out + 1] = '0' + run;
        out = out + 2;
        i = i + run;
    }
    return out;
}
int main() {
    char data[64];
    char coded[128];
    int i; int total;
    total = 0;
    for (i = 0; i < 60; i = i + 1) {
        sprintf(data, "aaabbbccc%daabb", i);
        total = total + rle_encode(data, strlen(data), coded);
    }
    return total & 255;
}
"""),
    _p("gcc", "int", """
int eval_expr(char *expr, int n) {
    char ops[40];
    int acc; int i; int val;
    strncpy(ops, expr, 39);
    acc = 0;
    val = 0;
    i = 0;
    while (i < n && i < 39) {
        if (ops[i] >= '0' && ops[i] <= '9') {
            val = val * 10 + ops[i] - '0';
        } else {
            if (ops[i] == '+') { acc = acc + val; val = 0; }
            if (ops[i] == '-') { acc = acc - val; val = 0; }
        }
        i = i + 1;
    }
    return acc + val;
}
int main() {
    char expr[64];
    int total; int i;
    total = 0;
    for (i = 0; i < 70; i = i + 1) {
        sprintf(expr, "%d+%d-%d+4", i, i * 3, i / 2);
        total = total + eval_expr(expr, strlen(expr));
    }
    return total & 255;
}
"""),
    _p("mcf", "int", """
int relax_node(int *dist, int u, int v, int w) {
    int cand;
    cand = dist[u] + w;
    if (cand < dist[v]) {
        dist[v] = cand;
        return 1;
    }
    return 0;
}
int main() {
    int dist[32];
    int i; int round; int changed;
    for (i = 0; i < 32; i = i + 1) { dist[i] = 99999; }
    dist[0] = 0;
    changed = 1;
    round = 0;
    while (changed && round < 31) {
        changed = 0;
        for (i = 0; i + 1 < 32; i = i + 1) {
            changed = changed + relax_node(dist, i, i + 1, (i * 17) % 23 + 1);
            changed = changed + relax_node(dist, i, (i * 5 + 3) % 32, (i * 11) % 19 + 1);
        }
        round = round + 1;
    }
    return dist[31] & 255;
}
"""),
    _p("gobmk", "int", """
int eval_point(char *board, int x, int y) {
    int score; int dx;
    score = 0;
    for (dx = 0 - 1; dx <= 1; dx = dx + 1) {
        if (x + dx >= 0 && x + dx < 9) {
            score = score + board[(x + dx) * 9 + y];
        }
    }
    return score;
}
int main() {
    char board[96];
    int x; int y; int total;
    for (x = 0; x < 81; x = x + 1) { board[x] = (x * 7) % 3; }
    total = 0;
    for (x = 0; x < 9; x = x + 1) {
        for (y = 0; y < 9; y = y + 1) {
            total = total + eval_point(board, x, y);
        }
    }
    return total & 255;
}
"""),
    _p("hmmer", "int", """
int align_cell(int *row, int i, int match, int gap) {
    int best;
    best = row[i - 1] + match;
    if (row[i] + gap > best) { best = row[i] + gap; }
    return best;
}
int main() {
    int row[40];
    char seq[48];
    int i; int j; int total;
    sprintf(seq, "ACGTACGTACGTACGTACGTACGTACGT");
    for (i = 0; i < 40; i = i + 1) { row[i] = 0 - i; }
    total = 0;
    for (j = 0; j < 24; j = j + 1) {
        for (i = 1; i < 29; i = i + 1) {
            row[i] = align_cell(row, i, seq[i - 1] == seq[j], 0 - 2);
        }
        total = total + row[28];
    }
    return (total + 4096) & 255;
}
"""),
    _p("sjeng", "int", """
int score_move(char *pos, int depth, int alpha) {
    char line[24];
    int s; int i;
    strncpy(line, pos, 23);
    s = 0;
    for (i = 0; i < depth && i < 23; i = i + 1) {
        s = s * 3 + line[i] - alpha;
    }
    return s & 0xffff;
}
int main() {
    char pos[32];
    int d; int m; int best;
    best = 0;
    for (m = 0; m < 40; m = m + 1) {
        sprintf(pos, "e%dd%dc%db%d", m % 8, (m * 3) % 8, (m * 5) % 8, m % 4);
        for (d = 1; d < 5; d = d + 1) {
            best = best + score_move(pos, d * 4, 60);
        }
    }
    return best & 255;
}
"""),
    _p("libquantum", "int", """
int toffoli(int state, int c1, int c2, int t) {
    if ((state >> c1) & 1) {
        if ((state >> c2) & 1) {
            return state ^ (1 << t);
        }
    }
    return state;
}
int main() {
    int reg[16];
    int i; int g; int total;
    for (i = 0; i < 16; i = i + 1) { reg[i] = i * 2654435761; }
    total = 0;
    for (g = 0; g < 400; g = g + 1) {
        i = g % 16;
        reg[i] = toffoli(reg[i], g % 30, (g * 7) % 30, (g * 13) % 30);
        total = total ^ reg[i];
    }
    return total & 255;
}
"""),
    _p("h264ref", "int", """
int block_sad(char *a, char *b, int n) {
    int sad; int i; int d;
    sad = 0;
    for (i = 0; i < n; i = i + 1) {
        d = a[i] - b[i];
        if (d < 0) { d = 0 - d; }
        sad = sad + d;
    }
    return sad;
}
int main() {
    char ref[64];
    char cur[64];
    int i; int f; int total;
    total = 0;
    for (f = 0; f < 50; f = f + 1) {
        for (i = 0; i < 16; i = i + 1) {
            ref[i] = (i * f) % 120;
            cur[i] = (i * f + 3) % 120;
        }
        total = total + block_sad(ref, cur, 16);
    }
    return total & 255;
}
"""),
    _p("omnetpp", "int", """
int schedule(int *queue, int count, int event) {
    int i;
    i = count;
    while (i > 0 && queue[i - 1] > event) {
        queue[i] = queue[i - 1];
        i = i - 1;
    }
    queue[i] = event;
    return count + 1;
}
int main() {
    int queue[48];
    int n; int e; int total;
    n = 0;
    total = 0;
    for (e = 0; e < 120; e = e + 1) {
        if (n >= 40) {
            total = total + queue[0];
            n = 0;
        }
        n = schedule(queue, n, (e * 193) % 1000);
    }
    return total & 255;
}
"""),
    _p("astar", "int", """
int heuristic(int x1, int y1, int x2, int y2) {
    int dx; int dy;
    dx = x1 - x2;
    if (dx < 0) { dx = 0 - dx; }
    dy = y1 - y2;
    if (dy < 0) { dy = 0 - dy; }
    return dx + dy;
}
int expand(char *grid, int *cost, int x, int y) {
    int c;
    if (grid[x * 12 + y]) { return 9999; }
    c = cost[x * 12 + y] + 1 + heuristic(x, y, 11, 11);
    return c;
}
int main() {
    char grid[144];
    int cost[144];
    int x; int y; int total;
    for (x = 0; x < 144; x = x + 1) {
        grid[x] = ((x * 31) % 7) == 0;
        cost[x] = x % 13;
    }
    total = 0;
    for (x = 0; x < 11; x = x + 1) {
        for (y = 0; y < 11; y = y + 1) {
            total = total + expand(grid, cost, x, y);
        }
    }
    return total & 255;
}
"""),
    _p("xalancbmk", "int", """
int parse_tag(char *doc, int start, char *out) {
    int i; int j;
    i = start;
    j = 0;
    while (doc[i] && doc[i] != '<') { i = i + 1; }
    if (!doc[i]) { return 0 - 1; }
    i = i + 1;
    while (doc[i] && doc[i] != '>' && j < 15) {
        out[j] = doc[i];
        i = i + 1;
        j = j + 1;
    }
    out[j] = 0;
    return i + 1;
}
int main() {
    char doc[96];
    char tag[16];
    int pos; int total; int r;
    sprintf(doc, "<a><bb><ccc><dddd><eeeee><ff><g>");
    total = 0;
    for (r = 0; r < 30; r = r + 1) {
        pos = 0;
        while (pos >= 0 && pos < 32) {
            pos = parse_tag(doc, pos, tag);
            total = total + strlen(tag);
        }
    }
    return total & 255;
}
"""),
    # ------------------------------------------------------------ SPECfp —
    # (fixed-point arithmetic with the originals' loop character)
    _p("milc", "fp", """
int su3_mult_row(int *a, int *b, int scale) {
    int acc; int i;
    acc = 0;
    for (i = 0; i < 9; i = i + 1) {
        acc = acc + (a[i] * b[i]) / scale;
    }
    return acc;
}
int main() {
    int a[16];
    int b[16];
    int i; int r; int total;
    for (i = 0; i < 9; i = i + 1) { a[i] = i * 100 + 7; b[i] = 900 - i * 50; }
    total = 0;
    for (r = 0; r < 120; r = r + 1) {
        total = total + su3_mult_row(a, b, r + 1);
    }
    return (total + 65536) & 255;
}
"""),
    _p("namd", "fp", """
int pair_force(int dx, int dy, int dz, int cutoff) {
    int r2;
    r2 = dx * dx + dy * dy + dz * dz;
    if (r2 > cutoff) { return 0; }
    return (1000000 / (r2 + 1)) - (1000 / (r2 + 1));
}
int main() {
    int px[24];
    int i; int j; int total;
    for (i = 0; i < 24; i = i + 1) { px[i] = (i * 37) % 50; }
    total = 0;
    for (i = 0; i < 24; i = i + 1) {
        for (j = i + 1; j < 24; j = j + 1) {
            total = total + pair_force(px[i] - px[j], i - j, j % 5, 900);
        }
    }
    return (total + 1048576) & 255;
}
"""),
    _p("dealII", "fp", """
int assemble_cell(int *stiff, int i, int j, int n) {
    return stiff[i * n + j] + (i + 1) * 31 / (j + 1);
}
int main() {
    int stiff[64];
    int i; int j; int total;
    for (i = 0; i < 64; i = i + 1) { stiff[i] = i * 3; }
    total = 0;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) {
            stiff[i * 8 + j] = assemble_cell(stiff, i, j, 8);
            total = total + stiff[i * 8 + j];
        }
    }
    return total & 255;
}
"""),
    _p("soplex", "fp", """
int pivot_column(int *tableau, int rows, int col, int cols) {
    int best; int i; int v;
    best = 0;
    for (i = 0; i < rows; i = i + 1) {
        v = tableau[i * cols + col];
        if (v < best) { best = v; }
    }
    return best;
}
int main() {
    int tab[80];
    int c; int r; int total;
    for (c = 0; c < 80; c = c + 1) { tab[c] = ((c * 29) % 41) - 20; }
    total = 0;
    for (r = 0; r < 30; r = r + 1) {
        for (c = 0; c < 8; c = c + 1) {
            total = total + pivot_column(tab, 10, c, 8);
        }
    }
    return (total + 65536) & 255;
}
"""),
    _p("povray", "fp", """
int ray_sphere(int ox, int oy, int dz, int radius) {
    int b; int disc; int denom;
    b = ox * 2 + oy * 2;
    disc = b * b - 4 * (ox * ox + oy * oy - radius * radius);
    if (disc < 0) { return 0; }
    denom = b + dz;
    if (denom < 1) { denom = 1; }
    return (b + disc / denom) / 2;
}
int main() {
    char pixel[32];
    int x; int y; int total;
    total = 0;
    for (y = 0; y < 16; y = y + 1) {
        for (x = 0; x < 16; x = x + 1) {
            pixel[x] = ray_sphere(x - 8, y - 8, 5, 6) & 127;
            total = total + pixel[x];
        }
    }
    return total & 255;
}
"""),
    _p("lbm", "fp", """
int stream_cell(int *lattice, int i, int n) {
    int left; int right;
    left = lattice[(i + n - 1) % n];
    right = lattice[(i + 1) % n];
    return (left + right + lattice[i] * 2) / 4;
}
int main() {
    int lattice[48];
    int next[48];
    int i; int step; int total;
    for (i = 0; i < 48; i = i + 1) { lattice[i] = (i * 97) % 256; }
    total = 0;
    for (step = 0; step < 25; step = step + 1) {
        for (i = 0; i < 48; i = i + 1) {
            next[i] = stream_cell(lattice, i, 48);
        }
        for (i = 0; i < 48; i = i + 1) { lattice[i] = next[i]; }
        total = total + lattice[step % 48];
    }
    return total & 255;
}
"""),
    _p("sphinx3", "fp", """
int gauss_score(int *mean, int *obs, int n) {
    int score; int i; int d;
    score = 0;
    for (i = 0; i < n; i = i + 1) {
        d = obs[i] - mean[i];
        score = score + d * d / 16;
    }
    return score;
}
int main() {
    int mean[24];
    int obs[24];
    int f; int i; int total;
    for (i = 0; i < 24; i = i + 1) { mean[i] = (i * 13) % 40; }
    total = 0;
    for (f = 0; f < 60; f = f + 1) {
        for (i = 0; i < 24; i = i + 1) { obs[i] = (i * f) % 43; }
        total = total + gauss_score(mean, obs, 24);
    }
    return total & 255;
}
"""),
    _p("gromacs", "fp", """
int bond_energy(int *coords, int a, int b, int k) {
    int d;
    d = coords[a] - coords[b];
    return k * d * d / 100;
}
int main() {
    int coords[40];
    int i; int step; int total;
    for (i = 0; i < 40; i = i + 1) { coords[i] = (i * 23) % 70; }
    total = 0;
    for (step = 0; step < 80; step = step + 1) {
        for (i = 0; i + 1 < 40; i = i + 2) {
            total = total + bond_energy(coords, i, i + 1, step % 7 + 1);
        }
    }
    return total & 255;
}
"""),
    _p("bwaves", "fp", """
int wave_step(int *field, int i, int n, int dt) {
    int laplacian;
    laplacian = field[(i + 1) % n] + field[(i + n - 1) % n] - 2 * field[i];
    return field[i] + laplacian * dt / 8;
}
int main() {
    int field[56];
    int next[56];
    int i; int t; int total;
    for (i = 0; i < 56; i = i + 1) { field[i] = (i * 41) % 128; }
    total = 0;
    for (t = 0; t < 20; t = t + 1) {
        for (i = 0; i < 56; i = i + 1) {
            next[i] = wave_step(field, i, 56, t % 5 + 1);
        }
        for (i = 0; i < 56; i = i + 1) { field[i] = next[i]; }
        total = total ^ field[t % 56];
    }
    return (total + 4096) & 255;
}
"""),
    _p("gamess", "fp", """
int two_electron(int *basis, int i, int j, int k, int l) {
    return (basis[i] * basis[j] - basis[k] * basis[l]) / 16;
}
int main() {
    int basis[16];
    int i; int j; int total;
    for (i = 0; i < 16; i = i + 1) { basis[i] = (i * 19) % 60 + 1; }
    total = 0;
    for (i = 0; i < 16; i = i + 1) {
        for (j = 0; j < 16; j = j + 1) {
            total = total + two_electron(basis, i, j, (i + j) % 16, (i * j) % 16);
        }
    }
    return (total + 1048576) & 255;
}
"""),
    _p("zeusmp", "fp", """
int advect(int *density, int *velocity, int i, int n) {
    int flux;
    flux = density[i] * velocity[i] / 32;
    return density[i] - flux + density[(i + n - 1) % n] * velocity[(i + n - 1) % n] / 32;
}
int main() {
    int density[48];
    int velocity[48];
    int next[48];
    int i; int t; int total;
    for (i = 0; i < 48; i = i + 1) {
        density[i] = (i * 53) % 200 + 10;
        velocity[i] = (i * 7) % 15;
    }
    total = 0;
    for (t = 0; t < 18; t = t + 1) {
        for (i = 0; i < 48; i = i + 1) {
            next[i] = advect(density, velocity, i, 48);
        }
        for (i = 0; i < 48; i = i + 1) { density[i] = next[i]; }
        total = total + density[t % 48];
    }
    return (total + 65536) & 255;
}
"""),
    _p("cactusADM", "fp", """
int evolve_metric(int *metric, int i, int n, int lapse) {
    int ricci;
    ricci = metric[(i + 1) % n] - 2 * metric[i] + metric[(i + n - 1) % n];
    return metric[i] + lapse * ricci / 16;
}
int main() {
    int metric[40];
    int next[40];
    int i; int step; int total;
    for (i = 0; i < 40; i = i + 1) { metric[i] = 1000 + (i * 77) % 300; }
    total = 0;
    for (step = 0; step < 25; step = step + 1) {
        for (i = 0; i < 40; i = i + 1) {
            next[i] = evolve_metric(metric, i, 40, step % 4 + 1);
        }
        for (i = 0; i < 40; i = i + 1) { metric[i] = next[i]; }
        total = total ^ metric[(step * 3) % 40];
    }
    return (total + 65536) & 255;
}
"""),
    _p("leslie3d", "fp", """
int flux_split(int pressure, int velocity, int gamma) {
    int mach;
    mach = velocity * 8 / (pressure / 16 + 1);
    if (mach > 8) { return pressure; }
    if (mach < 0 - 8) { return 0; }
    return pressure * (mach + 8) / 16;
}
int main() {
    int pressure[44];
    int i; int t; int total;
    for (i = 0; i < 44; i = i + 1) { pressure[i] = 500 + (i * 31) % 400; }
    total = 0;
    for (t = 0; t < 40; t = t + 1) {
        for (i = 0; i < 44; i = i + 1) {
            total = total + flux_split(pressure[i], (i - 22) * (t % 3), 14);
        }
    }
    return (total + 1048576) & 255;
}
"""),
    _p("calculix", "fp", """
int elem_stiffness(int *node, int a, int b, int youngs) {
    int length;
    length = node[b] - node[a];
    if (length < 1) { length = 1; }
    return youngs / length;
}
int assemble_row(int *node, int *row, int i, int n) {
    int k;
    k = elem_stiffness(node, i, (i + 1) % n, 21000);
    row[i] = row[i] + k;
    row[(i + 1) % n] = row[(i + 1) % n] - k;
    return k;
}
int main() {
    int node[32];
    int row[32];
    int i; int pass; int total;
    for (i = 0; i < 32; i = i + 1) { node[i] = i * 13 + (i * i) % 7; row[i] = 0; }
    total = 0;
    for (pass = 0; pass < 30; pass = pass + 1) {
        for (i = 0; i < 32; i = i + 1) {
            total = total + assemble_row(node, row, i, 32);
        }
    }
    return (total + 1048576) & 255;
}
"""),
    _p("GemsFDTD", "fp", """
int update_e(int *e_field, int *h_field, int i, int n) {
    return e_field[i] + (h_field[i] - h_field[(i + n - 1) % n]) / 4;
}
int update_h(int *e_field, int *h_field, int i, int n) {
    return h_field[i] + (e_field[(i + 1) % n] - e_field[i]) / 4;
}
int main() {
    int e_field[36];
    int h_field[36];
    int i; int t; int total;
    for (i = 0; i < 36; i = i + 1) {
        e_field[i] = (i * 29) % 100;
        h_field[i] = (i * 43) % 100;
    }
    total = 0;
    for (t = 0; t < 22; t = t + 1) {
        for (i = 0; i < 36; i = i + 1) {
            e_field[i] = update_e(e_field, h_field, i, 36);
        }
        for (i = 0; i < 36; i = i + 1) {
            h_field[i] = update_h(e_field, h_field, i, 36);
        }
        total = total ^ e_field[t % 36];
    }
    return (total + 4096) & 255;
}
"""),
    _p("tonto", "fp", """
int overlap_integral(int *orbital, int i, int j, int scale) {
    int s;
    s = orbital[i] * orbital[j];
    return s / (scale + (i - j) * (i - j));
}
int main() {
    int orbital[20];
    int i; int j; int total;
    for (i = 0; i < 20; i = i + 1) { orbital[i] = (i * 37) % 90 + 5; }
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        for (j = 0; j < 20; j = j + 1) {
            total = total + overlap_integral(orbital, i, j, 4);
        }
    }
    return (total + 1048576) & 255;
}
"""),
]

SPECINT = [p for p in SPEC_PROGRAMS if p.kind == "int"]
SPECFP = [p for p in SPEC_PROGRAMS if p.kind == "fp"]


def program(name: str) -> SpecProgram:
    """Look a benchmark up by name."""
    for candidate in SPEC_PROGRAMS:
        if candidate.name == name:
            return candidate
    raise KeyError(name)
