"""Database workloads (paper Table IV: MySQL via sysbench, SQLite via
threadtest3).

Each engine is a MiniC query processor over an in-memory table: the
handler parses a tiny query language (``GET <key>``, ``SUM <lo> <hi>``,
``PUT <key> <value>``), scans/updates the table, and formats a reply.
MySQL-style runs one query per request; SQLite-style (threadtest
character) runs a large batch per invocation, which is why its per-call
time is two orders of magnitude bigger in the paper (167 ms vs 3.3 ms).

Memory usage is measured from the simulated address space (mapped
segments + live heap), matching the paper's observation that canary
schemes leave memory footprints untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Optional

from ..core.deploy import build, deploy
from ..crypto.random import EntropySource
from ..kernel.kernel import Kernel
from .webserver import CYCLES_PER_MS

MYSQL_SOURCE = """
int table_init(int *table, int rows) {
    int i;
    for (i = 0; i < rows; i = i + 1) {
        table[i] = (i * 2654435761) % 10000;
    }
    return rows;
}

int scan_sum(int *table, int rows, int lo, int hi) {
    int acc; int i;
    acc = 0;
    for (i = 0; i < rows; i = i + 1) {
        if (table[i] >= lo && table[i] <= hi) {
            acc = acc + table[i];
        }
    }
    return acc;
}

int query(int n) {
    char text[128];
    char reply[96];
    int *table;
    int len; int value;
    table = malloc(1600);
    table_init(table, 200);
    len = read(0, text, 127);
    text[len] = 0;
    if (text[0] == 'S') {
        value = scan_sum(table, 200, 1000, 8000);
    } else {
        if (text[0] == 'G') {
            value = table[(text[4] * 7) % 200];
        } else {
            table[(text[4] * 3) % 200] = len;
            value = 1;
        }
    }
    sprintf(reply, "OK %d", value);
    write(1, reply, strlen(reply));
    return value & 255;
}

int main() { return 0; }
"""

SQLITE_SOURCE = """
int bt_insert(int *keys, int count, int key) {
    int i;
    i = count;
    while (i > 0 && keys[i - 1] > key) {
        keys[i] = keys[i - 1];
        i = i - 1;
    }
    keys[i] = key;
    return count + 1;
}

int bt_lookup(int *keys, int count, int key) {
    int lo; int hi; int mid;
    lo = 0;
    hi = count;
    while (lo < hi) {
        mid = (lo + hi) / 2;
        if (keys[mid] < key) { lo = mid + 1; } else { hi = mid; }
    }
    return lo;
}

int query(int n) {
    char journal[64];
    int *keys;
    int count; int i; int total;
    keys = malloc(2400);
    count = 0;
    total = 0;
    for (i = 0; i < 70; i = i + 1) {
        count = bt_insert(keys, count, (i * 389) % 1000);
        if (count > 90) { count = 90; }
        sprintf(journal, "txn%d", i);
        total = total + bt_lookup(keys, count, (i * 151) % 1000);
    }
    return total & 255;
}

int main() { return 0; }
"""


@dataclass
class DatabaseStats:
    """Measured query statistics for one build."""

    database: str
    scheme: str
    queries: int
    mean_query_ms: float
    memory_mb: float
    cpu_cycles_per_query: float
    failures: int


@dataclass
class DatabaseWorkload:
    """One query engine plus its latency profile."""

    name: str
    source: str
    base_latency_ms: float
    #: Resident memory baseline (buffer pools etc. the simulator does not
    #: model byte-for-byte; the paper reports 22.59/20.58 MB).
    resident_mb: float
    queries_per_run: int = 25

    def query_text(self, entropy: EntropySource, index: int) -> bytes:
        kinds = (b"SUM 1000 8000", b"GET k%d", b"PUT k%d 42")
        text = kinds[index % len(kinds)]
        if b"%d" in text:
            text = text.replace(b"%d", str(entropy.randrange(100)).encode())
        return text

    def measure(
        self,
        scheme: str,
        *,
        seed: int = 20180626,
        kernel: Optional[Kernel] = None,
    ) -> DatabaseStats:
        """Run the query mix in threaded-server mode and aggregate."""
        kernel = kernel or Kernel(seed)
        binary = build(self.source, scheme, name=self.name)
        process, _ = deploy(kernel, binary, scheme)
        entropy = EntropySource(seed ^ 0x51DE)
        times: List[float] = []
        cycles: List[float] = []
        failures = 0
        for index in range(self.queries_per_run):
            process.stdin.clear()
            process.feed_stdin(self.query_text(entropy, index))
            result = process.call("query", (0,))
            if result.crashed:
                failures += 1
                break
            cpu_ms = result.cycles / CYCLES_PER_MS
            times.append(self.base_latency_ms + cpu_ms)
            cycles.append(result.cycles)
        mapped = sum(seg.size for seg in process.memory.segments())
        heap_used = process.brk - process.memory.segment("heap").base
        memory_mb = self.resident_mb + (mapped + heap_used) / (1024.0 * 1024.0)
        return DatabaseStats(
            database=self.name,
            scheme=scheme,
            queries=len(times),
            mean_query_ms=mean(times) if times else float("nan"),
            memory_mb=memory_mb,
            cpu_cycles_per_query=mean(cycles) if cycles else float("nan"),
            failures=failures,
        )


#: Table IV's two engines; base latencies anchor to the paper's natives
#: (3.33 ms per sysbench query, 167.27 ms per threadtest batch).
MYSQL = DatabaseWorkload("mysql", MYSQL_SOURCE, base_latency_ms=3.3,
                         resident_mb=22.0, queries_per_run=15)
SQLITE = DatabaseWorkload("sqlite", SQLITE_SOURCE, base_latency_ms=167.2,
                          resident_mb=20.0, queries_per_run=6)

DATABASES = (MYSQL, SQLITE)
