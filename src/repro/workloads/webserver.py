"""Web-server workloads (paper Table III: Apache2 and Nginx).

Each server is a MiniC request handler run in the forking-worker model
(the same structure the attacks target).  Per-request response time is

    response_ms = base_latency + handler_cycles / clock + jitter

where ``base_latency`` models the network/queueing/IO share of the
paper's measured times (33 ms for Apache Benchmark against Apache2 at
concurrency 500, 3.1 ms for Nginx) — the component canary schemes cannot
touch, and the reason Table III's deltas are in the third decimal.  The
CPU share is *measured*, not assumed: it is the simulated cycles the
handler actually executes under each scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Optional

from ..core.deploy import build, deploy
from ..crypto.random import EntropySource
from ..kernel.kernel import Kernel

#: Simulated CPU clock (i7-4770K-class), cycles per millisecond.  Must
#: equal ``repro.harness.metrics.CLOCK_HZ / 1e3`` — kept as a literal
#: because importing the harness package from workloads would be
#: circular; ``tests/harness/test_metrics.py`` pins the two together.
CYCLES_PER_MS = 3_500_000.0

APACHE_SOURCE = """
int check_access(char *path, int n) {
    char rule[64];
    int i; int allow;
    allow = 1;
    for (i = 0; i < 4; i = i + 1) {
        sprintf(rule, "/private%d", i);
        if (strcmp(path, rule) == 0) { allow = 0; }
    }
    return allow;
}

int log_request(char *method, char *path, int status) {
    char line[192];
    sprintf(line, "%s %s -> %d", method, path, status);
    return strlen(line);
}

int handler(int n) {
    char request[256];
    char method[16];
    char path[128];
    char response[224];
    int len; int i; int j; int status;
    len = read(0, request, 255);
    request[len] = 0;
    i = 0;
    j = 0;
    while (request[i] && request[i] != ' ' && j < 15) {
        method[j] = request[i];
        i = i + 1;
        j = j + 1;
    }
    method[j] = 0;
    while (request[i] == ' ') { i = i + 1; }
    j = 0;
    while (request[i] && request[i] != ' ' && j < 127) {
        path[j] = request[i];
        i = i + 1;
        j = j + 1;
    }
    path[j] = 0;
    status = 200;
    if (!check_access(path, j)) { status = 403; }
    if (strcmp(method, "GET") != 0 && strcmp(method, "POST") != 0) {
        status = 405;
    }
    sprintf(response, "HTTP/1.1 %d OK content=%s", status, path);
    write(1, response, strlen(response));
    log_request(method, path, status);
    return status == 200;
}

int main() { return 0; }
"""

NGINX_SOURCE = """
int handler(int n) {
    char request[256];
    char path[96];
    char response[128];
    int len; int i; int j;
    len = read(0, request, 255);
    request[len] = 0;
    i = 0;
    while (request[i] && request[i] != ' ') { i = i + 1; }
    while (request[i] == ' ') { i = i + 1; }
    j = 0;
    while (request[i] && request[i] != ' ' && j < 95) {
        path[j] = request[i];
        i = i + 1;
        j = j + 1;
    }
    path[j] = 0;
    sprintf(response, "HTTP/1.1 200 %s", path);
    write(1, response, strlen(response));
    return 1;
}

int main() { return 0; }
"""


@dataclass
class ServerStats:
    """Measured service statistics for one build."""

    server: str
    scheme: str
    requests: int
    mean_response_ms: float
    cpu_cycles_per_request: float
    failures: int


@dataclass
class WebServerWorkload:
    """One server program plus its latency profile."""

    name: str
    source: str
    base_latency_ms: float
    jitter_ms: float = 0.0005

    def request(self, entropy: EntropySource, index: int) -> bytes:
        """Generate an ab-style request."""
        paths = ("/index.html", "/api/v1/items", "/static/app.js",
                 "/private1", "/images/logo.png")
        path = paths[index % len(paths)]
        return f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()

    def measure(
        self,
        scheme: str,
        *,
        requests: int = 60,
        seed: int = 20180625,
        kernel: Optional[Kernel] = None,
        mode: str = "fork",
    ) -> ServerStats:
        """Serve ``requests`` via forked workers and aggregate timing.

        The paper stresses with 100 000 requests at concurrency 500; the
        simulator serves a sample — per-request cost is deterministic
        given the seed, so the sample mean converges immediately.
        ``mode`` selects the worker model: ``"fork"`` (prefork, default)
        or ``"thread"`` (the paper's "multithread mode").
        """
        if mode not in ("fork", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        kernel = kernel or Kernel(seed)
        binary = build(self.source, scheme, name=self.name)
        parent, _ = deploy(kernel, binary, scheme)
        entropy = EntropySource(seed ^ 0xABCD)
        times: List[float] = []
        cycles: List[float] = []
        failures = 0
        for index in range(requests):
            if mode == "fork":
                worker = kernel.fork(parent)
            else:
                worker = kernel.create_thread(parent)
            worker.stdin.clear()
            worker.feed_stdin(self.request(entropy, index))
            result = worker.call("handler", (0,))
            if result.crashed:
                failures += 1
            cpu_ms = result.cycles / CYCLES_PER_MS
            jitter = abs(entropy.gauss(0.0, self.jitter_ms))
            times.append(self.base_latency_ms + cpu_ms + jitter)
            cycles.append(result.cycles)
            if mode == "fork":
                kernel.reap(worker)
        return ServerStats(
            server=self.name,
            scheme=scheme,
            requests=requests,
            mean_response_ms=mean(times),
            cpu_cycles_per_request=mean(cycles),
            failures=failures,
        )


#: Table III's two servers.  Base latencies anchor to the paper's native
#: measurements (33.006 ms and 3.088 ms) minus the measured CPU share.
APACHE2 = WebServerWorkload("apache2", APACHE_SOURCE, base_latency_ms=33.0)
NGINX = WebServerWorkload("nginx", NGINX_SOURCE, base_latency_ms=3.085)

WEB_SERVERS = (APACHE2, NGINX)
