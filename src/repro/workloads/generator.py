"""Synthetic workload generator.

Produces valid, terminating MiniC programs with *controlled structure* —
how many functions, how buffer-dense, how call-dense — so experiments can
sweep exactly the variable that drives canary overhead:

    overhead ≈ (protected calls × per-call canary cycles) / total cycles

The SPEC-like suite gives realistic fixed points; the generator fills the
space between them (`benchmarks/bench_sweep_call_density.py`).

Programs are deterministic given the entropy seed, and every generated
program returns a checksum so builds can be differentially validated
across schemes, exactly like the curated suite.  Two generator families
live here:

* :class:`GeneratorConfig`/:func:`generate_program` — the original
  rectangular worker/dispatch shape the overhead sweeps use;
* :class:`ProgramSpec`/:func:`generate_fuzz_spec` — a structural IR for
  the differential conformance fuzzer (`repro.fuzz`): nested calls,
  bounded recursion, mixed buffer sizes, setjmp/longjmp, fork points and
  in-bounds libc traffic.  Specs render to MiniC deterministically, are
  JSON round-trippable (the regression corpus stores them), and shrink
  structurally (`repro.fuzz.shrink` deletes functions/statements and
  re-renders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..crypto.random import EntropySource

#: Inner-loop body templates; `{i}` is the loop index, `{arg}` a parameter.
_WORK_SNIPPETS = (
    "acc = acc + ({i} * 7 + {arg}) % 23;",
    "acc = acc ^ ({i} << 2);",
    "acc = acc + buf[{i} % {bufmod}];",
    "buf[{i} % {bufmod}] = acc % 120;",
    "acc = acc * 3 + 1;",
    "if (acc % 5 == 0) {{ acc = acc + {arg}; }}",
)


@dataclass
class GeneratorConfig:
    """Shape parameters for one synthetic program."""

    #: Number of leaf worker functions.
    functions: int = 4
    #: Local buffer bytes per worker (0 = unprotected workers).
    buffer_bytes: int = 32
    #: Iterations of the main dispatch loop.
    outer_iterations: int = 40
    #: Iterations of each worker's inner loop — lower = more call-dense.
    inner_iterations: int = 8


def generate_program(config: GeneratorConfig, entropy: EntropySource) -> str:
    """Emit a MiniC source with the requested structure."""
    parts: List[str] = []
    bufmod = max(1, config.buffer_bytes - 1)
    for index in range(config.functions):
        lines = [f"int worker{index}(int arg) {{"]
        if config.buffer_bytes:
            lines.append(f"    char buf[{config.buffer_bytes}];")
        lines.append("    int acc;")
        lines.append("    int i;")
        lines.append("    acc = arg;")
        if config.buffer_bytes:
            lines.append("    buf[0] = arg;")
        lines.append(f"    for (i = 0; i < {config.inner_iterations}; i = i + 1) {{")
        for _ in range(3):
            snippet = entropy.choice(list(_WORK_SNIPPETS))
            if "buf" in snippet and not config.buffer_bytes:
                snippet = "acc = acc + {i};"
            lines.append(
                "        "
                + snippet.format(i="i", arg="arg", bufmod=bufmod)
            )
        lines.append("    }")
        lines.append("    return acc & 0xffff;")
        lines.append("}")
        parts.append("\n".join(lines))

    dispatch = [f"int main() {{", "    int total;", "    int round;",
                "    total = 0;",
                f"    for (round = 0; round < {config.outer_iterations}; "
                f"round = round + 1) {{"]
    for index in range(config.functions):
        dispatch.append(
            f"        total = total + worker{index}(round + {index});"
        )
    dispatch.append("    }")
    dispatch.append("    return total & 255;")
    dispatch.append("}")
    parts.append("\n".join(dispatch))
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Fuzzer program specs (structural IR, shrinkable, JSON round-trippable)
# ---------------------------------------------------------------------------

#: Buffer sizes the fuzzer mixes (0 = unprotected function).
FUZZ_BUFFER_SIZES = (0, 8, 16, 24, 32, 64)

#: In-bounds libc operations a function may perform on its buffer.
#: Each maps to a statement block; all stay strictly inside the buffer.
LIBC_OPS = ("memset", "strcpy", "strlen", "memcmp")

#: Minimum buffer bytes each libc op needs to stay in-bounds.
_LIBC_MIN_BUFFER = {"memset": 8, "strcpy": 8, "strlen": 8, "memcmp": 8}

#: Name of the bounded-recursion function when a spec includes one.
RECURSION_NAME = "frec"


@dataclass
class FunctionSpec:
    """One generated function: a loop of work snippets over a local buffer,
    optional in-bounds libc traffic, and calls into earlier functions
    (the call graph is acyclic by construction)."""

    name: str
    buffer_bytes: int = 0
    inner_iterations: int = 0
    #: Indices into :data:`_WORK_SNIPPETS`.
    ops: List[int] = field(default_factory=list)
    libc_op: str = ""
    #: Callee names; generation only permits earlier functions.
    calls: List[str] = field(default_factory=list)
    #: Mark the buffer ``critical`` (P-SSP-LV selective protection).
    critical: bool = False


@dataclass
class ProgramSpec:
    """A whole fuzz program: functions + main-loop shape + feature flags."""

    functions: List[FunctionSpec] = field(default_factory=list)
    #: Function names main's dispatch loop calls (may include frec).
    main_calls: List[str] = field(default_factory=list)
    outer_iterations: int = 2
    #: Depth bound of the recursive helper (0 = none).
    recursion_depth: int = 0
    recursion_buffer: int = 16
    use_setjmp: bool = False
    use_fork: bool = False
    #: Function the forked child runs before exiting ('' = first function).
    fork_callee: str = ""

    # -- feature queries (scheme gating in repro.fuzz.conformance) ---------

    @property
    def uses_fork(self) -> bool:
        return self.use_fork and bool(self.functions)

    @property
    def uses_setjmp(self) -> bool:
        return self.use_setjmp

    # -- JSON round-trip (the regression corpus stores specs) --------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "functions": [
                {
                    "name": f.name,
                    "buffer_bytes": f.buffer_bytes,
                    "inner_iterations": f.inner_iterations,
                    "ops": list(f.ops),
                    "libc_op": f.libc_op,
                    "calls": list(f.calls),
                    "critical": f.critical,
                }
                for f in self.functions
            ],
            "main_calls": list(self.main_calls),
            "outer_iterations": self.outer_iterations,
            "recursion_depth": self.recursion_depth,
            "recursion_buffer": self.recursion_buffer,
            "use_setjmp": self.use_setjmp,
            "use_fork": self.use_fork,
            "fork_callee": self.fork_callee,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ProgramSpec":
        spec = cls(
            functions=[
                FunctionSpec(
                    name=f["name"],
                    buffer_bytes=int(f.get("buffer_bytes", 0)),
                    inner_iterations=int(f.get("inner_iterations", 0)),
                    ops=[int(i) for i in f.get("ops", [])],
                    libc_op=f.get("libc_op", ""),
                    calls=list(f.get("calls", [])),
                    critical=bool(f.get("critical", False)),
                )
                for f in data.get("functions", [])
            ],
            main_calls=list(data.get("main_calls", [])),
            outer_iterations=int(data.get("outer_iterations", 1)),
            recursion_depth=int(data.get("recursion_depth", 0)),
            recursion_buffer=int(data.get("recursion_buffer", 0)),
            use_setjmp=bool(data.get("use_setjmp", False)),
            use_fork=bool(data.get("use_fork", False)),
            fork_callee=data.get("fork_callee", ""),
        )
        return spec


def _render_libc_op(op: str, size: int) -> List[str]:
    """In-bounds libc traffic over ``buf`` (size checked at generation)."""
    if op == "memset":
        return [
            f"    memset(buf, (arg & 7) + 1, {size});",
            f"    acc = acc + buf[{size - 1}];",
        ]
    if op == "strcpy":
        return [
            '    strcpy(buf, "fzz");',
            "    acc = acc + strlen(buf);",
        ]
    if op == "strlen":
        return [
            "    buf[0] = 65;",
            "    buf[1] = 0;",
            "    acc = acc + strlen(buf);",
        ]
    if op == "memcmp":
        return [f"    acc = acc + memcmp(buf, buf, {size});"]
    return []


def _render_function(spec: FunctionSpec) -> str:
    size = spec.buffer_bytes
    bufmod = max(1, size - 1)
    lines = [f"int {spec.name}(int arg) {{"]
    if size:
        qualifier = "critical " if spec.critical else ""
        lines.append(f"    {qualifier}char buf[{size}];")
    lines.append("    int acc; int i;")
    lines.append("    acc = arg;")
    if size:
        # Fully initialise the buffer before any snippet reads it: a read
        # of dead-frame garbage would make program behaviour depend on the
        # scheme's stack layout, which is exactly what the conformance
        # contract forbids the *schemes* from doing.
        lines.append(f"    for (i = 0; i < {size}; i = i + 1) {{")
        lines.append("        buf[i] = (arg + i) & 63;")
        lines.append("    }")
    if spec.inner_iterations and spec.ops:
        lines.append(
            f"    for (i = 0; i < {spec.inner_iterations}; i = i + 1) {{"
        )
        for op_index in spec.ops:
            snippet = _WORK_SNIPPETS[op_index % len(_WORK_SNIPPETS)]
            if "buf" in snippet and not size:
                snippet = "acc = acc + {i};"
            lines.append("        " + snippet.format(i="i", arg="arg", bufmod=bufmod))
        lines.append("    }")
    if spec.libc_op and size >= _LIBC_MIN_BUFFER.get(spec.libc_op, 1):
        lines.extend(_render_libc_op(spec.libc_op, size))
    for callee in spec.calls:
        lines.append(f"    acc = acc + {callee}(acc & 15);")
    lines.append("    return acc & 0xffff;")
    lines.append("}")
    return "\n".join(lines)


def _render_recursion(spec: ProgramSpec) -> str:
    size = spec.recursion_buffer
    lines = [f"int {RECURSION_NAME}(int n) {{"]
    if size:
        lines.append(f"    char rbuf[{size}];")
        lines.append("    rbuf[0] = n & 31;")
        lines.append("    if (n <= 0) { return rbuf[0] & 1; }")
    else:
        lines.append("    if (n <= 0) { return n & 1; }")
    lines.append(f"    return {RECURSION_NAME}(n - 1) + (n & 3);")
    lines.append("}")
    return "\n".join(lines)


_SETJMP_HELPERS = """\
int jmp_helper(int env) {
    char pad[16];
    pad[0] = 1;
    longjmp(env, 5);
    return 0;
}

int jmp_work(int env) {
    char jbuf[16];
    jbuf[0] = 2;
    return jmp_helper(env);
}"""


def render_program(spec: ProgramSpec) -> str:
    """Render a :class:`ProgramSpec` to MiniC source (deterministic)."""
    parts: List[str] = []
    if spec.recursion_depth:
        parts.append(_render_recursion(spec))
    for function in spec.functions:
        parts.append(_render_function(function))
    if spec.use_setjmp:
        parts.append(_SETJMP_HELPERS)

    main = ["int main() {", "    int total; int round;", "    total = 0;"]
    if spec.use_setjmp:
        main.append("    int env[8]; int jr;")
        main.append("    jr = setjmp(env);")
        main.append("    if (jr == 0) {")
        main.append("        jmp_work(env);")
        main.append("        total = total + 99;")
        main.append("    } else {")
        main.append("        total = total + jr;")
        main.append("    }")
    if spec.main_calls and spec.outer_iterations:
        main.append(
            f"    for (round = 0; round < {spec.outer_iterations}; "
            "round = round + 1) {"
        )
        for offset, name in enumerate(spec.main_calls):
            if name == RECURSION_NAME:
                main.append(
                    f"        total = total + {RECURSION_NAME}"
                    f"({spec.recursion_depth});"
                )
            else:
                main.append(f"        total = total + {name}(round + {offset});")
        main.append("    }")
    if spec.uses_fork:
        callee = spec.fork_callee or spec.functions[0].name
        main.append("    int pid;")
        main.append("    pid = fork();")
        main.append("    if (pid == 0) {")
        main.append(f"        return {callee}(7) & 0xff;")
        main.append("    }")
        main.append("    total = total + 1;")
    main.append("    return total & 255;")
    main.append("}")
    parts.append("\n".join(main))
    return "\n\n".join(parts)


def generate_fuzz_spec(
    entropy: EntropySource,
    *,
    allow_fork: bool = True,
    allow_setjmp: bool = True,
    max_functions: int = 4,
) -> ProgramSpec:
    """Draw a random program shape from ``entropy`` (deterministic).

    Shapes stay small on purpose: the conformance fuzzer runs every
    program under ~a dozen scheme builds on both interpreter paths, so
    per-program instruction counts in the low thousands keep a
    200-program campaign tractable.
    """
    spec = ProgramSpec()
    count = 1 + entropy.randrange(max_functions)
    names: List[str] = []
    for index in range(count):
        function = FunctionSpec(name=f"fz{index}")
        function.buffer_bytes = entropy.choice(list(FUZZ_BUFFER_SIZES))
        function.inner_iterations = entropy.randrange(7)
        function.ops = [
            entropy.randrange(len(_WORK_SNIPPETS))
            for _ in range(1 + entropy.randrange(3))
        ]
        if function.buffer_bytes >= 8 and entropy.randrange(3) == 0:
            function.libc_op = entropy.choice(list(LIBC_OPS))
        if function.buffer_bytes and entropy.randrange(5) == 0:
            function.critical = True
        # Acyclic nesting: call only already-generated functions.
        for earlier in names:
            if len(function.calls) < 2 and entropy.randrange(3) == 0:
                function.calls.append(earlier)
        names.append(function.name)
        spec.functions.append(function)

    if entropy.randrange(2) == 0:
        spec.recursion_depth = 1 + entropy.randrange(6)
        spec.recursion_buffer = entropy.choice([0, 8, 16, 32])
    spec.use_setjmp = allow_setjmp and entropy.randrange(4) == 0
    spec.use_fork = allow_fork and entropy.randrange(4) == 0
    spec.fork_callee = entropy.choice(names)
    spec.outer_iterations = 1 + entropy.randrange(3)

    pool = list(names) + ([RECURSION_NAME] if spec.recursion_depth else [])
    entropy.shuffle(pool)
    spec.main_calls = pool[: 1 + entropy.randrange(min(3, len(pool)))]
    return spec


def generate_fuzz_program(
    seed: int,
    *,
    allow_fork: bool = True,
    allow_setjmp: bool = True,
) -> "tuple[ProgramSpec, str]":
    """Seed → (spec, MiniC source); the fuzzer's one-seed-one-program map."""
    spec = generate_fuzz_spec(
        EntropySource(seed), allow_fork=allow_fork, allow_setjmp=allow_setjmp
    )
    return spec, render_program(spec)


def call_density_sweep_configs() -> List[GeneratorConfig]:
    """Configurations from loop-heavy to call-heavy.

    Outer×functions = protected calls; inner iterations set the work each
    call amortises its canary cost over.
    """
    return [
        GeneratorConfig(functions=2, inner_iterations=64, outer_iterations=20),
        GeneratorConfig(functions=4, inner_iterations=16, outer_iterations=30),
        GeneratorConfig(functions=4, inner_iterations=8, outer_iterations=40),
        GeneratorConfig(functions=6, inner_iterations=4, outer_iterations=50),
        GeneratorConfig(functions=8, inner_iterations=2, outer_iterations=60),
    ]
