"""Synthetic workload generator.

Produces valid, terminating MiniC programs with *controlled structure* —
how many functions, how buffer-dense, how call-dense — so experiments can
sweep exactly the variable that drives canary overhead:

    overhead ≈ (protected calls × per-call canary cycles) / total cycles

The SPEC-like suite gives realistic fixed points; the generator fills the
space between them (`benchmarks/bench_sweep_call_density.py`).

Programs are deterministic given the entropy seed, and every generated
program returns a checksum so builds can be differentially validated
across schemes, exactly like the curated suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..crypto.random import EntropySource

#: Inner-loop body templates; `{i}` is the loop index, `{arg}` a parameter.
_WORK_SNIPPETS = (
    "acc = acc + ({i} * 7 + {arg}) % 23;",
    "acc = acc ^ ({i} << 2);",
    "acc = acc + buf[{i} % {bufmod}];",
    "buf[{i} % {bufmod}] = acc % 120;",
    "acc = acc * 3 + 1;",
    "if (acc % 5 == 0) {{ acc = acc + {arg}; }}",
)


@dataclass
class GeneratorConfig:
    """Shape parameters for one synthetic program."""

    #: Number of leaf worker functions.
    functions: int = 4
    #: Local buffer bytes per worker (0 = unprotected workers).
    buffer_bytes: int = 32
    #: Iterations of the main dispatch loop.
    outer_iterations: int = 40
    #: Iterations of each worker's inner loop — lower = more call-dense.
    inner_iterations: int = 8


def generate_program(config: GeneratorConfig, entropy: EntropySource) -> str:
    """Emit a MiniC source with the requested structure."""
    parts: List[str] = []
    bufmod = max(1, config.buffer_bytes - 1)
    for index in range(config.functions):
        lines = [f"int worker{index}(int arg) {{"]
        if config.buffer_bytes:
            lines.append(f"    char buf[{config.buffer_bytes}];")
        lines.append("    int acc;")
        lines.append("    int i;")
        lines.append("    acc = arg;")
        if config.buffer_bytes:
            lines.append("    buf[0] = arg;")
        lines.append(f"    for (i = 0; i < {config.inner_iterations}; i = i + 1) {{")
        for _ in range(3):
            snippet = entropy.choice(list(_WORK_SNIPPETS))
            if "buf" in snippet and not config.buffer_bytes:
                snippet = "acc = acc + {i};"
            lines.append(
                "        "
                + snippet.format(i="i", arg="arg", bufmod=bufmod)
            )
        lines.append("    }")
        lines.append("    return acc & 0xffff;")
        lines.append("}")
        parts.append("\n".join(lines))

    dispatch = [f"int main() {{", "    int total;", "    int round;",
                "    total = 0;",
                f"    for (round = 0; round < {config.outer_iterations}; "
                f"round = round + 1) {{"]
    for index in range(config.functions):
        dispatch.append(
            f"        total = total + worker{index}(round + {index});"
        )
    dispatch.append("    }")
    dispatch.append("    return total & 255;")
    dispatch.append("}")
    parts.append("\n".join(dispatch))
    return "\n\n".join(parts)


def call_density_sweep_configs() -> List[GeneratorConfig]:
    """Configurations from loop-heavy to call-heavy.

    Outer×functions = protected calls; inner iterations set the work each
    call amortises its canary cost over.
    """
    return [
        GeneratorConfig(functions=2, inner_iterations=64, outer_iterations=20),
        GeneratorConfig(functions=4, inner_iterations=16, outer_iterations=30),
        GeneratorConfig(functions=4, inner_iterations=8, outer_iterations=40),
        GeneratorConfig(functions=6, inner_iterations=4, outer_iterations=50),
        GeneratorConfig(functions=8, inner_iterations=2, outer_iterations=60),
    ]
