"""Program loader: lay a :class:`~repro.binfmt.elf.Binary` out in memory.

The loader assigns every function a code address (so return addresses on
the stack are real numbers an overflow can clobber), places rodata/bss in
the data segment, and produces the :class:`LoadedImage` the CPU executes
against.

Interposition (``LD_PRELOAD``) is a layering concern: callers may pass
``preload`` binaries whose function definitions shadow the main binary's
and libc's, mirroring the paper's deployment of the 16 KB P-SSP shared
library (§V-A).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import InvalidJump, LinkError
from ..isa.encoding import encoded_length
from ..isa.instructions import Function
from ..machine.memory import CODE_BASE, Memory
from .elf import Binary


class LoadedImage:
    """Executable code image with concrete addresses.

    Implements the protocol the CPU needs:

    * ``function(name)`` — simulated function or ``None``;
    * ``address_of(name, index=0)`` — code/data symbol address;
    * ``resolve(address)`` — map an address back to ``(Function, index)``,
      raising :class:`InvalidJump` when the address is not an instruction
      boundary (the usual fate of a corrupted return address).
    """

    def __init__(self, code_base: int = CODE_BASE) -> None:
        self.code_base = code_base
        self._functions: Dict[str, Function] = {}
        #: function name → (entry, [cumulative instruction offsets])
        self._layout: Dict[str, Tuple[int, List[int]]] = {}
        self._entries: List[int] = []
        self._entry_names: List[str] = []
        self._data_symbols: Dict[str, int] = {}
        self._next_code = code_base
        #: Monotonic counter bumped on every code change (new function or
        #: rewriter patch via ``add_function(replace=True)``).  CPUs key
        #: their decode caches on this, so stale pre-decoded closures are
        #: discarded the moment the image is patched.  Loaded ``Function``
        #: bodies must otherwise be treated as immutable; in-place patches
        #: must go through :meth:`add_function` (or call
        #: :meth:`invalidate_code`) to be picked up.
        self.code_generation = 0

    # -- construction --------------------------------------------------------

    def add_function(self, function: Function, *, replace: bool = False) -> int:
        """Lay out a function at the next free code address.

        With ``replace=True`` an existing definition is shadowed *at the
        same address* if the new body fits in the old footprint (the
        rewriter's layout-preservation constraint) or relocated otherwise.
        Returns the entry address.
        """
        if function.name in self._functions and not replace:
            raise LinkError(f"symbol {function.name!r} already loaded")
        offsets = [0]
        for instruction in function.body:
            offsets.append(offsets[-1] + encoded_length(instruction))
        if function.name in self._functions:
            entry, old_offsets = self._layout[function.name]
            if offsets[-1] > old_offsets[-1]:
                entry = self._next_code
                self._next_code += offsets[-1]
                self._insert_entry(entry, function.name)
        else:
            entry = self._next_code
            self._next_code += offsets[-1]
            self._insert_entry(entry, function.name)
        self._functions[function.name] = function
        self._layout[function.name] = (entry, offsets)
        self.code_generation += 1
        return entry

    def clone(self) -> "LoadedImage":
        """Shallow twin for spawning from a warmed image.

        Layout tables are copied (so ``add_function(replace=True)``
        patches stay private to one process), while the immutable
        ``Function`` bodies are shared — the same sharing ``fork``
        already relies on when parent and child reuse one image.
        """
        twin = LoadedImage(self.code_base)
        twin._functions = dict(self._functions)
        twin._layout = dict(self._layout)
        twin._entries = list(self._entries)
        twin._entry_names = list(self._entry_names)
        twin._data_symbols = dict(self._data_symbols)
        twin._next_code = self._next_code
        twin.code_generation = self.code_generation
        return twin

    def invalidate_code(self) -> None:
        """Force CPUs to re-decode: call after mutating a loaded body in
        place (the rewriter's splice path does this for you)."""
        self.code_generation += 1

    def _insert_entry(self, entry: int, name: str) -> None:
        position = bisect.bisect_left(self._entries, entry)
        self._entries.insert(position, entry)
        self._entry_names.insert(position, name)

    def add_data_symbol(self, name: str, address: int) -> None:
        """Record a data symbol's load address."""
        self._data_symbols[name] = address

    # -- the CPU-facing protocol ----------------------------------------------

    def function(self, name: str) -> Optional[Function]:
        """Simulated function for ``name`` or ``None``."""
        return self._functions.get(name)

    def functions(self) -> Iterable[Function]:
        """All loaded functions."""
        return self._functions.values()

    def address_of(self, name: str, index: int = 0) -> int:
        """Address of instruction ``index`` in function ``name``, or of a
        data symbol when ``name`` is not code."""
        if name in self._layout:
            entry, offsets = self._layout[name]
            if index >= len(offsets):
                raise InvalidJump(f"{name}: instruction index {index} out of range")
            return entry + offsets[index]
        if name in self._data_symbols:
            return self._data_symbols[name]
        raise LinkError(f"unresolved symbol {name!r}")

    def resolve(self, address: int) -> Tuple[Function, int]:
        """Map ``address`` to (function, instruction index)."""
        position = bisect.bisect_right(self._entries, address) - 1
        if position < 0:
            raise InvalidJump(f"jump to unmapped address {address:#x}")
        name = self._entry_names[position]
        entry, offsets = self._layout[name]
        offset = address - entry
        if offset >= offsets[-1] and offsets[-1] != offset:
            raise InvalidJump(f"jump to unmapped address {address:#x}")
        index = bisect.bisect_left(offsets, offset)
        if index >= len(offsets) or offsets[index] != offset:
            raise InvalidJump(
                f"jump into the middle of an instruction at {address:#x}"
            )
        if index >= len(self._functions[name].body):
            raise InvalidJump(f"jump past the end of {name} at {address:#x}")
        return self._functions[name], index

    def entry_of(self, name: str) -> int:
        """Entry address of a function (convenience)."""
        return self.address_of(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._functions or name in self._data_symbols


def load(
    binary: Binary,
    memory: Memory,
    *,
    preloads: Iterable[Binary] = (),
    code_base: int = CODE_BASE,
) -> LoadedImage:
    """Map ``binary`` (plus preloaded shared objects) into ``memory``.

    Preload binaries are laid out *first* and their symbols win name
    clashes, which is how ``LD_PRELOAD`` interposition works: the dynamic
    loader resolves a symbol to the first definition in search order.

    Data placement: rodata blobs and bss blocks are carved from the data
    segment in declaration order; their addresses are registered as data
    symbols on the image.
    """
    image = LoadedImage(code_base)
    for preload in preloads:
        for function in preload.functions.values():
            if image.function(function.name) is None:
                image.add_function(function)
    for function in binary.functions.values():
        if image.function(function.name) is None:
            image.add_function(function)
        # else: interposed by a preload — the binary's copy is shadowed.

    data_segment = memory.segment("data")
    cursor = data_segment.base
    for source in (*preloads, binary):
        for sym, blob in source.rodata.items():
            if sym in image:
                continue
            memory.write(cursor, blob)
            image.add_data_symbol(sym, cursor)
            cursor += len(blob) + (-len(blob) % 8)
        for sym, size in source.bss.items():
            if sym in image:
                continue
            image.add_data_symbol(sym, cursor)
            cursor += size + (-size % 8)
        if cursor > data_segment.end:
            raise LinkError(f"data segment overflow loading {source.name}")
    return image
