"""Binary diffing: what did an instrumentation pass actually change?

The rewriting experiments need to *show their work*: which instructions
were substituted, which functions were added, and whether the byte
budget was respected.  ``diff_binaries`` produces a structured report
the examples and docs render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.encoding import function_length
from .elf import Binary


@dataclass
class InstructionChange:
    """One differing instruction position inside a shared function."""

    index: int
    before: Optional[str]
    after: Optional[str]


@dataclass
class FunctionDiff:
    """Differences for one function present in both binaries."""

    name: str
    changes: List[InstructionChange] = field(default_factory=list)
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.changes)

    @property
    def layout_preserved(self) -> bool:
        return self.bytes_before == self.bytes_after


@dataclass
class BinaryDiff:
    """Complete structural diff of two binaries."""

    functions: List[FunctionDiff]
    added_functions: List[str]
    removed_functions: List[str]
    size_before: int
    size_after: int

    @property
    def size_delta(self) -> int:
        return self.size_after - self.size_before

    def changed_functions(self) -> List[FunctionDiff]:
        return [d for d in self.functions if d.changed]

    def render(self, *, context: int = 0) -> str:
        lines = [
            f"size: {self.size_before} -> {self.size_after} "
            f"({self.size_delta:+d} bytes)"
        ]
        for name in self.added_functions:
            lines.append(f"+ function {name}")
        for name in self.removed_functions:
            lines.append(f"- function {name}")
        for diff in self.changed_functions():
            preserved = "layout preserved" if diff.layout_preserved else (
                f"{diff.bytes_after - diff.bytes_before:+d} bytes"
            )
            lines.append(f"@ {diff.name} ({len(diff.changes)} sites, {preserved})")
            for change in diff.changes:
                if change.before is not None:
                    lines.append(f"    [{change.index:3d}] - {change.before}")
                if change.after is not None:
                    lines.append(f"    [{change.index:3d}] + {change.after}")
        return "\n".join(lines)


def diff_binaries(before: Binary, after: Binary) -> BinaryDiff:
    """Structural diff: per-function instruction changes + adds/removes."""
    function_diffs: List[FunctionDiff] = []
    for name, original in before.functions.items():
        if name not in after.functions:
            continue
        rewritten = after.functions[name]
        diff = FunctionDiff(
            name,
            bytes_before=function_length(original.body),
            bytes_after=function_length(rewritten.body),
        )
        length = max(len(original.body), len(rewritten.body))
        for index in range(length):
            old = original.body[index] if index < len(original.body) else None
            new = rewritten.body[index] if index < len(rewritten.body) else None
            if old != new:
                diff.changes.append(
                    InstructionChange(
                        index,
                        str(old) if old is not None else None,
                        str(new) if new is not None else None,
                    )
                )
        function_diffs.append(diff)
    added = sorted(set(after.functions) - set(before.functions))
    removed = sorted(set(before.functions) - set(after.functions))
    return BinaryDiff(
        functions=function_diffs,
        added_functions=added,
        removed_functions=removed,
        size_before=before.total_size(),
        size_after=after.total_size(),
    )
