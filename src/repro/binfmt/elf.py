"""ELF-like binary model.

A :class:`Binary` is the unit the compiler produces, the static rewriter
instruments, and the loader maps: a named bag of code functions plus
read-only data, zero-initialised globals, constructor lists, and linkage
metadata.  Byte sizes come from the ISA encoding model, which is what the
code-expansion experiment (Table II) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import LinkError
from ..isa.encoding import function_length
from ..isa.instructions import Function

#: Linkage styles; static binaries embed their libc functions as simulated
#: code (and are what the Dyninst path instruments), dynamic binaries call
#: out to native libc.
DYNAMIC = "dynamic"
STATIC = "static"


@dataclass
class Binary:
    """A linkable/loadable program image."""

    name: str
    functions: Dict[str, Function] = field(default_factory=dict)
    entry: str = "main"
    link_type: str = DYNAMIC
    #: Symbols invoked before ``entry`` (``__attribute__((constructor))``).
    constructors: List[str] = field(default_factory=list)
    #: Initialised read-only data: symbol → bytes.
    rodata: Dict[str, bytes] = field(default_factory=dict)
    #: Zero-initialised globals: symbol → size in bytes.
    bss: Dict[str, int] = field(default_factory=dict)
    #: Names of shared libraries requested at load time (informational).
    needed: List[str] = field(default_factory=list)
    #: Which protection scheme built/instrumented this binary ("" = native).
    protection: str = ""

    def add_function(self, function: Function) -> Function:
        """Add (or replace) a function."""
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        """Fetch a function, raising :class:`LinkError` when absent."""
        try:
            return self.functions[name]
        except KeyError:
            raise LinkError(f"{self.name}: no function {name!r}") from None

    def has_function(self, name: str) -> bool:
        """True if the binary defines ``name``."""
        return name in self.functions

    # -- size accounting (Table II) -----------------------------------------

    def text_size(self) -> int:
        """Encoded size of all code, in bytes."""
        return sum(function_length(f.body) for f in self.functions.values())

    def rodata_size(self) -> int:
        """Size of initialised data."""
        return sum(len(blob) for blob in self.rodata.values())

    def total_size(self) -> int:
        """Approximate file size: text + rodata (bss occupies no file bytes)."""
        return self.text_size() + self.rodata_size()

    def clone(self) -> "Binary":
        """Deep-enough copy for instrumentation: new function objects
        (bodies are lists of immutable instructions, so copied shallowly),
        shared data blobs."""
        copy = Binary(
            self.name,
            {name: fn.copy() for name, fn in self.functions.items()},
            self.entry,
            self.link_type,
            list(self.constructors),
            dict(self.rodata),
            dict(self.bss),
            list(self.needed),
            self.protection,
        )
        return copy

    def disassemble(self) -> str:
        """Full program listing."""
        return "\n\n".join(f.disassemble() for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"Binary({self.name!r}, {len(self.functions)} functions, "
            f"{self.text_size()} text bytes, {self.link_type})"
        )


def merge_binaries(primary: Binary, *others: Binary, name: Optional[str] = None) -> Binary:
    """Static linking: fold ``others`` into a copy of ``primary``.

    Later binaries do *not* override earlier definitions — duplicate
    strong symbols are a link error, as with real ``ld``.
    """
    result = primary.clone()
    if name:
        result.name = name
    result.link_type = STATIC
    for other in others:
        for fname, function in other.functions.items():
            if fname in result.functions:
                raise LinkError(f"duplicate symbol {fname!r} linking {other.name}")
            result.functions[fname] = function.copy()
        for sym, blob in other.rodata.items():
            if sym in result.rodata:
                raise LinkError(f"duplicate data symbol {sym!r}")
            result.rodata[sym] = blob
        for sym, size in other.bss.items():
            if sym in result.bss:
                raise LinkError(f"duplicate bss symbol {sym!r}")
            result.bss[sym] = size
        result.constructors.extend(other.constructors)
    return result
