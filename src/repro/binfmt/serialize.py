"""On-disk binary format: serialize/deserialize :class:`Binary`.

A minimal ELF-flavoured container so binaries can be written to disk,
shipped, and re-loaded — which is what a real rewriter consumes and what
the code-size experiments measure "on disk".  Layout:

* magic + version header,
* a JSON section table (function bodies as printed+parsed assembly is
  lossy for labels, so instructions are stored structurally),
* rodata/bss/constructor/metadata sections.

The format is deliberately human-greppable (JSON) rather than packed
binary: the simulator's "bytes" live in the encoding model, and the
serialization's job is fidelity, not compression.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import LinkError
from ..isa.instructions import Function, Imm, Instruction, Label, Mem, Operand, Reg, Sym
from .elf import Binary

MAGIC = "REPRO-ELF"
VERSION = 1


def _operand_to_json(operand: Operand) -> Dict[str, Any]:
    if isinstance(operand, Reg):
        return {"k": "reg", "name": operand.name}
    if isinstance(operand, Imm):
        return {"k": "imm", "value": operand.value}
    if isinstance(operand, Mem):
        return {
            "k": "mem",
            "base": operand.base,
            "disp": operand.disp,
            "seg": operand.seg,
            "index": operand.index,
            "scale": operand.scale,
        }
    if isinstance(operand, Label):
        return {"k": "label", "name": operand.name}
    if isinstance(operand, Sym):
        return {"k": "sym", "name": operand.name}
    raise TypeError(f"unserializable operand {operand!r}")


def _operand_from_json(data: Dict[str, Any]) -> Operand:
    kind = data["k"]
    if kind == "reg":
        return Reg(data["name"])
    if kind == "imm":
        return Imm(data["value"])
    if kind == "mem":
        return Mem(data["base"], data["disp"], data["seg"],
                   data["index"], data["scale"])
    if kind == "label":
        return Label(data["name"])
    if kind == "sym":
        return Sym(data["name"])
    raise LinkError(f"bad operand kind {kind!r}")


def _function_to_json(function: Function) -> Dict[str, Any]:
    return {
        "name": function.name,
        "body": [
            {
                "op": instruction.op,
                "operands": [_operand_to_json(o) for o in instruction.operands],
                "note": instruction.note,
            }
            for instruction in function.body
        ],
        "labels": function.labels,
        "protected": function.protected,
        "has_buffer": function.has_buffer,
        "frame_size": function.frame_size,
        "meta": function.meta,
    }


def _function_from_json(data: Dict[str, Any]) -> Function:
    function = Function(data["name"])
    for entry in data["body"]:
        function.body.append(
            Instruction(
                entry["op"],
                tuple(_operand_from_json(o) for o in entry["operands"]),
                entry.get("note", ""),
            )
        )
    function.labels = {k: int(v) for k, v in data["labels"].items()}
    function.protected = data.get("protected", "")
    function.has_buffer = data.get("has_buffer", False)
    function.frame_size = data.get("frame_size", 0)
    meta = data.get("meta", {})
    # JSON has no tuples; restore the buffers' (offset, size) pairs.
    if "buffers" in meta:
        meta["buffers"] = {k: tuple(v) for k, v in meta["buffers"].items()}
    function.meta = meta
    return function


def dumps(binary: Binary) -> bytes:
    """Serialize ``binary`` to bytes."""
    document = {
        "magic": MAGIC,
        "version": VERSION,
        "name": binary.name,
        "entry": binary.entry,
        "link_type": binary.link_type,
        "protection": binary.protection,
        "constructors": binary.constructors,
        "needed": binary.needed,
        "functions": [_function_to_json(f) for f in binary.functions.values()],
        "rodata": {k: v.hex() for k, v in binary.rodata.items()},
        "bss": binary.bss,
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def loads(data: bytes) -> Binary:
    """Deserialize a binary previously produced by :func:`dumps`."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise LinkError(f"not a {MAGIC} image: {error}") from None
    if document.get("magic") != MAGIC:
        raise LinkError(f"bad magic {document.get('magic')!r}")
    if document.get("version") != VERSION:
        raise LinkError(f"unsupported version {document.get('version')!r}")
    binary = Binary(
        document["name"],
        entry=document["entry"],
        link_type=document["link_type"],
    )
    binary.protection = document.get("protection", "")
    binary.constructors = list(document.get("constructors", []))
    binary.needed = list(document.get("needed", []))
    for function_data in document["functions"]:
        binary.add_function(_function_from_json(function_data))
    binary.rodata = {k: bytes.fromhex(v) for k, v in document["rodata"].items()}
    binary.bss = {k: int(v) for k, v in document.get("bss", {}).items()}
    return binary


def save(binary: Binary, path: str) -> None:
    """Write ``binary`` to ``path``."""
    with open(path, "wb") as handle:
        handle.write(dumps(binary))


def load_file(path: str) -> Binary:
    """Read a binary image from ``path``."""
    with open(path, "rb") as handle:
        return loads(handle.read())
