"""ELF-like binaries, static linking, serialization, and the loader."""

from .elf import DYNAMIC, STATIC, Binary, merge_binaries
from .loader import LoadedImage, load
from .serialize import dumps, load_file, loads, save

__all__ = [
    "Binary",
    "DYNAMIC",
    "LoadedImage",
    "STATIC",
    "dumps",
    "load",
    "load_file",
    "loads",
    "merge_binaries",
    "save",
]
