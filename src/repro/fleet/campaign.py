"""Fleet campaigns: a million-request attack mix, audited from counters.

A campaign is, per scheme, a contiguous range of **slices**: slice ``i``
boots its own :class:`~repro.fleet.server.FleetServer` under kernel seed
``base_seed + i`` and serves ``slice_requests`` requests of the traffic
mix scheduled by :mod:`repro.fleet.traffic`.  The slice is the shard
unit, exactly like a fuzz or chaos seed, so the PR 5 executor scales a
campaign across cores while the merged report stays bit-identical to a
serial run — and any slice replays in isolation from its seed.

Every number in the report is *proved* rather than asserted: a slice
records the telemetry counter deltas accumulated while it ran and
cross-checks its own bookkeeping against them (requests vs
``fleet_requests_total``, detections vs
``canary_smashes_detected_total``, worker forks vs
``kernel_forks_total``, crashes vs ``fleet_request_crashes_total``).  A
mismatch is an **audit divergence** — a correctness finding that the
CLI surfaces as exit 1 and ``bench_fleet`` as exit 2, never a warning.

Report metrics, all derived from deterministic simulated state:

* **detection rate** — canary-detected smashes per attack request;
* **time-to-detection** — 1-based global request index of the first
  detected smash (the paper's "how long does the fleet stay blind");
* **requests/sec** — served requests over simulated seconds
  (``cycles / CLOCK_HZ``), the throughput the telemetry plane observes;
* **tail latency** — p50/p95/p99 over the per-request cycle histogram
  (fixed buckets shared with the ``fleet_request_cycles`` instrument).
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..attacks.byte_by_byte import byte_by_byte_attack
from ..attacks.leak import CanarySniffer
from ..attacks.payloads import PayloadBuilder, frame_map
from ..errors import CampaignError
from ..faults.plane import FaultPlane
from ..faults.schedule import FaultSchedule, generate_fleet_fault_schedule
from ..harness.metrics import CLOCK_HZ
from ..trace import (
    CampaignTrace,
    SliceTrace,
    SliceTracer,
    TraceConfig,
    build_lost_bundle,
)
from .server import (
    FLEET_BUFFER_SIZE,
    FLEET_VICTIM,
    LATENCY_BUCKETS_CYCLES,
    FleetServer,
)
from .supervisor import FleetSupervisor, SupervisorConfig
from .traffic import SESSION_KINDS, TrafficConfig, session_plan

#: Schemes the CLI and benches exercise by default: the brute-forceable
#: baseline, the paper's P-SSP family, and the leak-resilient OWF
#: variant — the Table-style comparison set for a service fleet.
DEFAULT_FLEET_SCHEMES: Tuple[str, ...] = (
    "ssp", "pssp", "pssp-nt", "pssp-owf",
)

#: Default campaign seed (shared with the attack trials).
DEFAULT_BASE_SEED = 20180625

#: Counter names a slice audit cross-checks its bookkeeping against.
AUDITED_COUNTERS: Tuple[str, ...] = (
    "fleet_requests_total",
    "fleet_request_crashes_total",
    "fleet_workers_forked_total",
    "kernel_forks_total",
    "canary_smashes_detected_total",
    "fleet_deadline_reaps_total",
    "fleet_crash_loop_trips_total",
    "fleet_parent_restarts_total",
)

#: Campaign-level counter audited by ``run_fleet`` itself (shard retries
#: are a parent-side decision, so it cannot be proven per slice).
RETRY_COUNTER = "fleet_slices_retried_total"


class LatencyLedger:
    """Bucketed per-request latency counts (merge-friendly integers)."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[List[int]] = None) -> None:
        size = len(LATENCY_BUCKETS_CYCLES) + 1
        if counts is None:
            counts = [0] * size
        if len(counts) != size:
            raise ValueError(
                f"latency ledger needs {size} buckets, got {len(counts)}"
            )
        # Aliases (does not copy) a caller-owned list, so a slice's
        # ledger writes straight into ``FleetSlice.latency``.
        self.counts = counts

    def observe(self, cycles: float) -> None:
        for index, bound in enumerate(LATENCY_BUCKETS_CYCLES):
            if cycles <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "LatencyLedger") -> None:
        for index, count in enumerate(other.counts):
            self.counts[index] += count

    @property
    def total(self) -> int:
        return sum(self.counts)

    def percentile(self, quantile: float) -> Optional[float]:
        """Upper bucket bound covering ``quantile`` of requests.

        ``None`` when the ledger is empty or the quantile lands in the
        unbounded overflow bucket.
        """
        total = self.total
        if total == 0:
            return None
        need = quantile * total
        cumulative = 0
        for index, bound in enumerate(LATENCY_BUCKETS_CYCLES):
            cumulative += self.counts[index]
            if cumulative >= need:
                return bound
        return None


@dataclass
class FleetSlice:
    """One server's share of the campaign: the replayable unit."""

    seed: int
    request_budget: int
    requests: int = 0
    benign_requests: int = 0
    attack_requests: int = 0
    sessions: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in SESSION_KINDS}
    )
    detections: int = 0
    crashes: int = 0
    breaches: int = 0
    #: Breaches split by attack kind — the paper's story is that
    #: ``brute`` breaches vanish under re-randomization while ``leak``
    #: breaches survive every scheme but the OWF/GB variants.
    breaches_by_kind: Dict[str, int] = field(
        default_factory=lambda: {"brute": 0, "leak": 0}
    )
    #: 1-based request index (within the slice) of the first detected
    #: smash; ``None`` when the slice saw no detection.
    first_detection_request: Optional[int] = None
    cycles: float = 0.0
    latency: List[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS_CYCLES) + 1)
    )
    #: Counter-vs-bookkeeping mismatches found by the slice audit.
    audit_divergences: List[str] = field(default_factory=list)
    #: Supervision outcomes (see :mod:`repro.fleet.supervisor`): workers
    #: reaped at the cycle deadline, requests quarantined fail-closed,
    #: breaker trips, parent restarts from the boot image.
    deadline_reaps: int = 0
    quarantined_requests: int = 0
    breaker_trips: int = 0
    parent_restarts: int = 0
    #: Re-randomization-window attribution: requests the fault plane
    #: touched vs requests it left alone, with their cycle totals.
    faulted_requests: int = 0
    clean_requests: int = 0
    faulted_cycles: float = 0.0
    clean_cycles: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "request_budget": self.request_budget,
            "requests": self.requests,
            "benign_requests": self.benign_requests,
            "attack_requests": self.attack_requests,
            "sessions": dict(self.sessions),
            "detections": self.detections,
            "crashes": self.crashes,
            "breaches": self.breaches,
            "breaches_by_kind": dict(self.breaches_by_kind),
            "first_detection_request": self.first_detection_request,
            "cycles": self.cycles.hex(),
            "latency": list(self.latency),
            "audit_divergences": list(self.audit_divergences),
            "deadline_reaps": self.deadline_reaps,
            "quarantined_requests": self.quarantined_requests,
            "breaker_trips": self.breaker_trips,
            "parent_restarts": self.parent_restarts,
            "faulted_requests": self.faulted_requests,
            "clean_requests": self.clean_requests,
            "faulted_cycles": self.faulted_cycles.hex(),
            "clean_cycles": self.clean_cycles.hex(),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FleetSlice":
        raw_first = data.get("first_detection_request")
        return cls(
            seed=int(data["seed"]),
            request_budget=int(data["request_budget"]),
            requests=int(data["requests"]),
            benign_requests=int(data["benign_requests"]),
            attack_requests=int(data["attack_requests"]),
            sessions={k: int(v) for k, v in data["sessions"].items()},
            detections=int(data["detections"]),
            crashes=int(data["crashes"]),
            breaches=int(data["breaches"]),
            breaches_by_kind={
                k: int(v) for k, v in data["breaches_by_kind"].items()
            },
            first_detection_request=(
                None if raw_first is None else int(raw_first)
            ),
            cycles=float.fromhex(data["cycles"]),
            latency=[int(c) for c in data["latency"]],
            audit_divergences=list(data["audit_divergences"]),
            deadline_reaps=int(data.get("deadline_reaps", 0)),
            quarantined_requests=int(data.get("quarantined_requests", 0)),
            breaker_trips=int(data.get("breaker_trips", 0)),
            parent_restarts=int(data.get("parent_restarts", 0)),
            faulted_requests=int(data.get("faulted_requests", 0)),
            clean_requests=int(data.get("clean_requests", 0)),
            faulted_cycles=float.fromhex(data.get("faulted_cycles", "0x0.0p+0")),
            clean_cycles=float.fromhex(data.get("clean_cycles", "0x0.0p+0")),
        )


class _SliceDriver:
    """Runs one slice's session loop against a booted server."""

    def __init__(
        self, server: FleetServer, config: TrafficConfig, budget: int
    ) -> None:
        self.server = server
        self.config = config
        self.budget = budget
        self.slice = FleetSlice(seed=0, request_budget=budget)
        self.latency = LatencyLedger(self.slice.latency)
        self._in_attack_session = False
        server.on_response = self._on_response

    # Every request — including the ones byte_by_byte_attack drives on
    # its own — lands here exactly once, so the slice's numbers come
    # from the same stream the telemetry counters count.
    def _on_response(self, response) -> None:
        record = self.slice
        record.requests += 1
        if self._in_attack_session:
            record.attack_requests += 1
        else:
            record.benign_requests += 1
        if response.crashed:
            record.crashes += 1
        if response.smashed:
            record.detections += 1
            if record.first_detection_request is None:
                record.first_detection_request = record.requests
        outcome = getattr(response, "outcome", "served")
        if outcome == "deadline":
            record.deadline_reaps += 1
        elif outcome == "quarantined":
            record.quarantined_requests += 1
        record.cycles += response.cycles
        self.latency.observe(response.cycles)

    def _set_attack(self, is_attack: bool) -> None:
        self._in_attack_session = is_attack
        self.server.in_attack_session = is_attack

    @property
    def remaining(self) -> int:
        return self.budget - self.slice.requests

    def run(self) -> FleetSlice:
        frame = frame_map(self.server.binary, self.server.handler)
        builder = PayloadBuilder(frame)
        tracer = self.server.tracer
        index = 0
        while self.remaining > 0:
            plan = session_plan(
                self.config, self.slice.seed, index,
                buffer_size=FLEET_BUFFER_SIZE,
            )
            index += 1
            if plan.kind == "leak" and self.remaining < 2:
                # A leak session is atomic (disclosure + exploit); there
                # is no budget left for both, so the campaign ends here.
                break
            self.slice.sessions[plan.kind] += 1
            if tracer is not None:
                tracer.begin_session(plan)
            self._set_attack(plan.is_attack)
            if plan.kind == "benign":
                for _ in range(min(plan.requests, self.remaining)):
                    self.server.handle_request(
                        builder.benign(plan.payload_length)
                    )
            elif plan.kind == "smash":
                self.server.handle_request(builder.smash())
            elif plan.kind == "brute":
                report = byte_by_byte_attack(
                    self.server, frame,
                    max_trials=min(plan.requests, self.remaining),
                )
                if report.success:
                    self.slice.breaches += 1
                    self.slice.breaches_by_kind["brute"] += 1
                    if tracer is not None:
                        tracer.on_breach("brute")
            elif plan.kind == "leak":
                if self._leak_session():
                    self.slice.breaches += 1
                    self.slice.breaches_by_kind["leak"] += 1
                    if tracer is not None:
                        tracer.on_breach("leak")
        self._set_attack(False)
        self.server.on_response = None
        return self.slice

    def _leak_session(self) -> bool:
        """One leak-and-replay connection: disclose, then exploit.

        Under supervision the connection is subject to the same admission
        and checkout rules as the accept loop; a refused or degraded
        checkout quarantines *both* legs of the session fail-closed.
        """
        server = self.server
        supervisor = server.supervisor
        if supervisor is not None:
            worker = (
                supervisor.checkout_worker()
                if supervisor.admit_session(2) else None
            )
            if worker is None:
                server._record(supervisor.quarantine_response())
                server._record(supervisor.quarantine_response())
                return False
            supervisor.arm_deadline(worker)
        else:
            worker = server.fork_worker()
        leak_frame = frame_map(server.binary, "leaky")
        with warnings.catch_warnings():
            # The sniffer's trace hook forces the slow interpreter loop;
            # that is the point — the disclosure costs one worker, and
            # the RuntimeWarning would drown campaign output otherwise.
            warnings.simplefilter("ignore", RuntimeWarning)
            sniffer = CanarySniffer(worker, "leaky", leak_frame)
        disclosed = worker.call("leaky", (0,))
        leaked = sniffer.disarm()
        server.account_worker_request(
            disclosed.crashed, disclosed.smashed, disclosed.cycles
        )

        target_frame = frame_map(server.binary, server.handler)
        builder = PayloadBuilder(target_frame)
        replay = {
            slot: leaked[leak_slot]
            for slot, leak_slot in zip(
                target_frame.canary_slots, leak_frame.canary_slots
            )
            if leak_slot in leaked
        }
        payload = builder.with_canaries(
            replay,
            new_return=worker.image.address_of("win"),
            new_rbp=worker.registers.read("rsp") - 0x200,
        )
        worker.stdin.clear()
        worker.feed_stdin(payload)
        exploit = worker.call(server.handler, (len(payload),))
        output = bytes(worker.stdout)
        server.account_worker_request(
            exploit.crashed, exploit.smashed, exploit.cycles, output
        )
        server.release_worker(worker)
        return b"PWNED" in output


def run_fleet_slice(
    scheme: str,
    seed: int,
    *,
    config: Optional[TrafficConfig] = None,
    request_budget: int = 1000,
    audit: bool = True,
    supervision: Optional[SupervisorConfig] = None,
    chaos_seed: Optional[int] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    tracer: Optional[SliceTracer] = None,
) -> FleetSlice:
    """Boot one server and serve one slice of the traffic mix.

    Every slice runs under a :class:`FleetSupervisor` (deadlines and the
    crash-loop breaker are always armed; self-healing state is captured
    only when a fault plane is).  ``chaos_seed`` derives the slice's
    :class:`FaultSchedule` via :func:`generate_fleet_fault_schedule`;
    ``fault_schedule`` injects an explicit one (tests, ``repro serve``).

    With ``audit`` on (and telemetry enabled in this process), the
    slice's bookkeeping is cross-checked against the counter deltas it
    produced; mismatches land in ``audit_divergences``.

    ``tracer`` attaches a :class:`~repro.trace.SliceTracer` for the run;
    its replay identity is stamped here so every bundle it captures can
    re-run this exact slice.  (An explicit ``fault_schedule`` without a
    ``chaos_seed`` is outside the identity — bundles replay faithfully
    only for seed-derived schedules.)
    """
    config = config if config is not None else TrafficConfig()
    auditing = audit and telemetry.enabled()
    before = telemetry.snapshot() if auditing else {}
    if fault_schedule is None and chaos_seed is not None:
        fault_schedule = generate_fleet_fault_schedule(chaos_seed, seed, scheme)
    plane = FaultPlane(fault_schedule) if fault_schedule is not None else None
    server = FleetServer.boot(scheme, seed, fault_plane=plane)
    supervisor = FleetSupervisor(supervision, seed=seed).attach(server)
    if tracer is not None:
        tracer.replay_identity = {
            "traffic": config.to_json(),
            "request_budget": request_budget,
            "supervision": supervisor.config.to_json(),
            "chaos_seed": chaos_seed,
        }
        tracer.attach(server)
    driver = _SliceDriver(server, config, request_budget)
    driver.slice.seed = seed
    record = driver.run()
    supervisor.finalize(record)
    if auditing:
        delta = telemetry.delta(before)
        _audit_slice(record, server, delta)
    if tracer is not None:
        # After the audit, so an audit divergence freezes its bundle.
        tracer.finalize(record)
    return record


def _counter(delta: Dict[str, object], name: str) -> int:
    return int(delta.get(name, 0) or 0)


def _audit_slice(
    record: FleetSlice, server: FleetServer, delta: Dict[str, object]
) -> None:
    """Prove the slice's numbers from the telemetry counter deltas."""
    observed = {name: _counter(delta, name) for name in AUDITED_COUNTERS}
    expected = {
        "fleet_requests_total": record.requests,
        "fleet_request_crashes_total": record.crashes,
        "fleet_workers_forked_total": server.workers_forked,
        # Every fork this slice's kernel performed was a fleet worker.
        "kernel_forks_total": server.workers_forked,
        "canary_smashes_detected_total": record.detections,
        # Supervision outcomes: ticked by the supervisor, bookkept
        # independently by the driver/slice, proven equal here.
        "fleet_deadline_reaps_total": record.deadline_reaps,
        "fleet_crash_loop_trips_total": record.breaker_trips,
        "fleet_parent_restarts_total": record.parent_restarts,
    }
    for name, want in expected.items():
        got = observed[name]
        if got != want:
            record.audit_divergences.append(
                f"{name}: report says {want}, counters say {got}"
            )
    total = LatencyLedger(record.latency).total
    if total != record.requests:
        record.audit_divergences.append(
            f"latency ledger holds {total} samples for "
            f"{record.requests} requests"
        )


@dataclass
class FleetSchemeReport:
    """One scheme's campaign: ordered slices plus lost-shard accounting."""

    scheme: str
    base_seed: int
    request_budget: int
    slice_requests: int
    slices: List[FleetSlice] = field(default_factory=list)
    #: Slice seeds whose shard was lost to a crashed worker (after the
    #: retry budget) — surfaced, never silently dropped.
    lost: List[int] = field(default_factory=list)
    #: Slices that were re-queued after a shard worker died (counted per
    #: requeue per slice; audited against ``fleet_slices_retried_total``).
    slices_retried: int = 0
    #: Shards that needed more than one attempt: "first..last" seed
    #: range -> total attempts.  Empty on the happy path, so a resumed
    #: report stays byte-identical to an uninterrupted one.
    shard_attempts: Dict[str, int] = field(default_factory=dict)
    #: Campaign-level counter-vs-bookkeeping mismatches (retry audit).
    campaign_divergences: List[str] = field(default_factory=list)

    # -- aggregation (slices folded in seed order, always) ---------------

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.slices)

    @property
    def benign_requests(self) -> int:
        return sum(s.benign_requests for s in self.slices)

    @property
    def attack_requests(self) -> int:
        return sum(s.attack_requests for s in self.slices)

    @property
    def detections(self) -> int:
        return sum(s.detections for s in self.slices)

    @property
    def crashes(self) -> int:
        return sum(s.crashes for s in self.slices)

    @property
    def breaches(self) -> int:
        return sum(s.breaches for s in self.slices)

    @property
    def breaches_by_kind(self) -> Dict[str, int]:
        totals = {"brute": 0, "leak": 0}
        for s in self.slices:
            for kind, count in s.breaches_by_kind.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def cycles(self) -> float:
        total = 0.0
        for s in self.slices:
            total += s.cycles
        return total

    @property
    def sessions(self) -> Dict[str, int]:
        totals = {kind: 0 for kind in SESSION_KINDS}
        for s in self.slices:
            for kind, count in s.sessions.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def detection_rate(self) -> float:
        """Canary-detected smashes per attack request."""
        if self.attack_requests == 0:
            return 0.0
        return self.detections / self.attack_requests

    @property
    def time_to_detection(self) -> Optional[int]:
        """Global 1-based request index of the first detected smash."""
        offset = 0
        for s in self.slices:
            if s.first_detection_request is not None:
                return offset + s.first_detection_request
            offset += s.requests
        return None

    @property
    def simulated_rps(self) -> float:
        """Requests per simulated second (``cycles / CLOCK_HZ``)."""
        if self.cycles <= 0:
            return 0.0
        return self.requests / (self.cycles / CLOCK_HZ)

    def latency_ledger(self) -> LatencyLedger:
        merged = LatencyLedger()
        for s in self.slices:
            merged.merge(LatencyLedger(s.latency))
        return merged

    @property
    def audit_divergences(self) -> List[str]:
        found = []
        for s in self.slices:
            found.extend(
                f"seed {s.seed}: {line}" for line in s.audit_divergences
            )
        found.extend(
            f"campaign: {line}" for line in self.campaign_divergences
        )
        return found

    # -- supervision aggregation -----------------------------------------

    @property
    def deadline_reaps(self) -> int:
        return sum(s.deadline_reaps for s in self.slices)

    @property
    def quarantined_requests(self) -> int:
        return sum(s.quarantined_requests for s in self.slices)

    @property
    def breaker_trips(self) -> int:
        return sum(s.breaker_trips for s in self.slices)

    @property
    def parent_restarts(self) -> int:
        return sum(s.parent_restarts for s in self.slices)

    def supervision_summary(self) -> Dict[str, Any]:
        """The supervision section: availability outcomes plus the
        re-randomization-window stretch (mean cycles of plane-touched
        requests over mean cycles of untouched ones — how much a faulted
        request widens the exposure window the paper's re-randomization
        is meant to shrink)."""
        faulted = sum(s.faulted_requests for s in self.slices)
        clean = sum(s.clean_requests for s in self.slices)
        faulted_cycles = 0.0
        clean_cycles = 0.0
        for s in self.slices:
            faulted_cycles += s.faulted_cycles
            clean_cycles += s.clean_cycles
        faulted_mean = faulted_cycles / faulted if faulted else None
        clean_mean = clean_cycles / clean if clean else None
        stretch = (
            faulted_mean / clean_mean
            if faulted_mean is not None and clean_mean else None
        )
        return {
            "deadline_reaps": self.deadline_reaps,
            "quarantined_requests": self.quarantined_requests,
            "breaker_trips": self.breaker_trips,
            "parent_restarts": self.parent_restarts,
            "slices_retried": self.slices_retried,
            "faulted_requests": faulted,
            "clean_requests": clean,
            "faulted_mean_cycles": faulted_mean,
            "clean_mean_cycles": clean_mean,
            "rerand_window_stretch": stretch,
        }

    def summary(self) -> Dict[str, Any]:
        """The per-scheme row every consumer (CLI, bench, CI) reads."""
        ledger = self.latency_ledger()
        return {
            "scheme": self.scheme,
            "requests": self.requests,
            "benign_requests": self.benign_requests,
            "attack_requests": self.attack_requests,
            "sessions": self.sessions,
            "detections": self.detections,
            "crashes": self.crashes,
            "breaches": self.breaches,
            "breaches_by_kind": self.breaches_by_kind,
            "detection_rate": self.detection_rate,
            "time_to_detection": self.time_to_detection,
            "simulated_rps": self.simulated_rps,
            "latency_cycles": {
                "p50": ledger.percentile(0.50),
                "p95": ledger.percentile(0.95),
                "p99": ledger.percentile(0.99),
            },
            "lost_slices": len(self.lost),
            "audit_divergences": len(self.audit_divergences),
        }

    def to_json(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "base_seed": self.base_seed,
            "request_budget": self.request_budget,
            "slice_requests": self.slice_requests,
            "slices": [s.to_json() for s in self.slices],
            "lost": list(self.lost),
            "slices_retried": self.slices_retried,
            "shard_attempts": dict(self.shard_attempts),
            "campaign_divergences": list(self.campaign_divergences),
            "summary": self.summary(),
            "supervision": self.supervision_summary(),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FleetSchemeReport":
        return cls(
            scheme=data["scheme"],
            base_seed=int(data["base_seed"]),
            request_budget=int(data["request_budget"]),
            slice_requests=int(data["slice_requests"]),
            slices=[FleetSlice.from_json(s) for s in data["slices"]],
            lost=[int(seed) for seed in data.get("lost", [])],
            slices_retried=int(data.get("slices_retried", 0)),
            shard_attempts={
                k: int(v) for k, v in data.get("shard_attempts", {}).items()
            },
            campaign_divergences=list(data.get("campaign_divergences", [])),
        )


@dataclass
class FleetReport:
    """The whole campaign: one scheme report per requested scheme."""

    base_seed: int
    request_budget: int
    slice_requests: int
    config: TrafficConfig
    schemes: Tuple[str, ...]
    reports: List[FleetSchemeReport] = field(default_factory=list)
    #: The chaos stream seed; ``None`` = no fault injection.
    chaos_seed: Optional[int] = None
    #: Supervision knobs the campaign ran under.
    supervision: SupervisorConfig = field(default_factory=SupervisorConfig)
    #: The campaign's trace (``run_fleet(..., trace=...)``).  Carried on
    #: the object only — deliberately excluded from ``to_json`` so the
    #: committed report artifact stays byte-identical whether or not the
    #: run was traced; the trace has its own artifacts (``--trace-out``,
    #: ``--bundle-dir``).
    trace: Optional[CampaignTrace] = None

    @property
    def total_requests(self) -> int:
        return sum(report.requests for report in self.reports)

    @property
    def lost_slices(self) -> int:
        return sum(len(report.lost) for report in self.reports)

    @property
    def audit_divergences(self) -> List[str]:
        found = []
        for report in self.reports:
            found.extend(
                f"{report.scheme}: {line}"
                for line in report.audit_divergences
            )
        return found

    def scheme_report(self, scheme: str) -> FleetSchemeReport:
        for report in self.reports:
            if report.scheme == scheme:
                return report
        raise KeyError(scheme)

    def to_json(self) -> Dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "request_budget": self.request_budget,
            "slice_requests": self.slice_requests,
            "config": self.config.to_json(),
            "schemes": list(self.schemes),
            "chaos_seed": self.chaos_seed,
            "supervision": self.supervision.to_json(),
            "reports": [report.to_json() for report in self.reports],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FleetReport":
        raw_chaos = data.get("chaos_seed")
        raw_supervision = data.get("supervision")
        return cls(
            base_seed=int(data["base_seed"]),
            request_budget=int(data["request_budget"]),
            slice_requests=int(data["slice_requests"]),
            config=TrafficConfig.from_json(data["config"]),
            schemes=tuple(data["schemes"]),
            chaos_seed=None if raw_chaos is None else int(raw_chaos),
            supervision=(
                SupervisorConfig() if raw_supervision is None
                else SupervisorConfig.from_json(raw_supervision)
            ),
            reports=[
                FleetSchemeReport.from_json(r) for r in data["reports"]
            ],
        )

    def render(self) -> str:
        lines = [
            f"fleet: {self.request_budget} request(s)/scheme, "
            f"slice {self.slice_requests}, base seed {self.base_seed}, "
            f"attack rate "
            f"{self.config.attack_numerator}/{self.config.attack_denominator}"
        ]
        if self.chaos_seed is not None:
            lines.append(
                f"  chaos: seed {self.chaos_seed} "
                "(seeded fault injection under traffic, supervised)"
            )
        header = (
            f"  {'scheme':16s} {'requests':>9s} {'detect':>8s} "
            f"{'rate':>7s} {'ttd':>7s} {'brute!':>7s} {'leak!':>6s} "
            f"{'rps':>12s} {'p99(cyc)':>9s}"
        )
        lines.append(header)
        for report in self.reports:
            row = report.summary()
            ttd = row["time_to_detection"]
            p99 = row["latency_cycles"]["p99"]
            by_kind = row["breaches_by_kind"]
            lines.append(
                f"  {row['scheme']:16s} {row['requests']:>9,d} "
                f"{row['detections']:>8,d} {row['detection_rate']:>7.3f} "
                f"{ttd if ttd is not None else '-':>7} "
                f"{by_kind['brute']:>7,d} {by_kind['leak']:>6,d} "
                f"{row['simulated_rps']:>12,.0f} "
                f"{p99 if p99 is not None else '-':>9}"
            )
            if self.chaos_seed is not None:
                sup = report.supervision_summary()
                stretch = sup["rerand_window_stretch"]
                lines.append(
                    f"    supervision: {sup['deadline_reaps']} deadline "
                    f"reap(s), {sup['quarantined_requests']} quarantined, "
                    f"{sup['breaker_trips']} breaker trip(s), "
                    f"{sup['parent_restarts']} parent restart(s), "
                    f"window stretch "
                    f"{f'{stretch:.3f}' if stretch is not None else '-'}"
                )
            for span, attempts in sorted(report.shard_attempts.items()):
                lines.append(
                    f"    shard seeds {span}: {attempts} attempt(s)"
                )
            for seed in report.lost:
                lines.append(f"    slice seed {seed}: LOST (worker crashed)")
        divergences = self.audit_divergences
        for line in divergences:
            lines.append(f"  AUDIT DIVERGENCE: {line}")
        lines.append(
            "FLEET REPORT AUDITED OK" if not divergences
            else f"{len(divergences)} audit divergence(s)"
        )
        return "\n".join(lines)


def _slice_budget(
    request_budget: int, slice_requests: int, index: int
) -> int:
    """Request budget of slice ``index`` (last slice takes the tail)."""
    start = index * slice_requests
    return max(0, min(slice_requests, request_budget - start))


def _fleet_shard_worker(config: Dict[str, Any], seeds, attempt: int):
    """Process-pool entry point: serve one shard's slices."""
    before = telemetry.snapshot()
    traffic = TrafficConfig.from_json(config["traffic"])
    supervision = SupervisorConfig.from_json(config["supervision"])
    trace_config = config.get("trace")
    slices = []
    traces = []
    for seed in seeds:
        index = seed - config["base_seed"]
        tracer = None
        if trace_config is not None:
            tracer = SliceTracer(
                config["scheme"], seed,
                config=TraceConfig.from_json(trace_config),
                chaos_seed=config["chaos_seed"],
            )
        record = run_fleet_slice(
            config["scheme"], seed,
            config=traffic,
            request_budget=_slice_budget(
                config["request_budget"], config["slice_requests"], index
            ),
            audit=config["audit"],
            supervision=supervision,
            chaos_seed=config["chaos_seed"],
            tracer=tracer,
        )
        slices.append(record.to_json())
        if tracer is not None:
            traces.append(tracer.trace.to_json())
    return {
        "slices": slices, "traces": traces,
        "telemetry": telemetry.delta(before),
    }


# -- checkpoint/resume -------------------------------------------------------

#: Format marker for fleet checkpoints; bumped on incompatible change.
CHECKPOINT_VERSION = 1


def _checkpoint_header(report: FleetReport) -> Dict[str, Any]:
    return {
        "version": CHECKPOINT_VERSION,
        "kind": "fleet-checkpoint",
        "base_seed": report.base_seed,
        "request_budget": report.request_budget,
        "slice_requests": report.slice_requests,
        "config": report.config.to_json(),
        "schemes": list(report.schemes),
        "chaos_seed": report.chaos_seed,
        "supervision": report.supervision.to_json(),
    }


def _write_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Atomic write: a kill can only ever leave the previous checkpoint."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    os.replace(tmp, path)


def _load_checkpoint(
    path: str, header: Dict[str, Any]
) -> Dict[str, Dict[int, FleetSlice]]:
    """Load completed slices from ``path``; {} when no checkpoint exists.

    The checkpoint is only valid for the exact campaign it was written
    by — seeds, budgets, traffic config, scheme set, chaos seed, and
    supervision knobs must all match, or resuming would stitch slices
    from two different campaigns into one report.
    """
    if not os.path.exists(path):
        return {}
    try:
        data = json.loads(open(path).read())
    except (OSError, ValueError) as error:
        raise CampaignError(f"unreadable checkpoint {path}: {error}")
    for key, want in header.items():
        got = data.get(key)
        if got != want:
            raise CampaignError(
                f"checkpoint {path} does not match this campaign: "
                f"{key} is {got!r}, expected {want!r}"
            )
    completed: Dict[str, Dict[int, FleetSlice]] = {}
    for scheme, slices in data.get("slices", {}).items():
        completed[scheme] = {
            int(seed): FleetSlice.from_json(record)
            for seed, record in slices.items()
        }
    return completed


def run_fleet(
    request_budget: int,
    *,
    schemes: Tuple[str, ...] = DEFAULT_FLEET_SCHEMES,
    base_seed: int = DEFAULT_BASE_SEED,
    slice_requests: int = 1000,
    config: Optional[TrafficConfig] = None,
    jobs: int = 1,
    audit: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    chaos: bool = False,
    chaos_seed: Optional[int] = None,
    supervision: Optional[SupervisorConfig] = None,
    shard_retries: int = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    trace: Optional[TraceConfig] = None,
) -> FleetReport:
    """Serve ``request_budget`` requests per scheme, sharded by slice.

    ``jobs > 1`` shards the slice range through the crash-tolerant
    executor; slices merge in seed order so the report is bit-identical
    to a serial run.  A shard whose worker dies is re-queued up to
    ``shard_retries`` times before its slices are listed in the scheme
    report's ``lost`` — the CLI maps a non-empty ``lost`` to the typed
    infrastructure exit code.

    ``chaos`` arms per-slice fault schedules derived from ``chaos_seed``
    (default: ``base_seed``); the stream is keyed per slice, so chaos
    campaigns replay and shard bit-identically too.

    ``checkpoint_path`` persists every completed slice (atomically, after
    each slice or shard); ``resume=True`` skips the slices a previous —
    possibly killed — run already completed, under any ``jobs`` value,
    and the finished report is byte-identical to an uninterrupted run.

    ``trace`` arms a :class:`~repro.trace.SliceTracer` per slice and
    collects the campaign's :class:`~repro.trace.CampaignTrace` on the
    returned report's ``trace`` attribute, slices in scheme × seed order
    under any ``jobs`` value, so the exported trace is byte-identical to
    a serial run.  Tracing refuses checkpoints: a resumed campaign skips
    completed slices, so their spans could never be re-recorded.
    """
    if request_budget < 1:
        raise ValueError("request_budget must be >= 1")
    if slice_requests < 1:
        raise ValueError("slice_requests must be >= 1")
    if shard_retries < 0:
        raise ValueError("shard_retries must be >= 0")
    if resume and not checkpoint_path:
        raise ValueError("resume requires a checkpoint path")
    if trace is not None and (checkpoint_path or resume):
        raise ValueError(
            "tracing cannot be combined with checkpoint/resume: slices "
            "skipped on resume would leave holes in the trace"
        )
    if trace is not None and not telemetry.enabled():
        # Span canary attribution reads counters; shard workers always
        # boot with telemetry on, so the serial path must match or the
        # jobs-N byte-identity guarantee breaks.
        telemetry.enable()
    config = config if config is not None else TrafficConfig()
    supervision = supervision if supervision is not None else SupervisorConfig()
    effective_chaos_seed = (
        (chaos_seed if chaos_seed is not None else base_seed) if chaos else None
    )
    # The audit decision is made once, here, and shipped to workers:
    # worker processes always boot with telemetry enabled, so auditing
    # must not silently differ between serial and sharded runs.
    audit = audit and telemetry.enabled()
    report = FleetReport(
        base_seed=base_seed,
        request_budget=request_budget,
        slice_requests=slice_requests,
        config=config,
        schemes=tuple(schemes),
        chaos_seed=effective_chaos_seed,
        supervision=supervision,
    )
    if trace is not None:
        report.trace = CampaignTrace(config=trace)
    num_slices = -(-request_budget // slice_requests)

    header = _checkpoint_header(report)
    completed: Dict[str, Dict[int, FleetSlice]] = {}
    if resume and checkpoint_path:
        completed = _load_checkpoint(checkpoint_path, header)
    checkpoint_state: Dict[str, Dict[str, Any]] = {
        scheme: {
            str(seed): record.to_json() for seed, record in by_seed.items()
        }
        for scheme, by_seed in completed.items()
    }

    def save_checkpoint() -> None:
        if checkpoint_path:
            _write_checkpoint(
                checkpoint_path, {**header, "slices": checkpoint_state}
            )

    save_checkpoint()

    for scheme in report.schemes:
        scheme_report = FleetSchemeReport(
            scheme=scheme, base_seed=base_seed,
            request_budget=request_budget, slice_requests=slice_requests,
        )
        collected: Dict[int, FleetSlice] = dict(completed.get(scheme, {}))
        scheme_state = checkpoint_state.setdefault(scheme, {})
        pending = [
            index for index in range(num_slices)
            if base_seed + index not in collected
        ]
        before_scheme = telemetry.snapshot() if audit else {}
        if jobs <= 1:
            for done, index in enumerate(pending):
                seed = base_seed + index
                tracer = None
                if trace is not None:
                    tracer = SliceTracer(
                        scheme, seed, config=trace,
                        chaos_seed=effective_chaos_seed,
                    )
                record = run_fleet_slice(
                    scheme, seed,
                    config=config,
                    request_budget=_slice_budget(
                        request_budget, slice_requests, index
                    ),
                    audit=audit,
                    supervision=supervision,
                    chaos_seed=effective_chaos_seed,
                    tracer=tracer,
                )
                if tracer is not None:
                    report.trace.slices.append(tracer.trace)
                collected[seed] = record
                scheme_state[str(seed)] = record.to_json()
                save_checkpoint()
                if progress and (done + 1) % 8 == 0:
                    progress(
                        f"{scheme}: {done + 1}/{len(pending)} slice(s)"
                    )
        else:
            from ..parallel import plan_shards, run_shards

            worker_config = {
                "scheme": scheme,
                "traffic": config.to_json(),
                "base_seed": base_seed,
                "request_budget": request_budget,
                "slice_requests": slice_requests,
                "audit": audit,
                "supervision": supervision.to_json(),
                "chaos_seed": effective_chaos_seed,
                "trace": None if trace is None else trace.to_json(),
            }
            shards = plan_shards(
                base_seed, num_slices, skip=set(collected)
            )

            def on_result(outcome) -> None:
                if outcome.ok:
                    for record in outcome.value["slices"]:
                        scheme_state[str(record["seed"])] = record
                    save_checkpoint()
                if progress:
                    progress(
                        f"{scheme}: shard {outcome.shard.index} "
                        f"({len(outcome.shard)} slice(s)) "
                        f"{'done' if outcome.ok else outcome.status}"
                    )

            outcomes, _ = run_shards(
                _fleet_shard_worker, worker_config, shards, jobs=jobs,
                retries=shard_retries,
                on_result=on_result,
            )
            deltas = []
            trace_by_seed: Dict[int, SliceTrace] = {}
            for outcome in outcomes:
                if outcome.ok:
                    for raw in outcome.value["slices"]:
                        record = FleetSlice.from_json(raw)
                        collected[record.seed] = record
                    for raw_trace in outcome.value.get("traces", []):
                        slice_trace = SliceTrace.from_json(raw_trace)
                        trace_by_seed[slice_trace.seed] = slice_trace
                    deltas.append(outcome.value["telemetry"])
                else:
                    scheme_report.lost.extend(outcome.shard.seeds)
                    if report.trace is not None:
                        lost_seeds = [int(s) for s in outcome.shard.seeds]
                        bundle = build_lost_bundle(scheme, lost_seeds, {
                            "traffic": config.to_json(),
                            "request_budget": slice_requests,
                            "supervision": supervision.to_json(),
                            "chaos_seed": effective_chaos_seed,
                        })
                        bundle["budgets"] = {
                            str(s): _slice_budget(
                                request_budget, slice_requests, s - base_seed
                            )
                            for s in lost_seeds
                        }
                        report.trace.lost_bundles.append(bundle)
                requeues = max(0, outcome.attempts - 1)
                if requeues:
                    seeds = outcome.shard.seeds
                    span = f"{seeds[0]}..{seeds[-1]}"
                    scheme_report.shard_attempts[span] = outcome.attempts
                    scheme_report.slices_retried += requeues * len(seeds)
            if scheme_report.slices_retried:
                telemetry.count(
                    RETRY_COUNTER,
                    delta=scheme_report.slices_retried,
                    help="fleet slices re-queued after a lost shard worker",
                )
            if report.trace is not None:
                # Seed order, regardless of shard completion order — the
                # jobs-N trace must be byte-identical to a serial run.
                report.trace.slices.extend(
                    trace_by_seed[seed] for seed in sorted(trace_by_seed)
                )
            merged = telemetry.Snapshot()
            for delta in deltas:
                merged = merged.merge(telemetry.Snapshot(delta))
            telemetry.absorb(merged)
            if audit:
                got = _counter(
                    telemetry.delta(before_scheme), RETRY_COUNTER
                )
                if got != scheme_report.slices_retried:
                    scheme_report.campaign_divergences.append(
                        f"{RETRY_COUNTER}: report says "
                        f"{scheme_report.slices_retried}, counters say {got}"
                    )
        scheme_report.slices = [
            collected[seed] for seed in sorted(collected)
        ]
        report.reports.append(scheme_report)
        if progress:
            row = scheme_report.summary()
            progress(
                f"{scheme}: {row['requests']} request(s), "
                f"{row['detections']} detection(s), "
                f"{row['breaches']} breach(es)"
            )
    return report
