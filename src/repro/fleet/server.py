"""The simulated accept loop: worker-per-connection over a warm parent.

:class:`FleetServer` is the production shape the paper's motivating
attack targets (§II-B, §VI-C): a long-lived parent process accepts
connections and forks one worker per connection; crashed workers are
replaced, the parent — and whatever canary material its address space
carries — lives on.  The parent itself boots through
:func:`repro.core.deploy.deploy`, which serves warm spawn images from
:mod:`repro.parallel.snapcache`, so fleet campaigns pay the loader once
per process, not once per slice.

Every request path funnels through one bookkeeping point so the
campaign classifier's numbers and the telemetry counters cannot drift:
:meth:`handle_request` for connection-per-request traffic (benign,
smash, and byte-by-byte probes), :meth:`account_worker_request` for
calls an attack drives directly on a checked-out worker (the leak
session's disclosure/exploit pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from .. import telemetry
from ..binfmt.elf import Binary
from ..core.deploy import build, deploy
from ..kernel.kernel import Kernel
from ..kernel.process import Process

#: Fixed request-latency buckets in simulated cycles.  Shared by the
#: telemetry histogram and the campaign report, so the report's tail
#: latency is reproducible from the counter plane alone.
LATENCY_BUCKETS_CYCLES: Tuple[float, ...] = (
    110.0, 120.0, 130.0, 145.0, 160.0, 180.0,
    200.0, 250.0, 350.0, 500.0, 1000.0,
)

#: The fleet victim: the §VI-C forking-server handler (a read into a
#: fixed frame) plus the leak-and-replay trio (a disclosure-prone
#: function, an overflow target, and a hijack gadget), so one binary
#: serves every session kind in the traffic mix.
FLEET_VICTIM = """
int win() {
    puts("PWNED");
    return 1;
}

int leaky(int n) {
    char buf[32];
    buf[0] = 1;
    return buf[0];
}

int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}

int main() { return 0; }
"""

#: Buffer size of ``handler`` in :data:`FLEET_VICTIM` (benign payloads
#: must stay strictly inside it).
FLEET_BUFFER_SIZE = 64


@dataclass
class FleetResponse:
    """What the traffic driver observes from one served request.

    ``outcome`` is the supervision verdict: ``"served"`` (the worker
    ran), ``"deadline"`` (reaped at the cycle budget, presented as a
    SIGXCPU crash), or ``"quarantined"`` (refused fail-closed by the
    crash-loop breaker or a degraded checkout; presented as a crash so
    an availability measure can never read as an attack breach).
    """

    crashed: bool
    smashed: bool
    output: bytes
    cycles: float
    signal: str = ""
    outcome: str = "served"


class FleetServer:
    """A forking accept-loop server over one deployed scheme.

    Parameters mirror a deployment: the kernel owns process identity and
    entropy, ``binary`` is the protected build, ``scheme`` selects the
    runtime support installed on the parent (and therefore inherited by
    every forked worker).
    """

    def __init__(
        self,
        kernel: Kernel,
        binary: Binary,
        scheme: str,
        *,
        handler: str = "handler",
    ) -> None:
        self.kernel = kernel
        self.binary = binary
        self.scheme = scheme
        self.handler = handler
        self.parent, self.runtime = deploy(kernel, binary, scheme)
        self.requests_served = 0
        self.workers_forked = 0
        self.crashes = 0
        self.smashes_observed = 0
        self.cycles = 0.0
        #: Campaign bookkeeping hook: fires once per request, after the
        #: request's counters have been recorded.
        self.on_response: Optional[Callable[[FleetResponse], None]] = None
        #: Installed by :meth:`FleetSupervisor.attach`; None = raw server.
        self.supervisor = None
        #: Installed by :meth:`SliceTracer.attach`; None = untraced.  The
        #: whole cost of tracing-off is the ``is not None`` compare per
        #: request in :meth:`_record` — never per-instruction work.
        self.tracer = None
        #: Set by the traffic driver around attack sessions so the
        #: supervisor's breaker ignores expected canary aborts.
        self.in_attack_session = False

    @classmethod
    def boot(
        cls,
        scheme: str,
        seed: int,
        *,
        source: str = FLEET_VICTIM,
        fault_plane=None,
    ) -> "FleetServer":
        """Build + deploy a server in one step (CLI and test shorthand)."""
        kernel = Kernel(seed, fault_plane=fault_plane)
        binary = build(source, scheme, name="fleet")
        return cls(kernel, binary, scheme)

    # -- the accept loop -------------------------------------------------

    def handle_request(self, payload: bytes) -> FleetResponse:
        """Accept one connection: fork a worker, run the handler, reap."""
        supervisor = self.supervisor
        if supervisor is None:
            child = self.fork_worker()
        else:
            child = supervisor.checkout_worker() if supervisor.admit() else None
            if child is None:
                response = supervisor.quarantine_response()
                self._record(response)
                return response
            supervisor.arm_deadline(child)
        child.stdin.clear()
        child.feed_stdin(payload)
        result = child.call(self.handler, (len(payload),))
        response = FleetResponse(
            crashed=result.crashed,
            smashed=result.smashed,
            output=bytes(child.stdout),
            cycles=result.cycles,
            signal=result.signal,
        )
        self.kernel.reap(child)
        if supervisor is not None:
            supervisor.observe(response, in_attack_session=self.in_attack_session)
        self._record(response)
        return response

    def fork_worker(self) -> Process:
        """Fork a worker off the parent (the per-connection clone).

        Callers that drive the worker directly (leak sessions) must
        report each call through :meth:`account_worker_request` and
        :meth:`release_worker` the process when the session ends.
        """
        child = self.kernel.fork(self.parent)
        self.note_worker_forked(child)
        return child

    def note_worker_forked(self, child: Optional[Process] = None) -> None:
        """Bookkeeping for one successful worker fork (supervised
        checkouts fork through the policy retry wrapper and tick this
        themselves, so the count only ever covers committed forks)."""
        self.workers_forked += 1
        telemetry.count(
            "fleet_workers_forked_total",
            help="fleet workers forked (one per connection)",
        )
        if self.tracer is not None:
            self.tracer.on_fork(child, self.kernel.fork_count)

    def account_worker_request(
        self, crashed: bool, smashed: bool, cycles: float, output: bytes = b""
    ) -> FleetResponse:
        """Record one request served on a checked-out worker."""
        response = FleetResponse(crashed, smashed, output, cycles)
        self._record(response)
        return response

    def release_worker(self, worker: Process) -> None:
        """Reap a checked-out worker (connection closed)."""
        self.kernel.reap(worker)

    # -- bookkeeping -----------------------------------------------------

    def _record(self, response: FleetResponse) -> None:
        self.requests_served += 1
        self.cycles += response.cycles
        telemetry.count(
            "fleet_requests_total", help="fleet requests served (all sessions)"
        )
        telemetry.observe(
            "fleet_request_cycles", response.cycles, LATENCY_BUCKETS_CYCLES,
            help="simulated cycles per served fleet request",
        )
        if response.crashed:
            self.crashes += 1
            telemetry.count(
                "fleet_request_crashes_total",
                help="fleet workers that crashed serving a request",
            )
        if response.smashed:
            self.smashes_observed += 1
        if self.on_response is not None:
            self.on_response(response)
        if self.tracer is not None:
            self.tracer.on_request(response)
