"""Deterministic traffic IR: the request mix a fleet campaign serves.

The generator answers one question per session index: *what does
connection ``i`` of this campaign do?*  The answer is a pure function of
``(config, seed, index)`` — no generator state, no draw-order coupling
between sessions — so a campaign sharded across a process pool schedules
exactly the sessions a serial run would, and any single session can be
replayed in isolation.

Two deterministic mechanisms:

* **Attack placement** is Bresenham spacing over the configured exact
  rate ``attack_numerator / attack_denominator``: session ``i`` is an
  attack iff ``(i+1)*n // d > i*n // d``.  Among the first ``k``
  sessions there are *exactly* ``k*n // d`` attacks — an integer bound,
  not an expectation, which is what the property tests assert.
* **Session shape** (attack kind, benign length) is drawn from an
  :class:`~repro.crypto.random.EntropySource` seeded by a mix of the
  campaign seed and the session index, so shapes vary across a campaign
  but session ``i`` never depends on sessions ``0..i-1`` having been
  generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..crypto.random import EntropySource

#: Session kinds a plan may carry, in canonical order.
SESSION_KINDS: Tuple[str, ...] = ("benign", "smash", "brute", "leak")

#: Attack kinds (everything but ``benign``).
ATTACK_KINDS: Tuple[str, ...] = ("smash", "brute", "leak")

#: 64-bit mixing constants for the per-session entropy seed.
_SEED_MIX = 0x9E3779B97F4A7C15
_INDEX_MIX = 0x100000001B3
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of a campaign's request mix (all integers — exact rates).

    ``attack_numerator / attack_denominator`` is the fraction of
    *sessions* that are attacks.  Kind weights split the attack sessions
    between blind smashes (one request), byte-by-byte brute-force runs
    (up to ``brute_trial_cap`` requests), and leak-and-replay sessions
    (two requests: the disclosure and the exploit).
    """

    attack_numerator: int = 1
    attack_denominator: int = 8
    benign_min_requests: int = 1
    benign_max_requests: int = 4
    brute_trial_cap: int = 1600
    smash_weight: int = 1
    brute_weight: int = 2
    leak_weight: int = 1

    def __post_init__(self) -> None:
        if self.attack_denominator < 1:
            raise ValueError("attack_denominator must be >= 1")
        if not 0 <= self.attack_numerator <= self.attack_denominator:
            raise ValueError(
                "attack rate must satisfy 0 <= numerator <= denominator, got "
                f"{self.attack_numerator}/{self.attack_denominator}"
            )
        if self.benign_min_requests < 1:
            raise ValueError("benign sessions need at least one request")
        if self.benign_max_requests < self.benign_min_requests:
            raise ValueError("benign_max_requests < benign_min_requests")
        if self.brute_trial_cap < 1:
            raise ValueError("brute_trial_cap must be >= 1")
        for name in ("smash_weight", "brute_weight", "leak_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.smash_weight + self.brute_weight + self.leak_weight < 1:
            raise ValueError("at least one attack kind needs positive weight")

    def to_json(self) -> Dict[str, Any]:
        return {
            "attack_numerator": self.attack_numerator,
            "attack_denominator": self.attack_denominator,
            "benign_min_requests": self.benign_min_requests,
            "benign_max_requests": self.benign_max_requests,
            "brute_trial_cap": self.brute_trial_cap,
            "smash_weight": self.smash_weight,
            "brute_weight": self.brute_weight,
            "leak_weight": self.leak_weight,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TrafficConfig":
        return cls(**{key: int(value) for key, value in data.items()})

    @classmethod
    def parse_rate(cls, text: str, **overrides: int) -> "TrafficConfig":
        """Build a config from a ``N/D`` attack-rate string (CLI form)."""
        try:
            numerator, denominator = (int(part) for part in text.split("/", 1))
        except ValueError:
            raise ValueError(
                f"attack rate must look like 'N/D', got {text!r}"
            ) from None
        return cls(
            attack_numerator=numerator, attack_denominator=denominator,
            **overrides,
        )


@dataclass(frozen=True)
class SessionPlan:
    """What one scheduled connection does."""

    index: int
    kind: str
    #: Planned request budget: benign length, 1 for smash, the trial cap
    #: for brute (actual consumption depends on the defence), 2 for leak.
    requests: int
    #: Benign payload length in bytes (0 for attack sessions).
    payload_length: int = 0

    @property
    def is_attack(self) -> bool:
        return self.kind != "benign"

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "requests": self.requests,
            "payload_length": self.payload_length,
        }


def is_attack_session(config: TrafficConfig, index: int) -> bool:
    """Bresenham placement: exact-rate attack/benign interleaving."""
    n, d = config.attack_numerator, config.attack_denominator
    return (index + 1) * n // d > index * n // d


def attack_sessions_before(config: TrafficConfig, count: int) -> int:
    """Exactly how many of the first ``count`` sessions are attacks."""
    return count * config.attack_numerator // config.attack_denominator


def session_entropy(seed: int, index: int) -> EntropySource:
    """The per-session entropy stream (pure in ``(seed, index)``)."""
    mixed = (seed * _SEED_MIX + index * _INDEX_MIX + index) & _MASK64
    return EntropySource(mixed)


def session_plan(
    config: TrafficConfig, seed: int, index: int, *, buffer_size: int = 64
) -> SessionPlan:
    """Plan session ``index`` of the campaign seeded ``seed``.

    Pure: calling this twice — or from different worker processes —
    yields an identical plan, and no other session's plan is consulted.
    ``buffer_size`` bounds benign payloads (they must stay in-buffer).
    """
    entropy = session_entropy(seed, index)
    if not is_attack_session(config, index):
        spread = config.benign_max_requests - config.benign_min_requests + 1
        requests = config.benign_min_requests + entropy.randrange(spread)
        payload = 1 + entropy.randrange(max(1, buffer_size - 1))
        return SessionPlan(index, "benign", requests, payload)
    weights = (
        ("smash", config.smash_weight),
        ("brute", config.brute_weight),
        ("leak", config.leak_weight),
    )
    total = sum(weight for _, weight in weights)
    pick = entropy.randrange(total)
    for kind, weight in weights:
        if pick < weight:
            break
        pick -= weight
    requests = {"smash": 1, "brute": config.brute_trial_cap, "leak": 2}[kind]
    return SessionPlan(index, kind, requests)


def schedule(
    config: TrafficConfig, seed: int, sessions: int, *, buffer_size: int = 64
) -> List[SessionPlan]:
    """The first ``sessions`` plans of a campaign, in session order."""
    return [
        session_plan(config, seed, index, buffer_size=buffer_size)
        for index in range(max(0, sessions))
    ]
