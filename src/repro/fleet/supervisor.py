"""Fleet supervision: deadlines, crash-loop breakers, parent self-healing.

The fleet's availability story (paper §II-B: the parent must survive its
workers indefinitely) needs more than fork-per-connection — it needs the
machinery a production init system provides, rebuilt on *simulated*
state so supervised runs stay bit-identical to unsupervised maths:

* **Worker deadlines** — every worker gets a per-request budget in
  simulated cycles (``cpu.cycle_limit``); exceeding it is a typed
  ``deadline`` outcome delivered as SIGXCPU, never a hang.
* **Crash-loop breaker** — consecutive non-attack worker crashes (or
  degraded checkouts) trip a per-slice circuit: requests are quarantined
  fail-closed for a seeded exponential-backoff window counted in
  *requests*, then a half-open probe either closes the circuit or
  re-trips it with a doubled window.
* **Parent self-healing** — when the fault plane degrades the parent
  (entropy quarantined by the periodic health probe, a torn shadow-pair
  refresh failing closed), the supervisor restarts the parent from the
  machine image captured at boot and verifies via
  :func:`~repro.machine.debug.architectural_snapshot` that the
  re-randomization boundary replays exactly.  Restarts are bounded by
  :data:`~repro.faults.policy.PARENT_RESTART_BUDGET`.
* **Window-stretch attribution** — the plane's ledger is sampled around
  every request; requests the plane touched accumulate into a
  ``faulted`` bucket so reports can quote the re-randomization-window
  stretch (faulted mean cycles / clean mean cycles) per scheme.

Every decision derives from seeded simulated state — the breaker's
jitter comes from a slice-seeded PRNG, deadlines and backoff are counted
in simulated cycles and requests — so chaos campaigns replay and shard
bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..errors import DegradedError
from ..faults.policy import (
    ENTROPY_PROBE_INTERVAL,
    PARENT_RESTART_BUDGET,
    fork_with_retry,
    rdrand_selftest,
)
from ..machine.debug import architectural_snapshot, snapshot_divergences

#: Default per-request worker budget in simulated cycles.  Two orders of
#: magnitude above the slowest honest request (p99 < 1k cycles), so the
#: deadline only ever reaps runaways.
DEFAULT_DEADLINE_CYCLES = 250_000.0

#: Consecutive non-attack crashes that trip the breaker.
DEFAULT_CRASH_LOOP_THRESHOLD = 4

#: First backoff window (in quarantined requests) and its cap.
DEFAULT_BACKOFF_BASE = 8
DEFAULT_BACKOFF_CAP = 64

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs; JSON round-trippable so shard workers inherit
    the exact configuration of the parent campaign."""

    deadline_cycles: float = DEFAULT_DEADLINE_CYCLES
    crash_loop_threshold: int = DEFAULT_CRASH_LOOP_THRESHOLD
    backoff_base: int = DEFAULT_BACKOFF_BASE
    backoff_cap: int = DEFAULT_BACKOFF_CAP
    parent_restart_budget: int = PARENT_RESTART_BUDGET
    entropy_probe_interval: int = ENTROPY_PROBE_INTERVAL

    def to_json(self) -> Dict[str, Any]:
        return {
            "deadline_cycles": self.deadline_cycles,
            "crash_loop_threshold": self.crash_loop_threshold,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "parent_restart_budget": self.parent_restart_budget,
            "entropy_probe_interval": self.entropy_probe_interval,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SupervisorConfig":
        return cls(
            deadline_cycles=float(data["deadline_cycles"]),
            crash_loop_threshold=int(data["crash_loop_threshold"]),
            backoff_base=int(data["backoff_base"]),
            backoff_cap=int(data["backoff_cap"]),
            parent_restart_budget=int(data["parent_restart_budget"]),
            entropy_probe_interval=int(data["entropy_probe_interval"]),
        )


class CrashLoopBreaker:
    """Per-slice circuit breaker over worker crashes.

    State machine: ``closed`` → (K consecutive crashes) → ``open`` for a
    backoff window counted in quarantined requests → ``half-open`` → one
    probe request either resets to ``closed`` or re-trips with a doubled
    window.  The jitter added to each window comes from a PRNG seeded on
    the slice seed alone, so the quarantine pattern is a pure function of
    the slice — shard- and resume-invariant.
    """

    def __init__(self, config: SupervisorConfig, seed: int) -> None:
        self._config = config
        self._rng = random.Random(f"fleet-breaker-{seed}")
        self.state = BREAKER_CLOSED
        self.streak = 0
        self.trips = 0
        self.remaining = 0

    def _trip(self) -> None:
        self.trips += 1
        exponent = min(self.trips - 1, 16)
        window = min(self._config.backoff_cap, self._config.backoff_base << exponent)
        self.remaining = window + self._rng.randrange(self._config.backoff_base)
        self.state = BREAKER_OPEN
        self.streak = 0
        telemetry.count(
            "fleet_crash_loop_trips_total",
            help="crash-loop breaker trips across fleet slices",
        )

    def quarantines_next(self) -> bool:
        """Consume one admission decision; True = quarantine the request."""
        if self.state == BREAKER_OPEN:
            if self.remaining > 0:
                self.remaining -= 1
                return True
            self.state = BREAKER_HALF_OPEN
        return False

    def record_crash(self) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._trip()
            return
        self.streak += 1
        if self.streak >= self._config.crash_loop_threshold:
            self._trip()

    def record_success(self) -> None:
        self.state = BREAKER_CLOSED
        self.streak = 0


class FleetSupervisor:
    """The self-healing layer one :class:`~repro.fleet.server.FleetServer`
    runs under.  Attach with :meth:`attach`; the server then routes every
    request through :meth:`admit` / :meth:`checkout_worker` /
    :meth:`arm_deadline` / :meth:`observe`."""

    def __init__(
        self, config: Optional[SupervisorConfig] = None, *, seed: int = 0
    ) -> None:
        self.config = config or SupervisorConfig()
        self.seed = seed
        self.breaker = CrashLoopBreaker(self.config, seed)
        self.deadline_reaps = 0
        self.parent_restarts = 0
        self.restart_divergences: List[str] = []
        self.faulted_requests = 0
        self.faulted_cycles = 0.0
        self.clean_requests = 0
        self.clean_cycles = 0.0
        self._server = None
        self._plane = None
        self._boot_image: Optional[bytes] = None
        self._boot_reference: Optional[Dict[str, object]] = None
        self._boot_quarantined = False
        self._marker = 0
        self._since_probe = 0

    # -- lifecycle --------------------------------------------------------

    def attach(self, server) -> "FleetSupervisor":
        """Adopt a booted server.  Self-healing state (the boot image and
        its architectural reference) is captured only when a fault plane
        is armed: a fault-free parent can never degrade, so clean fleets
        pay nothing for the healing machinery."""
        self._server = server
        server.supervisor = self
        self._plane = getattr(server.kernel, "fault_plane", None)
        if self._plane is not None:
            self._boot_image = server.parent.snapshot()
            self._boot_reference = architectural_snapshot(server.parent)
            device = getattr(server.parent.cpu, "rdrand", None)
            self._boot_quarantined = bool(device is not None and device.quarantined)
        return self

    # -- admission --------------------------------------------------------

    def admit(self) -> bool:
        """One admission decision; False = quarantine (fail closed)."""
        return self.admit_session(1)

    def admit_session(self, legs: int = 1) -> bool:
        """One admission decision covering a ``legs``-request connection.

        A refused connection consumes one backoff slot per leg — the
        breaker's window is counted in requests, and a quarantined leak
        session still accounts for both of its requests.
        """
        admitted = not self.breaker.quarantines_next()
        if not admitted:
            for _ in range(legs - 1):
                self.breaker.quarantines_next()
        if self._plane is not None:
            self._marker = self._plane.activity()
        return admitted

    # -- worker checkout --------------------------------------------------

    def checkout_worker(self):
        """Fork one worker under the degradation budgets.

        Transient EAGAIN is absorbed by the policy retry loop; a
        :class:`DegradedError` (retry budget exhausted, torn shadow-pair
        refresh) triggers one parent heal and one more attempt.  Returns
        ``None`` when the checkout stays degraded — the caller fails
        closed with a quarantined response — and feeds the breaker, so a
        degrading parent backs off instead of burning its fork budget on
        every request.
        """
        try:
            return self._fork()
        except DegradedError:
            pass
        if self._heal("degraded fork"):
            try:
                return self._fork()
            except DegradedError:
                pass
        self.breaker.record_crash()
        return None

    def _fork(self):
        server = self._server
        child = fork_with_retry(server.parent)
        server.note_worker_forked(child)
        return child

    # -- self-healing -----------------------------------------------------

    def _heal(self, reason: str) -> bool:
        """Restart the parent from its boot image; verify exact replay."""
        if self._boot_image is None:
            return False
        if self.parent_restarts >= self.config.parent_restart_budget:
            return False
        server = self._server
        kernel = server.kernel
        kernel.reap(server.parent)
        restored = kernel.restore(self._boot_image)
        self.parent_restarts += 1
        telemetry.count(
            "fleet_parent_restarts_total",
            help="fleet parents restarted from their boot image",
        )
        divergences = snapshot_divergences(
            architectural_snapshot(restored), self._boot_reference
        )
        if divergences:
            self.restart_divergences.append(
                f"parent restart ({reason}) did not replay the "
                f"re-randomization boundary: {'; '.join(divergences[:3])}"
            )
        server.parent = restored
        return True

    # -- per-request observation ------------------------------------------

    def arm_deadline(self, child) -> None:
        limit = self.config.deadline_cycles
        if limit > 0:
            child.cpu.cycle_limit = min(child.cpu.cycle_limit, limit)

    def observe(self, response, *, in_attack_session: bool) -> None:
        """Classify one response and update breaker/health state.

        Mutates ``response.outcome`` (a SIGXCPU crash under an armed
        deadline becomes the typed ``deadline`` outcome).  Quarantined
        responses never re-feed the breaker — they are its *output* — and
        attack-session crashes never feed it either: a canary abort under
        attack is the defence working, not a crash loop.
        """
        if (
            response.outcome == "served"
            and response.crashed
            and response.signal == "SIGXCPU"
        ):
            response.outcome = "deadline"
            self.deadline_reaps += 1
            telemetry.count(
                "fleet_deadline_reaps_total",
                help="fleet workers reaped at the request cycle deadline",
            )
        if response.outcome == "quarantined":
            return
        if self._plane is not None and not in_attack_session:
            # Window-stretch attribution over *benign* requests only:
            # attack requests (brute probes crash at the first wrong
            # byte) have a wildly different cycle profile that would
            # drown the faulted-vs-clean comparison in mix noise.
            # A quarantined device is deliberately NOT counted here: a
            # stuck DRBG weakens entropy without costing cycles, so
            # folding its (unstretched) requests in would only dilute
            # the starvation signal the metric exists to expose.
            faulted = self._plane.activity() != self._marker
            if faulted:
                self.faulted_requests += 1
                self.faulted_cycles += response.cycles
            else:
                self.clean_requests += 1
                self.clean_cycles += response.cycles
        self._maybe_probe()
        if in_attack_session:
            return
        if response.crashed:
            self.breaker.record_crash()
        else:
            self.breaker.record_success()

    def _maybe_probe(self) -> None:
        """Periodic parent entropy health probe (plane-armed only).

        Re-runs the boot self-test every ``entropy_probe_interval``
        requests; a probe that quarantines the device mid-traffic means
        the DRBG stuck *after* boot, and the supervisor heals by
        restoring the pre-quarantine boot image.  A parent that was
        already quarantined at boot is left alone — its fallback posture
        *is* the correct degraded state, and a restart would replay the
        same quarantine.
        """
        if self._plane is None:
            return
        interval = self.config.entropy_probe_interval
        if interval <= 0:
            return
        self._since_probe += 1
        if self._since_probe < interval:
            return
        self._since_probe = 0
        parent = self._server.parent
        device = getattr(parent.cpu, "rdrand", None)
        if device is None:
            return
        if not device.quarantined:
            rdrand_selftest(parent)
        if device.quarantined and not self._boot_quarantined:
            self._heal("entropy quarantined")

    # -- fail-closed response ---------------------------------------------

    def quarantine_response(self):
        """The typed fail-closed response for a refused request.

        Presented as a crash (zero cycles, no output): the byte-by-byte
        attack treats any non-crash as a confirmed guess, so an
        availability measure must never read as a breach.
        """
        from .server import FleetResponse

        return FleetResponse(
            crashed=True,
            smashed=False,
            output=b"",
            cycles=0.0,
            signal="",
            outcome="quarantined",
        )

    # -- slice bookkeeping ------------------------------------------------

    def finalize(self, record) -> None:
        """Copy supervision bookkeeping into a finished slice record."""
        record.breaker_trips = self.breaker.trips
        record.parent_restarts = self.parent_restarts
        record.faulted_requests = self.faulted_requests
        record.faulted_cycles = self.faulted_cycles
        record.clean_requests = self.clean_requests
        record.clean_cycles = self.clean_cycles
        record.audit_divergences.extend(self.restart_divergences)
