"""Fleet simulation: a forking accept-loop server under attack traffic.

The paper's motivating deployment (§II-B, §VI-C) is a forking network
server whose per-connection workers inherit the parent's canary — the
setting where byte-by-byte brute force wins against vanilla SSP and
P-SSP's fork-time re-randomization defeats it.  This package serves that
workload end to end: a deterministic traffic generator
(:mod:`~repro.fleet.traffic`), the accept-loop server
(:mod:`~repro.fleet.server`), and sharded million-request campaigns with
counter-audited reports (:mod:`~repro.fleet.campaign`).
"""

from .campaign import (
    AUDITED_COUNTERS,
    DEFAULT_BASE_SEED,
    DEFAULT_FLEET_SCHEMES,
    RETRY_COUNTER,
    FleetReport,
    FleetSchemeReport,
    FleetSlice,
    LatencyLedger,
    run_fleet,
    run_fleet_slice,
)
from .server import (
    FLEET_BUFFER_SIZE,
    FLEET_VICTIM,
    LATENCY_BUCKETS_CYCLES,
    FleetResponse,
    FleetServer,
)
from .supervisor import (
    CrashLoopBreaker,
    FleetSupervisor,
    SupervisorConfig,
)
from .traffic import (
    ATTACK_KINDS,
    SESSION_KINDS,
    SessionPlan,
    TrafficConfig,
    attack_sessions_before,
    is_attack_session,
    schedule,
    session_entropy,
    session_plan,
)

__all__ = [
    "ATTACK_KINDS",
    "AUDITED_COUNTERS",
    "CrashLoopBreaker",
    "DEFAULT_BASE_SEED",
    "DEFAULT_FLEET_SCHEMES",
    "FLEET_BUFFER_SIZE",
    "FLEET_VICTIM",
    "FleetReport",
    "FleetResponse",
    "FleetSchemeReport",
    "FleetServer",
    "FleetSlice",
    "FleetSupervisor",
    "LATENCY_BUCKETS_CYCLES",
    "LatencyLedger",
    "RETRY_COUNTER",
    "SupervisorConfig",
    "SESSION_KINDS",
    "SessionPlan",
    "TrafficConfig",
    "attack_sessions_before",
    "is_attack_session",
    "run_fleet",
    "run_fleet_slice",
    "schedule",
    "session_entropy",
    "session_plan",
]
