"""Cycle-cost model.

Calibration targets come from the paper's own measurements:

* Table V — prologue+epilogue cycles: P-SSP ≈ 6, P-SSP-NT ≈ 343,
  P-SSP-LV ≈ 343 (2 vars) / 986 (4 vars), P-SSP-OWF ≈ 278.
  The paper attributes ~340 cycles to ``rdrand`` and ~272 to the AES pair,
  so we set RDRAND_COST = 337 and the AES helper call to 116 cycles, which
  lands each scheme in the right band *by executing its real instruction
  sequence*, not by table lookup.
* DynaGuard's PIN-based variant costs 156% (Table I): dynamic binary
  instrumentation is modelled as a per-instruction multiplier
  (:data:`DBI_MULTIPLIER`) applied by the machine when a process is run
  under DBI, matching how PIN taxes every instruction.

Plain ALU and move instructions cost 1 cycle; memory accesses add
:data:`MEM_ACCESS_COST` per memory operand — a deliberately simple in-order
model.  Absolute numbers are not meant to match an i7-4770K; ratios are.
"""

from __future__ import annotations

from functools import lru_cache

from .instructions import Instruction, Mem

#: Extra cycles per memory operand touched.
MEM_ACCESS_COST = 1

#: ``rdrand`` latency (paper: "costs about 340 more CPU cycles").
RDRAND_COST = 337

#: ``rdtsc`` latency (documented ~24 cycles on Haswell).
RDTSC_COST = 24

#: Cost of one AES_ENCRYPT_128 helper invocation (call + 10 rounds).
AES_HELPER_COST = 116

#: PIN-style dynamic binary instrumentation multiplier: every instruction
#: executed under DBI costs this many times its native cycles.
DBI_MULTIPLIER = 2.56

_BASE_COSTS = {
    "nop": 1,
    "hlt": 1,
    "mov": 1,
    "movb": 1,
    "movzxb": 1,
    "lea": 1,
    "xchg": 2,
    "push": 2,
    "pop": 2,
    "add": 1,
    "sub": 1,
    "xor": 1,
    "or": 1,
    "and": 1,
    "shl": 1,
    "shr": 1,
    "sar": 1,
    "neg": 1,
    "not": 1,
    "inc": 1,
    "dec": 1,
    "imul": 3,
    "idiv": 22,
    "cmp": 1,
    "test": 1,
    "jmp": 2,
    "je": 1,
    "jne": 1,
    "jl": 1,
    "jle": 1,
    "jg": 1,
    "jge": 1,
    "jb": 1,
    "jae": 1,
    "call": 4,
    "ret": 4,
    "leave": 3,
    "rdrand": RDRAND_COST,
    "rdtsc": RDTSC_COST,
    "syscall": 80,
    "movq": 1,
    "movhps": 2,
    "movdqu": 2,
    "punpckhdq": 1,
    "comiss": 2,
    "pxor": 1,
}

#: Cycle costs charged when simulated code calls a native helper.
NATIVE_HELPER_COSTS = {
    "AES_ENCRYPT_128": AES_HELPER_COST,
}


@lru_cache(maxsize=65536)
def instruction_cost(instruction: Instruction) -> int:
    """Cycles consumed by one dynamic execution of ``instruction``.

    Instructions are immutable value objects, so the cost is memoised —
    the CPU main loop calls this for every dynamic instruction.
    """
    cost = _BASE_COSTS[instruction.op]
    for operand in instruction.operands:
        if isinstance(operand, Mem):
            cost += MEM_ACCESS_COST
    return cost


def step_cost(instruction: Instruction, dbi_multiplier: float = 1.0):
    """Pre-scaled accounting for one dynamic execution of ``instruction``.

    Returns ``(cycles, ticks)`` where ``cycles`` is what ``CPU.charge``
    would add to ``CPU.cycles`` (the base cost scaled by the DBI
    multiplier) and ``ticks`` is the matching TSC advance
    (``int(cycles) or 1``).  The decode cache resolves this once per
    *static* instruction so the fast interpreter loop can batch cycle
    accounting without ever diverging from the slow path's numbers.
    """
    cost = instruction_cost(instruction)
    if dbi_multiplier == 1.0:
        # Base costs are positive integers, so int(cost) or 1 == cost.
        return cost, cost
    scaled = cost * dbi_multiplier
    return scaled, int(scaled) or 1


def sequence_cost(body) -> int:
    """Static straight-line cost of an instruction sequence.

    Useful for microbenchmarks (Table V) where the sequence executes once
    with no branching.
    """
    return sum(instruction_cost(i) for i in body)
