"""Register file definition for the simulated x86-64-flavoured ISA.

The simulator models the registers the paper's code listings actually
touch: the sixteen general-purpose 64-bit registers, the ``xmm`` vector
registers used by the P-SSP-OWF prologue (Code 8/9), the ``fs`` segment
base that anchors Thread Local Storage, the instruction pointer, and the
flags needed by the canary-check compare/branch sequences.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: General-purpose 64-bit registers.
GPRS: Tuple[str, ...] = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: 128-bit vector registers (only the ones the paper's listings use, plus
#: a few spares so compiled code has scratch space).
XMMS: Tuple[str, ...] = tuple(f"xmm{i}" for i in range(16))

#: Registers that a callee must preserve (System V AMD64 ABI).  The paper
#: relies on r12/r13 being callee-saved to park the AES key there.
CALLEE_SAVED: Tuple[str, ...] = ("rbx", "rbp", "r12", "r13", "r14", "r15")

#: Registers a caller must assume are clobbered by a call.
CALLER_SAVED: Tuple[str, ...] = (
    "rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11",
)

#: Integer-argument registers in ABI order.
ARG_REGS: Tuple[str, ...] = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

WORD_MASK = (1 << 64) - 1
XMM_MASK = (1 << 128) - 1


def is_gpr(name: str) -> bool:
    """True if ``name`` is a general-purpose register."""
    return name in _GPR_SET


def is_xmm(name: str) -> bool:
    """True if ``name`` is a vector register."""
    return name in _XMM_SET


_GPR_SET = frozenset(GPRS)
_XMM_SET = frozenset(XMMS)


class RegisterFile:
    """Mutable register state for one hardware thread.

    Values are stored as unsigned integers (64-bit for GPRs, 128-bit for
    xmm).  ``fs_base`` holds the TLS segment base used to resolve
    ``fs:[disp]`` operands.  Flags follow x86 naming: ``zf`` (zero),
    ``sf`` (sign), ``cf`` (carry).
    """

    __slots__ = ("gpr", "xmm", "fs_base", "rip", "zf", "sf", "cf")

    def __init__(self) -> None:
        self.gpr: Dict[str, int] = {name: 0 for name in GPRS}
        self.xmm: Dict[str, int] = {name: 0 for name in XMMS}
        self.fs_base = 0
        #: (function name, instruction index) program counter.
        self.rip: Tuple[str, int] = ("", 0)
        self.zf = False
        self.sf = False
        self.cf = False

    def read(self, name: str) -> int:
        """Read a register by name (GPR or xmm)."""
        if name in self.gpr:
            return self.gpr[name]
        return self.xmm[name]

    def write(self, name: str, value: int) -> None:
        """Write a register by name, masking to its width."""
        if name in self.gpr:
            self.gpr[name] = value & WORD_MASK
        else:
            self.xmm[name] = value & XMM_MASK

    def snapshot(self) -> "RegisterFile":
        """Deep copy, used by ``fork`` to duplicate CPU state."""
        clone = RegisterFile()
        clone.gpr = dict(self.gpr)
        clone.xmm = dict(self.xmm)
        clone.fs_base = self.fs_base
        clone.rip = self.rip
        clone.zf = self.zf
        clone.sf = self.sf
        clone.cf = self.cf
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        hot = {r: v for r, v in self.gpr.items() if v}
        return f"RegisterFile(rip={self.rip}, zf={self.zf}, {hot})"
