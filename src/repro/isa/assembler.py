"""A small two-pass assembler: text → :class:`Function` objects.

The syntax is Intel-flavoured (destination first), which keeps hand-written
libc stubs and test fixtures readable:

.. code-block:: text

    handler:
        push rbp
        mov rbp, rsp
        sub rsp, 0x20
        mov rax, fs:[0x28]
        mov [rbp-8], rax
    .loop:
        cmp rax, 0
        je .out
        call strcpy
        jmp .loop
    .out:
        leave
        ret

Rules:

* a line ending in ``:`` at indentation 0 starts a new function;
* an indented line ending in ``:`` (conventionally ``.name:``) defines a
  local label;
* ``;`` and ``#`` start comments;
* memory operands are ``[base]``, ``[base+disp]``, ``[base+index*scale]``,
  ``fs:[disp]``; immediates are decimal or ``0x`` hex, optionally negative;
* a bare identifier operand is a :class:`Label` when it is (or becomes) a
  local label of the function, otherwise a :class:`Sym`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..errors import AssemblerError
from .instructions import ALL_OPS, Function, Imm, Instruction, Label, Mem, Operand, Reg, Sym
from .registers import is_gpr, is_xmm

_MEM_RE = re.compile(
    r"^(?:(?P<seg>fs):)?\[(?P<inner>[^\]]+)\]$"
)
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")


def _parse_int(text: str) -> int:
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    value = int(text, 16) if text.lower().startswith("0x") else int(text)
    return -value if negative else value


def _parse_mem(match: "re.Match", line_no: int) -> Mem:
    seg = match.group("seg")
    inner = match.group("inner").replace(" ", "")
    base: Optional[str] = None
    index: Optional[str] = None
    scale = 1
    disp = 0
    # Split into +/- separated terms.
    terms = re.findall(r"[+-]?[^+-]+", inner)
    for term in terms:
        sign = -1 if term.startswith("-") else 1
        term = term.lstrip("+-")
        if "*" in term:
            reg, _, factor = term.partition("*")
            if not is_gpr(reg):
                raise AssemblerError(f"line {line_no}: bad index register {reg!r}")
            index = reg
            scale = _parse_int(factor)
        elif is_gpr(term):
            if base is None:
                base = term
            elif index is None:
                index = term
            else:
                raise AssemblerError(f"line {line_no}: too many registers in {inner!r}")
        elif _INT_RE.match(term):
            disp += sign * _parse_int(term)
        else:
            raise AssemblerError(f"line {line_no}: bad memory term {term!r}")
    return Mem(base=base, disp=disp, seg=seg, index=index, scale=scale)


def parse_operand(text: str, line_no: int = 0) -> Operand:
    """Parse a single operand token."""
    text = text.strip()
    if not text:
        raise AssemblerError(f"line {line_no}: empty operand")
    mem = _MEM_RE.match(text)
    if mem:
        return _parse_mem(mem, line_no)
    if is_gpr(text) or is_xmm(text):
        return Reg(text)
    if _INT_RE.match(text):
        return Imm(_parse_int(text))
    if text.startswith("."):
        return Label(text)
    if re.match(r"^[A-Za-z_][\w.$@-]*$", text):
        return Sym(text)
    raise AssemblerError(f"line {line_no}: cannot parse operand {text!r}")


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current)
    return parts


def assemble(source: str) -> Dict[str, Function]:
    """Assemble ``source`` into named functions.

    Returns a mapping preserving definition order (dicts are ordered).
    """
    functions: Dict[str, Function] = {}
    current: Optional[Function] = None
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.endswith(":"):
            name = stripped[:-1].strip()
            # ``.name:`` is always local; a bare ``name:`` is local when it
            # appears indented inside a function, and starts a new function
            # otherwise (including the very first label of the source).
            is_local = name.startswith(".") or (
                raw[:1].isspace() and current is not None
            )
            if is_local:
                if current is None:
                    raise AssemblerError(f"line {line_no}: label outside a function")
                if name in current.labels:
                    raise AssemblerError(f"line {line_no}: duplicate label {name!r}")
                current.label_here(name)
            else:
                if name in functions:
                    raise AssemblerError(f"line {line_no}: duplicate function {name!r}")
                current = Function(name)
                functions[name] = current
            continue
        if current is None:
            raise AssemblerError(f"line {line_no}: instruction outside a function")
        tokens = stripped.split(None, 1)
        mnemonic = tokens[0]
        if mnemonic not in ALL_OPS:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        operands: List[Operand] = []
        if len(tokens) > 1:
            for part in _split_operands(tokens[1]):
                operands.append(parse_operand(part, line_no))
        # Branch targets that look like symbols but refer to local labels
        # are fixed up after the function is fully parsed (second pass).
        current.body.append(Instruction(mnemonic, tuple(operands)))
    for function in functions.values():
        _fixup_branch_targets(function)
    return functions


def assemble_one(source: str) -> Function:
    """Assemble a source expected to contain exactly one function."""
    functions = assemble(source)
    if len(functions) != 1:
        raise AssemblerError(f"expected exactly one function, got {sorted(functions)}")
    return next(iter(functions.values()))


def _fixup_branch_targets(function: Function) -> None:
    """Second pass: rebind Sym operands that name local labels to Labels,
    and verify every Label target exists."""
    fixed: List[Instruction] = []
    for instruction in function.body:
        operands = list(instruction.operands)
        changed = False
        for i, operand in enumerate(operands):
            if isinstance(operand, Sym) and operand.name in function.labels:
                operands[i] = Label(operand.name)
                changed = True
            if isinstance(operands[i], Label):
                target = operands[i]
                if target.name not in function.labels:
                    raise AssemblerError(
                        f"{function.name}: undefined label {target.name!r}"
                    )
        if changed:
            fixed.append(Instruction(instruction.op, tuple(operands), instruction.note))
        else:
            fixed.append(instruction)
    function.body = fixed
