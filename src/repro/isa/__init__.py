"""The simulated x86-64-flavoured instruction set architecture.

Exports the operand/instruction model, the register file, the byte-size
and cycle-cost models, and the text assembler.
"""

from .assembler import assemble, assemble_one, parse_operand
from .costs import (
    AES_HELPER_COST,
    DBI_MULTIPLIER,
    MEM_ACCESS_COST,
    NATIVE_HELPER_COSTS,
    RDRAND_COST,
    RDTSC_COST,
    instruction_cost,
    sequence_cost,
)
from .encoding import encode, encoded_length, function_length, sequence_lengths
from .instructions import (
    ALL_OPS,
    CONDITIONAL_JUMPS,
    Function,
    Imm,
    Instruction,
    Label,
    Mem,
    Operand,
    Reg,
    Sym,
    ins,
)
from .registers import (
    ARG_REGS,
    CALLEE_SAVED,
    CALLER_SAVED,
    GPRS,
    XMMS,
    RegisterFile,
    is_gpr,
    is_xmm,
)

__all__ = [
    "AES_HELPER_COST",
    "ALL_OPS",
    "ARG_REGS",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "CONDITIONAL_JUMPS",
    "DBI_MULTIPLIER",
    "Function",
    "GPRS",
    "Imm",
    "Instruction",
    "Label",
    "MEM_ACCESS_COST",
    "Mem",
    "NATIVE_HELPER_COSTS",
    "Operand",
    "RDRAND_COST",
    "RDTSC_COST",
    "Reg",
    "RegisterFile",
    "Sym",
    "XMMS",
    "assemble",
    "assemble_one",
    "encode",
    "encoded_length",
    "function_length",
    "ins",
    "instruction_cost",
    "is_gpr",
    "is_xmm",
    "parse_operand",
    "sequence_cost",
    "sequence_lengths",
]
