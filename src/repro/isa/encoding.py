"""Byte-size model for instructions.

The paper's binary rewriter must *preserve the address layout*: it may not
make any rewritten sequence longer than the sequence it replaces (§V-C).
Code-expansion numbers (Table II) are byte counts.  Both require every
instruction to have a definite encoded length.

We do not reproduce real x86-64 encodings bit-for-bit; we use a faithful
*length* model (REX prefixes, ModRM, disp8/disp32, imm widths, segment
override prefixes) so that layout-preservation constraints and expansion
percentages behave like the real tool's.  ``encode`` emits deterministic
pseudo-bytes of exactly that length so binaries have real byte content.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from .instructions import Imm, Instruction, Label, Mem, Operand, Reg, Sym

#: Registers that need a REX.B/R prefix bit (encoded length +0, REX is
#: already counted for 64-bit ops; r8-r15 never add bytes beyond that).
_EXTENDED = frozenset(f"r{i}" for i in range(8, 16))


def _disp_bytes(disp: int) -> int:
    """disp8 vs disp32 as the real encoder would choose."""
    if disp == 0:
        return 0
    return 1 if -128 <= disp <= 127 else 4


def _imm_bytes(value: int) -> int:
    """imm8 / imm32 / imm64 widths."""
    if -128 <= value <= 127:
        return 1
    if -(1 << 31) <= value < (1 << 32):
        return 4
    return 8


def _mem_bytes(mem: Mem) -> int:
    """ModRM + SIB + displacement + segment-override prefix."""
    size = 1  # ModRM
    if mem.index is not None or mem.base in ("rsp", "r12") or mem.base is None:
        size += 1  # SIB (indexed, rsp/r12 base, or disp32-absolute forms)
    if mem.base is None:
        size += 4  # absolute disp32 (with or without segment override)
    else:
        size += _disp_bytes(mem.disp)
    if mem.seg:
        size += 1  # 0x64/0x65 segment override prefix
    return size


def encoded_length(instruction: Instruction) -> int:
    """Return the modelled byte length of ``instruction``."""
    op = instruction.op
    ops = instruction.operands

    if op in ("ret", "leave", "nop", "hlt"):
        return 1
    if op == "rdtsc":
        return 2
    if op == "rdrand":
        return 4  # 0F C7 /6 with REX
    if op == "syscall":
        return 2

    if op == "push":
        target = ops[0]
        if isinstance(target, Reg):
            return 2 if target.name in _EXTENDED else 1
        if isinstance(target, Imm):
            return 1 + _imm_bytes(target.value) if _imm_bytes(target.value) > 1 else 2
        return 1 + _mem_bytes(target)  # push m64
    if op == "pop":
        target = ops[0]
        if isinstance(target, Reg):
            return 2 if target.name in _EXTENDED else 1
        return 1 + _mem_bytes(target)

    if op in ("call", "jmp") and ops and isinstance(ops[0], (Sym, Label)):
        return 5  # rel32
    if op == "call" or op == "jmp":
        return 2  # indirect through register
    if op in ("je", "jne", "jl", "jle", "jg", "jge", "jb", "jae"):
        return 2  # rel8; the assembler never emits rel32 branches

    # Two-operand forms: REX.W + opcode + addressing.
    size = 2  # REX.W prefix + opcode byte
    if op in ("movq", "movhps", "movdqu", "punpckhdq", "comiss", "pxor"):
        size += 1  # 0F escape byte for SSE
    if op in ("shl", "shr", "sar") and len(ops) == 2 and isinstance(ops[1], Imm):
        return size + 1 + 1  # ModRM + imm8
    if op in ("inc", "dec", "neg", "not") and ops:
        target = ops[0]
        if isinstance(target, Reg):
            return size + 1
        return size + _mem_bytes(target)

    for operand in ops:
        if isinstance(operand, Reg):
            continue  # register operands ride in ModRM, already counted
        if isinstance(operand, Mem):
            size += _mem_bytes(operand) - 1  # ModRM already counted once
            size += 1
        elif isinstance(operand, Imm):
            width = _imm_bytes(operand.value)
            size += 4 if width == 1 and op == "mov" else width
            # mov reg, imm uses at least imm32; movabs handled below
            if op == "mov" and width == 8:
                size += 4  # movabs imm64
        elif isinstance(operand, Sym):
            size += 4  # RIP-relative disp32 (lea sym)
    if ops and not any(isinstance(o, (Mem, Imm, Sym)) for o in ops):
        size += 1  # reg,reg ModRM
    return size


def function_length(body) -> int:
    """Total encoded bytes of an instruction sequence."""
    return sum(encoded_length(i) for i in body)


def encode(instruction: Instruction) -> bytes:
    """Deterministic pseudo-encoding of exactly ``encoded_length`` bytes.

    The bytes are a truncated hash of the printed instruction: stable,
    content-dependent, and collision-resistant enough for byte-level
    binary comparisons in tests.
    """
    length = encoded_length(instruction)
    digest = hashlib.blake2b(str(instruction).encode(), digest_size=32).digest()
    while len(digest) < length:
        digest += hashlib.blake2b(digest, digest_size=32).digest()
    return digest[:length]


def sequence_lengths(body) -> Tuple[int, ...]:
    """Per-instruction lengths, used by layout-preservation assertions."""
    return tuple(encoded_length(i) for i in body)
