"""Instruction and operand model.

An :class:`Instruction` is a mnemonic plus operands; functions are lists of
instructions with a side table of label positions.  The operand model keeps
exactly the addressing modes the paper's listings use:

* register          — ``Reg("rax")``
* immediate         — ``Imm(0x10)``
* memory            — ``Mem(base="rbp", disp=-0x8)`` → ``-0x8(%rbp)``
* TLS memory        — ``Mem(seg="fs", disp=0x28)``   → ``%fs:0x28``
* jump label        — ``Label("out")``
* symbol            — ``Sym("__stack_chk_fail")`` for calls/lea

Instructions are value objects; rewriting tools build new ones rather than
mutating in place, except the binary rewriter which performs documented
in-place splices (that is its whole job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .registers import is_gpr, is_xmm


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __post_init__(self) -> None:
        if not (is_gpr(self.name) or is_xmm(self.name)):
            raise ValueError(f"unknown register {self.name!r}")

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand (unsigned or signed integer constant)."""

    value: int

    def __str__(self) -> str:
        return f"${self.value:#x}" if abs(self.value) > 9 else f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``disp(base)`` or segment-relative ``seg:disp``.

    ``index``/``scale`` support indexed accesses emitted by the compiler
    for array subscripts: ``disp(base, index, scale)``.
    """

    base: Optional[str] = None
    disp: int = 0
    seg: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1

    def __str__(self) -> str:
        prefix = f"%{self.seg}:" if self.seg else ""
        if self.base is None and self.index is None:
            return f"{prefix}{self.disp:#x}"
        inner = f"%{self.base}" if self.base else ""
        if self.index:
            inner += f",%{self.index},{self.scale}"
        disp = f"{self.disp:#x}" if self.disp else ""
        return f"{prefix}{disp}({inner})"


@dataclass(frozen=True)
class Label:
    """A branch target within the same function."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sym:
    """A linkable symbol: call target or address-of (via lea)."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


Operand = Union[Reg, Imm, Mem, Label, Sym]

#: Mnemonics understood by the CPU.  Grouped for readability.
DATA_OPS = ("mov", "lea", "movzxb", "movb", "xchg")
STACK_OPS = ("push", "pop")
ALU_OPS = (
    "add", "sub", "xor", "or", "and", "shl", "shr", "sar",
    "imul", "idiv", "neg", "not", "inc", "dec",
)
CMP_OPS = ("cmp", "test")
FLOW_OPS = (
    "jmp", "je", "jne", "jl", "jle", "jg", "jge", "jb", "jae",
    "call", "ret", "leave", "nop", "hlt",
)
SPECIAL_OPS = ("rdrand", "rdtsc", "syscall")
XMM_OPS = ("movq", "movhps", "movdqu", "punpckhdq", "comiss", "pxor")

ALL_OPS = frozenset(
    DATA_OPS + STACK_OPS + ALU_OPS + CMP_OPS + FLOW_OPS + SPECIAL_OPS + XMM_OPS
)

CONDITIONAL_JUMPS = frozenset(("je", "jne", "jl", "jle", "jg", "jge", "jb", "jae"))

#: Instructions that may redirect the instruction pointer or stop the CPU.
#: The decode cache uses this to mark steps after which the fast loop must
#: re-derive its position from ``registers.rip`` instead of falling through.
CONTROL_TRANSFER_OPS = CONDITIONAL_JUMPS | frozenset(("jmp", "call", "ret", "hlt"))


@dataclass(frozen=True)
class Instruction:
    """One machine instruction: mnemonic + operand tuple.

    AT&T-flavoured printing is provided for human inspection; operand
    *order* in the tuple is Intel-style (destination first) because that is
    less error-prone to construct programmatically.
    """

    op: str
    operands: Tuple[Operand, ...] = ()
    #: Free-form provenance note ("ssp-prologue", "rewritten", ...) used by
    #: the pattern matcher and by tests; never affects execution.
    note: str = ""

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown mnemonic {self.op!r}")

    def with_note(self, note: str) -> "Instruction":
        """Return a copy tagged with a provenance note."""
        return Instruction(self.op, self.operands, note)

    def __str__(self) -> str:
        if not self.operands:
            return self.op
        # Print destination last, AT&T style, matching the paper listings.
        ops = list(self.operands)
        if len(ops) >= 2:
            ops = ops[1:] + ops[:1]
        return f"{self.op} " + ",".join(str(o) for o in ops)


def ins(op: str, *operands: Operand, note: str = "") -> Instruction:
    """Shorthand constructor: ``ins("mov", Reg("rax"), Imm(1))``."""
    return Instruction(op, tuple(operands), note)


@dataclass
class Function:
    """A named code object: instruction list plus label table.

    ``labels`` maps a label name to the index of the instruction it
    precedes (possibly ``len(body)`` for an end label).  ``protected``
    records which protection pass instrumented the function, for
    diagnostics and for the binary rewriter's pattern matcher.
    """

    name: str
    body: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    protected: str = ""
    #: Source-level metadata: does the function contain a local buffer?
    has_buffer: bool = False
    #: Stack bytes reserved below the saved base pointer.
    frame_size: int = 0
    #: Compiler-provided layout facts (canary slots, buffer offsets...).
    #: The attack framework reads these the way a real adversary reads a
    #: disassembled binary — the paper assumes no binary secrecy.
    meta: Dict[str, object] = field(default_factory=dict)

    def label_here(self, name: str) -> None:
        """Define ``name`` at the current end of the body."""
        self.labels[name] = len(self.body)

    def emit(self, op: str, *operands: Operand, note: str = "") -> None:
        """Append an instruction."""
        self.body.append(ins(op, *operands, note=note))

    def fresh_label(self, hint: str = "L") -> str:
        """Return a label name unused in this function."""
        i = len(self.labels)
        while f".{hint}{i}" in self.labels:
            i += 1
        return f".{hint}{i}"

    def copy(self) -> "Function":
        """Shallow-ish copy: new body/label containers, shared instructions
        (instructions are immutable so sharing is safe)."""
        clone = Function(self.name, list(self.body), dict(self.labels))
        clone.protected = self.protected
        clone.has_buffer = self.has_buffer
        clone.frame_size = self.frame_size
        clone.meta = dict(self.meta)
        return clone

    def disassemble(self) -> str:
        """Pretty listing with labels interleaved, for docs and debugging."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = [f"{self.name}:"]
        for i, instruction in enumerate(self.body):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instruction}")
        for label in by_index.get(len(self.body), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.body)
