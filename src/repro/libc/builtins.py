"""Simulated glibc: native functions callable from simulated code.

Every routine reads its arguments from the System V ABI registers and
returns its value in ``rax``.  The string/IO routines perform *unchecked*
writes into process memory — these are the overflow vectors the paper's
attacks exploit (``strcpy``, ``gets``, ``read``, ``memcpy``, ``sprintf``,
``strcat``; cf. §IV-B's list of "functions which may write data to a local
variable").

Cycle accounting: each native charges its base ``cost`` plus a per-byte
charge for bulk operations, so server workloads spend realistic fractions
of their time in libc relative to the instrumented prologues.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .. import telemetry
from ..crypto.aes import encrypt_block
from ..errors import ProgramAbort, SegmentationFault, StackSmashDetected
from ..faults import policy as fault_policy
from ..isa.costs import AES_HELPER_COST
from ..isa.registers import ARG_REGS, CALLEE_SAVED
from ..machine.cpu import CPU, NativeFunction

#: Cycles charged per 8 copied/scanned bytes in bulk routines.
_BULK_COST_PER_WORD = 1


def _args(cpu: CPU, count: int) -> List[int]:
    return [cpu.registers.read(reg) for reg in ARG_REGS[:count]]


def _charge_bulk(cpu: CPU, nbytes: int) -> None:
    cpu.charge(max(1, nbytes // 8) * _BULK_COST_PER_WORD)


# ---------------------------------------------------------------------------
# memory / string routines
# ---------------------------------------------------------------------------


def _memcpy(cpu: CPU) -> int:
    dst, src, n = _args(cpu, 3)
    data = cpu.memory.read(src, n) if n else b""
    if n:
        cpu.memory.write(dst, data)
    _charge_bulk(cpu, n)
    return dst


def _memmove(cpu: CPU) -> int:
    # Reads fully before writing, so overlap is naturally handled.
    return _memcpy(cpu)


def _memset(cpu: CPU) -> int:
    dst, value, n = _args(cpu, 3)
    if n:
        cpu.memory.write(dst, bytes([value & 0xFF]) * n)
    _charge_bulk(cpu, n)
    return dst


def _memcmp(cpu: CPU) -> int:
    a, b, n = _args(cpu, 3)
    da = cpu.memory.read(a, n) if n else b""
    db = cpu.memory.read(b, n) if n else b""
    _charge_bulk(cpu, n)
    if da == db:
        return 0
    return 1 if da > db else (1 << 64) - 1


def _strlen(cpu: CPU) -> int:
    (s,) = _args(cpu, 1)
    length = len(cpu.memory.read_cstring(s))
    _charge_bulk(cpu, length)
    return length


def _strcpy(cpu: CPU) -> int:
    dst, src = _args(cpu, 2)
    data = cpu.memory.read_cstring(src) + b"\x00"
    cpu.memory.write(dst, data)  # unchecked: the classic overflow
    _charge_bulk(cpu, len(data))
    return dst


def _strncpy(cpu: CPU) -> int:
    dst, src, n = _args(cpu, 3)
    data = cpu.memory.read_cstring(src)[:n]
    padded = data + b"\x00" * (n - len(data))
    if padded:
        cpu.memory.write(dst, padded)
    _charge_bulk(cpu, n)
    return dst


def _strcat(cpu: CPU) -> int:
    dst, src = _args(cpu, 2)
    offset = len(cpu.memory.read_cstring(dst))
    data = cpu.memory.read_cstring(src) + b"\x00"
    cpu.memory.write(dst + offset, data)  # unchecked append
    _charge_bulk(cpu, offset + len(data))
    return dst


def _strcmp(cpu: CPU) -> int:
    a, b = _args(cpu, 2)
    da = cpu.memory.read_cstring(a)
    db = cpu.memory.read_cstring(b)
    _charge_bulk(cpu, min(len(da), len(db)) + 1)
    if da == db:
        return 0
    return 1 if da > db else (1 << 64) - 1


def _strchr(cpu: CPU) -> int:
    s, ch = _args(cpu, 2)
    data = cpu.memory.read_cstring(s)
    index = data.find(bytes([ch & 0xFF]))
    _charge_bulk(cpu, len(data))
    return s + index if index >= 0 else 0


def _atoi(cpu: CPU) -> int:
    (s,) = _args(cpu, 1)
    text = cpu.memory.read_cstring(s).decode("ascii", errors="replace").strip()
    sign = 1
    if text[:1] in ("+", "-"):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    for char in text:
        if not char.isdigit():
            break
        digits += char
    return (sign * int(digits or "0")) & ((1 << 64) - 1)


# ---------------------------------------------------------------------------
# stdio
# ---------------------------------------------------------------------------


def _read(cpu: CPU) -> int:
    fd, buf, count = _args(cpu, 3)
    process = cpu.process
    if fd != 0:
        return (1 << 64) - 1  # only stdin is readable
    take = min(count, len(process.stdin))
    if take:
        data = bytes(process.stdin[:take])
        del process.stdin[:take]
        cpu.memory.write(buf, data)  # unchecked: caller's count rules
    _charge_bulk(cpu, take)
    return take


def _gets(cpu: CPU) -> int:
    (buf,) = _args(cpu, 1)
    process = cpu.process
    newline = process.stdin.find(b"\n")
    if newline < 0:
        data = bytes(process.stdin)
        process.stdin.clear()
    else:
        data = bytes(process.stdin[:newline])
        del process.stdin[: newline + 1]
    cpu.memory.write(buf, data + b"\x00")  # no bound whatsoever
    _charge_bulk(cpu, len(data) + 1)
    return buf if data or newline >= 0 else 0


def _write(cpu: CPU) -> int:
    fd, buf, count = _args(cpu, 3)
    if fd not in (1, 2):
        return (1 << 64) - 1
    data = cpu.memory.read(buf, count) if count else b""
    cpu.process.stdout.extend(data)
    _charge_bulk(cpu, count)
    return count


def _puts(cpu: CPU) -> int:
    (s,) = _args(cpu, 1)
    data = cpu.memory.read_cstring(s)
    cpu.process.stdout.extend(data + b"\n")
    _charge_bulk(cpu, len(data) + 1)
    return len(data) + 1


def _format(cpu: CPU, fmt: bytes, values: List[int]) -> bytes:
    """Minimal printf-style formatter: %d %u %x %s %c %%."""
    out = bytearray()
    it = iter(values)
    i = 0
    while i < len(fmt):
        char = fmt[i]
        if char != ord("%") or i + 1 >= len(fmt):
            out.append(char)
            i += 1
            continue
        spec = chr(fmt[i + 1])
        i += 2
        if spec == "%":
            out.append(ord("%"))
        elif spec == "d":
            value = next(it, 0)
            signed = value - (1 << 64) if value & (1 << 63) else value
            out.extend(str(signed).encode())
        elif spec == "u":
            out.extend(str(next(it, 0)).encode())
        elif spec == "x":
            out.extend(format(next(it, 0), "x").encode())
        elif spec == "c":
            out.append(next(it, 0) & 0xFF)
        elif spec == "s":
            out.extend(cpu.memory.read_cstring(next(it, 0)))
        else:
            out.extend(b"%" + spec.encode())
    return bytes(out)


def _printf(cpu: CPU) -> int:
    values = _args(cpu, 6)
    fmt = cpu.memory.read_cstring(values[0])
    rendered = _format(cpu, fmt, values[1:])
    cpu.process.stdout.extend(rendered)
    _charge_bulk(cpu, len(rendered))
    return len(rendered)


def _sprintf(cpu: CPU) -> int:
    values = _args(cpu, 6)
    buf = values[0]
    fmt = cpu.memory.read_cstring(values[1])
    rendered = _format(cpu, fmt, values[2:]) + b"\x00"
    cpu.memory.write(buf, rendered)  # unchecked: overflow vector
    _charge_bulk(cpu, len(rendered))
    return len(rendered) - 1


def _snprintf(cpu: CPU) -> int:
    values = _args(cpu, 6)
    buf, limit = values[0], values[1]
    fmt = cpu.memory.read_cstring(values[2])
    rendered = _format(cpu, fmt, values[3:])
    clipped = rendered[: max(0, limit - 1)] + b"\x00" if limit else b""
    if clipped:
        cpu.memory.write(buf, clipped)
    _charge_bulk(cpu, len(clipped))
    return len(rendered)


# ---------------------------------------------------------------------------
# allocator
# ---------------------------------------------------------------------------


def _malloc(cpu: CPU) -> int:
    (size,) = _args(cpu, 1)
    process = cpu.process
    heap = cpu.memory.segment("heap")
    aligned = (size + 15) & ~15
    if process.brk + aligned > heap.end:
        return 0
    address = process.brk
    process.brk += aligned
    return address


def _calloc(cpu: CPU) -> int:
    count, size = _args(cpu, 2)
    total = count * size
    cpu.registers.write(ARG_REGS[0], total)
    address = _malloc(cpu)
    if address:
        cpu.memory.write(address, b"\x00" * total)
    return address


def _free(cpu: CPU) -> int:
    return 0  # bump allocator: free is a no-op


def _realloc(cpu: CPU) -> int:
    old, size = _args(cpu, 2)
    cpu.registers.write(ARG_REGS[0], size)
    address = _malloc(cpu)
    if address and old:
        # We do not track block sizes; copy conservatively.
        data = cpu.memory.read(old, min(size, 256))
        cpu.memory.write(address, data)
    return address


# ---------------------------------------------------------------------------
# process control
# ---------------------------------------------------------------------------


def _exit(cpu: CPU) -> int:
    (status,) = _args(cpu, 1)
    cpu.running = False
    cpu.exit_status = status & 0xFF
    cpu.registers.write("rax", status & 0xFF)
    return status & 0xFF


def _abort(cpu: CPU) -> int:
    raise ProgramAbort("abort() called")


def _getpid(cpu: CPU) -> int:
    return cpu.process.pid


def _rand(cpu: CPU) -> int:
    return cpu.process.entropy.word(31)


def _time(cpu: CPU) -> int:
    return cpu.tsc.read() >> 20  # coarse "seconds"


def _fork(cpu: CPU) -> int:
    """glibc ``fork``: clone and run the child to completion first.

    The child resumes right after this call with ``rax = 0``; its result
    is recorded on the parent (``child_results``) so forking servers can
    observe crashes, mirroring ``waitpid`` status collection.

    Cloning goes through :func:`repro.faults.policy.fork_with_retry`:
    transient EAGAIN from the kernel is absorbed within a bounded budget,
    and budget exhaustion fails closed (``DegradedError`` abort) instead
    of running on without a refreshed shadow pair.  A ``None`` child
    models the raw libc path of surfacing ``-1`` to the program (only the
    naive chaos mutant takes it).
    """
    parent = cpu.process
    child = fault_policy.fork_with_retry(parent)
    if child is None:
        return (1 << 64) - 1  # -1: EAGAIN surfaced to the program
    child.registers.write("rax", 0)
    result = child.continue_execution()
    if not hasattr(parent, "child_results"):
        parent.child_results = []
    parent.child_results.append((child.pid, result))
    parent.kernel.reap(child)
    return child.pid


def _waitpid(cpu: CPU) -> int:
    pid, status_ptr, _options = _args(cpu, 3)
    parent = cpu.process
    results = getattr(parent, "child_results", [])
    for child_pid, result in results:
        if pid in (child_pid, (1 << 64) - 1, 0):
            if status_ptr:
                code = 0 if result.state == "exited" else 0x8B
                cpu.memory.write_word(status_ptr, code)
            return child_pid
    return (1 << 64) - 1


def _pthread_create(cpu: CPU) -> int:
    """pthread_create(thread_out, attr, start_routine, arg) — synchronous.

    The thread runs to completion immediately (deterministic schedule);
    its context persists on ``process.threads``.
    """
    thread_out, _attr, start_routine, arg = _args(cpu, 4)
    process = cpu.process
    thread = process.kernel.create_thread(process)
    function, index = cpu.image.resolve(start_routine)
    if index != 0:
        raise SegmentationFault(start_routine, "thread start mid-function")
    thread.call(function.name, (arg,))
    if thread_out:
        cpu.memory.write_word(thread_out, len(process.threads))
    return 0


def _pthread_join(cpu: CPU) -> int:
    return 0  # threads already ran to completion


# ---------------------------------------------------------------------------
# non-local control flow (setjmp/longjmp)
# ---------------------------------------------------------------------------


def _setjmp(cpu: CPU) -> int:
    """Save the resumption context keyed by the jmp_buf address.

    Stack unwinding is the compatibility hazard the paper holds against
    DynaGuard/DCR (§III-D): a longjmp skips the epilogues of every
    unwound frame, so any per-call canary bookkeeping those epilogues
    were supposed to pop is silently leaked.
    """
    (buf,) = _args(cpu, 1)
    process = cpu.process
    if not hasattr(process, "jmp_bufs"):
        process.jmp_bufs = {}
    rsp = cpu.registers.read("rsp")
    rbp = cpu.registers.read("rbp")
    # Snapshot the caller's pending stack span [rsp, rbp): our stack-machine
    # code generator parks expression temporaries there, where a register
    # allocator would have used callee-saved registers — which real setjmp
    # preserves.  Deeper calls reuse those slots, so longjmp must restore
    # them along with the register file.
    span = b""
    if rsp < rbp and rbp - rsp <= 0x10000:
        span = cpu.memory.read(rsp, rbp - rsp)
    process.jmp_bufs[buf] = {
        "rip": cpu.registers.rip,  # already advanced past the call
        "rsp": rsp,
        "rbp": rbp,
        "stack_span": span,
        "callee": {r: cpu.registers.read(r) for r in CALLEE_SAVED},
    }
    return 0


def _longjmp(cpu: CPU) -> int:
    """Unwind straight back to the matching setjmp — no epilogues run."""
    buf, value = _args(cpu, 2)
    state = getattr(cpu.process, "jmp_bufs", {}).get(buf)
    if state is None:
        raise SegmentationFault(buf, "longjmp with unset jmp_buf")
    cpu.registers.write("rsp", state["rsp"])
    cpu.registers.write("rbp", state["rbp"])
    if state["stack_span"]:
        cpu.memory.write(state["rsp"], state["stack_span"])
    for register, saved in state["callee"].items():
        cpu.registers.write(register, saved)
    name, index = state["rip"]
    function = cpu.image.function(name)
    cpu._current = function
    cpu.registers.rip = (name, index)
    return value if value else 1


# ---------------------------------------------------------------------------
# stack protection runtime
# ---------------------------------------------------------------------------


def _stack_chk_fail(cpu: CPU) -> int:
    name, _ = cpu.registers.rip
    telemetry.count(
        "canary_smashes_detected_total", help="__stack_chk_fail firings"
    )
    telemetry.event("smash-detected", function=name)
    raise StackSmashDetected(function=name)


def _fortify_fail(cpu: CPU) -> int:
    name, _ = cpu.registers.rip
    telemetry.count(
        "canary_smashes_detected_total", help="__stack_chk_fail firings"
    )
    telemetry.event("smash-detected", function=name, detail="fortify_fail")
    raise StackSmashDetected(function=name, detail="fortify_fail")


def _aes_encrypt_128(cpu: CPU) -> int:
    """The AES helper the P-SSP-OWF prologue/epilogue calls (Code 8/9).

    Key in ``xmm1``, plaintext in ``xmm15``; ciphertext replaces ``xmm15``.
    """
    key = cpu.registers.read("xmm1").to_bytes(16, "little")
    plaintext = cpu.registers.read("xmm15").to_bytes(16, "little")
    ciphertext = encrypt_block(key, plaintext)
    cpu.registers.write("xmm15", int.from_bytes(ciphertext, "little"))
    # Output travels in xmm15 only; rax (a caller's live return value when
    # this is invoked from an epilogue) must stay untouched.
    return None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_TABLE: Dict[str, "tuple[Callable[[CPU], int], int]"] = {
    "memcpy": (_memcpy, 12),
    "memmove": (_memmove, 14),
    "memset": (_memset, 10),
    "memcmp": (_memcmp, 12),
    "strlen": (_strlen, 10),
    "strcpy": (_strcpy, 12),
    "strncpy": (_strncpy, 12),
    "strcat": (_strcat, 14),
    "strcmp": (_strcmp, 12),
    "strchr": (_strchr, 10),
    "atoi": (_atoi, 15),
    "read": (_read, 60),
    "gets": (_gets, 60),
    "recv": (_read, 70),
    "write": (_write, 60),
    "puts": (_puts, 30),
    "printf": (_printf, 40),
    "sprintf": (_sprintf, 35),
    "snprintf": (_snprintf, 35),
    "malloc": (_malloc, 25),
    "calloc": (_calloc, 30),
    "free": (_free, 10),
    "realloc": (_realloc, 30),
    "exit": (_exit, 20),
    "abort": (_abort, 20),
    "getpid": (_getpid, 15),
    "rand": (_rand, 20),
    "time": (_time, 15),
    "fork": (_fork, 2500),
    "waitpid": (_waitpid, 200),
    "pthread_create": (_pthread_create, 5000),
    "pthread_join": (_pthread_join, 100),
    "setjmp": (_setjmp, 30),
    "longjmp": (_longjmp, 40),
    "__stack_chk_fail": (_stack_chk_fail, 5),
    "__GI__fortify_fail": (_fortify_fail, 5),
    "AES_ENCRYPT_128": (_aes_encrypt_128, AES_HELPER_COST),
    # Kernel-service aliases used by *simulated* glibc stubs in statically
    # linked binaries (the stubs themselves are what Dyninst hooks).
    "__libc_fork_syscall": (_fork, 2500),
    "__libc_stack_chk_abort": (_stack_chk_fail, 5),
}


def build_natives(extra: Optional[Dict[str, NativeFunction]] = None) -> Dict[str, NativeFunction]:
    """Construct a fresh native symbol table (one per process family).

    ``extra`` entries override the defaults — the mechanism behind
    native-level ``LD_PRELOAD`` interposition.
    """
    natives = {
        name: NativeFunction(name, handler, cost)
        for name, (handler, cost) in _TABLE.items()
    }
    if extra:
        natives.update(extra)
    return natives


#: Names whose write targets can overflow a stack buffer — the compiler's
#: P-SSP-LV pass inserts post-call canary inspections after these (§V-E2).
OVERFLOW_VECTORS = frozenset(
    ("memcpy", "memmove", "memset", "strcpy", "strncpy", "strcat", "read", "recv", "gets", "sprintf")
)
