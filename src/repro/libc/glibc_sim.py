"""Simulated glibc functions for statically linked binaries.

Dynamic binaries call straight into native libc; *static* binaries embed
tiny simulated stubs for the functions the P-SSP rewriter must modify —
``fork`` and ``__stack_chk_fail`` (paper §V-D).  The stubs forward to the
kernel-service native aliases, giving the Dyninst-style instrumenter real
in-binary code to hook.

The paper notes static glibc linking is rare (2 binaries out of ~44 000
on Debian) but still handles it; so do we.
"""

from __future__ import annotations

from ..binfmt.elf import STATIC, Binary
from ..isa.instructions import Function, Reg, Sym


def build_static_glibc() -> Binary:
    """Return a binary fragment with the statically linkable glibc stubs."""
    fragment = Binary("libc_static_stubs", link_type=STATIC)

    fork = Function("fork")
    fork.emit("push", Reg("rbp"))
    fork.emit("mov", Reg("rbp"), Reg("rsp"))
    fork.emit("call", Sym("__libc_fork_syscall"))
    fork.emit("leave")
    fork.emit("ret")
    fragment.add_function(fork)

    chk = Function("__stack_chk_fail")
    chk.emit("call", Sym("__libc_stack_chk_abort"))
    chk.emit("ret")
    fragment.add_function(chk)

    return fragment


#: Function names the static rewriter must hook (paper §V-D).
STATIC_HOOK_TARGETS = ("fork", "__stack_chk_fail")
