"""Simulated glibc: native builtins, overflow vectors, preload library."""

from .builtins import OVERFLOW_VECTORS, build_natives
from .preload import SO_NAME, SO_SIZE_BYTES, SO_SOURCE_LINES, PSSPPreload

__all__ = [
    "OVERFLOW_VECTORS",
    "PSSPPreload",
    "SO_NAME",
    "SO_SIZE_BYTES",
    "SO_SOURCE_LINES",
    "build_natives",
]
