"""The P-SSP preload shared library (paper §V-A).

The paper ships a ~16 KB position-independent shared object
(``libpoly_canary.so``, ~358 source lines) that is ``LD_PRELOAD``-ed into
victims.  It exports three overrides:

* ``setup_p-ssp`` — a ``constructor`` that initialises the TLS shadow
  canary (Algorithm 1) before ``main`` runs;
* ``fork`` — wraps glibc's fork and refreshes the *child's* shadow canary
  after the TLS is cloned (the parent's is untouched, and the TLS canary
  ``C`` itself is never changed — the paper's key compatibility claim);
* ``pthread_create`` — ditto for new threads.

In the simulator the wrapper behaviour is expressed as install-time setup
plus fork/thread hooks on the process, which the kernel invokes exactly
where the wrapped libc calls would run.

``mode`` selects the shadow format: ``"compiler"`` stores the 64-bit pair
at ``fs:0x2a8``/``fs:0x2b0`` (Code 3), ``"binary"`` stores the packed
2×32-bit word at ``fs:0x2a8`` so instrumented prologues stay
layout-identical to SSP (§V-C).
"""

from __future__ import annotations

from .. import telemetry
from ..core.rerandomize import re_randomize, re_randomize_packed32
from ..errors import ProtectionError
from ..faults import policy as fault_policy
from ..kernel.process import Process

#: Metadata reported by the paper for the real artifact.
SO_NAME = "libpoly_canary.so"
SO_SIZE_BYTES = 16 * 1024
SO_SOURCE_LINES = 358


class PSSPPreload:
    """Runtime support for P-SSP (basic scheme)."""

    def __init__(self, mode: str = "compiler") -> None:
        if mode not in ("compiler", "binary"):
            raise ProtectionError(f"unknown preload mode {mode!r}")
        self.mode = mode

    # -- the three exported overrides -------------------------------------------

    def setup(self, process: Process) -> None:
        """``setup_p-ssp``: initialise the shadow canary for one thread.

        The pair is two separate TLS words, so the store goes through the
        verified publish path: write both halves, read back, repair a torn
        write within a bounded budget, and fail closed
        (:class:`~repro.errors.DegradedError`) rather than leave a
        mixed-generation pair observable.
        """
        tls = process.tls
        if self.mode == "compiler":
            c0, c1 = re_randomize(process.entropy, tls.canary)
        else:
            c0, c1 = re_randomize_packed32(process.entropy, tls.canary), 0
        fault_policy.publish_shadow_pair(
            tls, c0, c1, plane=getattr(process, "fault_plane", None)
        )
        telemetry.count(
            "shadow_refreshes_total", help="TLS shadow pair publishes"
        )
        telemetry.event("shadow-refresh", pid=process.pid, mode=self.mode)

    def on_fork(self, child: Process, parent: Process) -> None:
        """Wrapped ``fork``: refresh only the *child's* shadow canary.

        The TLS canary ``C`` is deliberately left alone, so frames the
        child inherited from the parent still verify — no consistency
        walk needed (contrast DynaGuard/DCR).
        """
        telemetry.count(
            "fork_rerandomizations_total",
            help="child shadow pairs refreshed after fork",
        )
        telemetry.event(
            "fork-rerandomize", child=child.pid, parent=parent.pid
        )
        self.setup(child)

    def on_thread(self, thread: Process, process: Process) -> None:
        """Wrapped ``pthread_create``: fresh shadow canary per thread."""
        self.setup(thread)

    # -- deployment ---------------------------------------------------------------

    def install(self, process: Process) -> None:
        """Equivalent of ``LD_PRELOAD`` + constructor execution."""
        self.setup(process)
        process.fork_hooks.append(self.on_fork)
        process.thread_hooks.append(self.on_thread)

    def reattach(self, process: Process) -> None:
        """Re-register hooks on a restored process.

        No ``setup``: the shadow pair (and the entropy the constructor
        consumed) are already in the restored TLS/entropy state, so a
        second publish would desynchronise the replay.
        """
        process.fork_hooks.append(self.on_fork)
        process.thread_hooks.append(self.on_thread)

    def preload_binaries(self):
        """Simulated code this preload interposes (none for compiler mode;
        the binary mode's ``__stack_chk_fail`` replacement is produced by
        :func:`repro.rewriter.stack_chk.build_stack_chk_binary`)."""
        if self.mode == "binary":
            from ..rewriter.stack_chk import build_stack_chk_binary

            return [build_stack_chk_binary()]
        return []
