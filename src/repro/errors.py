"""Exception hierarchy for the P-SSP reproduction.

Faults raised while simulated code executes (``MachineFault`` subclasses)
model hardware/OS level failures: the kernel converts them into process
crashes rather than letting them propagate to the host test harness.
Everything else (``ReproError`` subclasses that are not faults) signals
misuse of the library itself.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Process exit-code taxonomy.
#
# Every CLI campaign command (fuzz / chaos / attack / serve / fleet) maps
# its verdict onto the same five codes so CI can route failures without
# parsing output:
#
#   0  EXIT_OK              clean run, all gates passed
#   1  EXIT_VIOLATION       a contract/report violation (the finding is real)
#   2  EXIT_USAGE           bad arguments; nothing ran
#   3  EXIT_INFRASTRUCTURE  the harness failed (lost shard, interrupted run)
#   4  EXIT_DEADLINE        the campaign wall-clock deadline expired
# ---------------------------------------------------------------------------

EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_USAGE = 2
EXIT_INFRASTRUCTURE = 3
EXIT_DEADLINE = 4


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Machine-level faults: these correspond to signals a real process would get.
# ---------------------------------------------------------------------------


class MachineFault(ReproError):
    """A fault raised by the simulated CPU/memory while executing code.

    The kernel catches these and turns them into a crashed process with the
    corresponding exit reason, mirroring SIGSEGV/SIGABRT delivery.
    """

    #: Symbolic signal name used in crash reports.
    signal = "SIGERR"


class SegmentationFault(MachineFault):
    """Access to an unmapped address or a protection violation."""

    signal = "SIGSEGV"

    def __init__(self, address: int, access: str = "read") -> None:
        super().__init__(f"segmentation fault: {access} at {address:#x}")
        self.address = address
        self.access = access


class StackSmashDetected(MachineFault):
    """``__stack_chk_fail`` fired: a canary mismatch was detected.

    This is the *defence succeeding*; the process aborts (SIGABRT) exactly
    like glibc's ``__fortify_fail`` path.
    """

    signal = "SIGABRT"

    def __init__(self, function: str = "?", detail: str = "") -> None:
        message = f"*** stack smashing detected ***: {function} terminated"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.function = function
        self.detail = detail


class IllegalInstruction(MachineFault):
    """The CPU fetched an opcode it cannot execute."""

    signal = "SIGILL"


class ProgramAbort(MachineFault):
    """``abort()`` was called by simulated code."""

    signal = "SIGABRT"


class InvalidJump(MachineFault):
    """Control transferred to a label/address that does not exist."""

    signal = "SIGSEGV"


class CpuLimitExceeded(MachineFault):
    """The per-run instruction budget was exhausted (runaway program)."""

    signal = "SIGXCPU"


class DivisionFault(MachineFault):
    """Integer division by zero inside simulated code."""

    signal = "SIGFPE"


class DegradedError(MachineFault):
    """A scheme runtime degraded *explicitly* instead of weakening silently.

    Raised when a graceful-degradation budget is exhausted — rdrand still
    failing after the bounded retry loop with no shadow pair to fall back
    on, ``fork`` returning EAGAIN past the retry budget, or a shadow-pair
    publish that stays torn after repair attempts.  The policy is
    fail-closed: the process aborts (like ``__fortify_fail``) rather than
    continue with a predictable or half-written canary.
    """

    signal = "SIGABRT"

    def __init__(self, message: str, *, policy: str = "") -> None:
        if policy:
            message = f"{message} [policy: {policy}]"
        super().__init__(f"degraded: {message}")
        self.policy = policy


# ---------------------------------------------------------------------------
# Fault-injection plane errors.
# ---------------------------------------------------------------------------


class FaultError(ReproError):
    """Base for errors originating in the fault-injection plane.

    Distinct from :class:`MachineFault`: a ``FaultError`` models an
    environmental failure (a flaky device, a refused syscall) that the
    scheme runtimes are expected to *absorb*; only when absorption fails
    does it surface as a typed :class:`DegradedError` crash.
    """


class TransientForkFailure(FaultError):
    """``fork`` failed with EAGAIN; the caller may retry."""


class EntropyFailure(FaultError):
    """The host entropy source could not satisfy a draw.

    Replaces the previous behaviour of hanging (``nonzero_word`` retrying
    forever on a degenerate bit width) with a typed, bounded failure.
    """


class CampaignError(ReproError):
    """Infrastructure failure inside a fuzz/chaos campaign harness.

    Means the *harness* could not produce a verdict (reference run
    crashed, checkpoint corrupt, ...) — deliberately distinct from a
    contract violation so CI can tell a flake from a real failure.
    """


class ShutdownRequested(ReproError):
    """SIGTERM/SIGINT arrived while a campaign was running.

    The CLI converts the signal into this exception so campaigns unwind
    through their normal ``finally`` blocks (the checkpoint written after
    the last completed slice stays valid, worker pools are shut down)
    instead of dying mid-slice.  Callers map it to
    :data:`EXIT_INFRASTRUCTURE`.
    """


# ---------------------------------------------------------------------------
# Library-usage errors (not process crashes).
# ---------------------------------------------------------------------------


class AssemblerError(ReproError):
    """Malformed assembly text or operands."""


class CompileError(ReproError):
    """The mini-C frontend rejected a source program."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class LinkError(ReproError):
    """Symbol resolution failed while building a binary image."""


class RewriteError(ReproError):
    """The static binary rewriter could not instrument a binary."""


class KernelError(ReproError):
    """Invalid syscall usage (bad pid, double wait, ...)."""


class ProtectionError(ReproError):
    """A protection scheme was configured or deployed inconsistently."""


class SnapshotError(ReproError):
    """A machine image could not be captured or restored (unsupported
    process state, corrupt or version-mismatched image bytes)."""


class BundleError(ReproError):
    """A post-mortem bundle is unreadable or not replayable (bad magic,
    version mismatch, or missing replay identity).  Distinct from a
    replay *mismatch*, which is a finding, not an infrastructure error."""
