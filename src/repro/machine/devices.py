"""Hardware devices the canary schemes rely on.

* :class:`TimeStampCounter` — backs ``rdtsc``; monotonically advances with
  consumed cycles, so successive reads differ (the nonce property
  P-SSP-OWF needs).
* :class:`RdRandDevice` — backs ``rdrand``; draws from the process's
  :class:`~repro.crypto.random.EntropySource`.
"""

from __future__ import annotations

from ..crypto.random import EntropySource


class TimeStampCounter:
    """A 64-bit counter advanced by executed cycles.

    ``base`` gives each boot a distinct epoch so two runs of the same
    program see different TSC values — the property the P-SSP-OWF nonce
    depends on.

    Advancement contract: the CPU's slow path calls :meth:`advance` once
    per instruction; the fast path batches several instructions into a
    single call.  Because advancement is plain modular addition, a batched
    sum lands on exactly the same counter value — and the fast loop always
    flushes its pending batch before any instruction that can *observe*
    the counter (``rdtsc``, native helpers), so readers never see a stale
    value.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, base: int = 0) -> None:
        self.value = base

    def advance(self, cycles: int) -> None:
        """Advance by ``cycles`` (one instruction, or a batched run)."""
        self.value = (self.value + cycles) & self._MASK

    def read(self) -> int:
        """``rdtsc``: return the current counter."""
        return self.value


class RdRandDevice:
    """Hardware random number generator (``rdrand``).

    On real silicon ``rdrand`` may transiently fail (CF=0); the simulator
    can model that with ``failure_rate`` to exercise retry loops, but the
    schemes in the paper assume success so the default is 0.
    """

    def __init__(self, entropy: EntropySource, failure_rate: float = 0.0) -> None:
        self.entropy = entropy
        self.failure_rate = failure_rate
        #: Count of successful draws (tests assert on re-randomization).
        self.draws = 0

    def read(self) -> "tuple[int, bool]":
        """Return ``(value, ok)``; ``ok`` maps to the carry flag."""
        if self.failure_rate and self.entropy.randrange(10**6) < self.failure_rate * 10**6:
            return 0, False
        self.draws += 1
        return self.entropy.word(64), True
