"""Hardware devices the canary schemes rely on.

* :class:`TimeStampCounter` — backs ``rdtsc``; monotonically advances with
  consumed cycles, so successive reads differ (the nonce property
  P-SSP-OWF needs).
* :class:`RdRandDevice` — backs ``rdrand``; draws from the process's
  :class:`~repro.crypto.random.EntropySource`.

Both devices accept an optional fault ``plane``
(:class:`~repro.faults.plane.FaultPlane`) that can skew/freeze the TSC
and fail or stick ``rdrand`` on scheduled attempts.  Crucially, injected
failures and stuck reads consume **no** entropy — the stuck value comes
from the schedule — so a faulted run stays entropy-stream-aligned with
its fault-free reference and replays bit-identically.
"""

from __future__ import annotations

from .. import telemetry
from ..crypto.random import EntropySource

_WORD_MASK = (1 << 64) - 1


class TimeStampCounter:
    """A 64-bit counter advanced by executed cycles.

    ``base`` gives each boot a distinct epoch so two runs of the same
    program see different TSC values — the property the P-SSP-OWF nonce
    depends on.

    Advancement contract: the CPU's slow path calls :meth:`advance` once
    per instruction; the fast path batches several instructions into a
    single call.  Because advancement is plain modular addition, a batched
    sum lands on exactly the same counter value — and the fast loop always
    flushes its pending batch before any instruction that can *observe*
    the counter (``rdtsc``, native helpers), so readers never see a stale
    value.
    """

    _MASK = _WORD_MASK

    def __init__(self, base: int = 0, plane=None) -> None:
        self.value = base
        self.plane = plane

    def advance(self, cycles: int) -> None:
        """Advance by ``cycles`` (one instruction, or a batched run)."""
        self.value = (self.value + cycles) & self._MASK

    def read(self) -> int:
        """``rdtsc``: return the current counter (plane may skew/freeze it)."""
        if self.plane is not None:
            return self.plane.rdtsc_observe(self.value)
        return self.value


class RdRandDevice:
    """Hardware random number generator (``rdrand``).

    On real silicon ``rdrand`` may transiently fail (CF=0) or — after a
    DRBG defect — return stuck output with CF=1.  The fault ``plane``
    injects both deterministically; the legacy ``failure_rate`` knob
    (which *does* consume entropy to decide) is kept for the original
    retry-loop experiments.

    A device can be ``quarantined`` by the boot-time self-test
    (:func:`repro.faults.policy.rdrand_selftest`): every subsequent read
    fails with CF=0, forcing hardened prologues onto their shadow-pair
    fallback instead of consuming untrusted output.
    """

    def __init__(
        self, entropy: EntropySource, failure_rate: float = 0.0, plane=None
    ) -> None:
        self.entropy = entropy
        self.failure_rate = failure_rate
        self.plane = plane
        #: Count of successful draws (tests assert on re-randomization).
        self.draws = 0
        #: Consecutive CF=0 results; cleared by any successful read.
        self.failure_streak = 0
        #: Failure streaks that ended in a successful read (absorbed).
        self.recovered_streaks = 0
        #: Set by the entropy self-test: fail closed on every read.
        self.quarantined = False

    def _fail(self, kind: str) -> "tuple[int, bool]":
        self.failure_streak += 1
        if self.plane is not None:
            self.plane.note_rdrand_failure(kind, self.failure_streak)
        telemetry.count(
            "rdrand_failures_total", help="rdrand CF=0 results (all causes)"
        )
        telemetry.event("rdrand-retry", cause=kind, streak=self.failure_streak)
        return 0, False

    def _end_streak(self) -> None:
        if self.failure_streak:
            self.recovered_streaks += 1
            if self.plane is not None:
                self.plane.note_rdrand_recovered(self.failure_streak)
            telemetry.count(
                "rdrand_recovered_streaks_total",
                help="CF=0 streaks ended by a successful read",
            )
            self.failure_streak = 0

    def read(self) -> "tuple[int, bool]":
        """Return ``(value, ok)``; ``ok`` maps to the carry flag."""
        # Consult the schedule first so attempt indices advance even while
        # quarantined (replay alignment), then apply the quarantine.
        verdict = self.plane.rdrand_verdict() if self.plane is not None else None
        if self.quarantined:
            return self._fail("rdrand-quarantined")
        if verdict is not None:
            if verdict[0] == "fail":
                return self._fail("rdrand-fail")
            # Stuck DRBG: CF=1, schedule-supplied output, no entropy drawn.
            self._end_streak()
            self.draws += 1
            telemetry.count(
                "rdrand_draws_total", help="successful rdrand draws (CF=1)"
            )
            return verdict[1] & _WORD_MASK, True
        if self.failure_rate and self.entropy.randrange(10**6) < self.failure_rate * 10**6:
            telemetry.count(
                "rdrand_failures_total", help="rdrand CF=0 results (all causes)"
            )
            return 0, False
        self._end_streak()
        self.draws += 1
        telemetry.count(
            "rdrand_draws_total", help="successful rdrand draws (CF=1)"
        )
        telemetry.sampled_event("rdrand-draw", draw=self.draws)
        return self.entropy.word(64), True
