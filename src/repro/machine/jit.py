"""Trace-JIT tier: compile hot runs of decoded steps into superblocks.

The decode cache (:mod:`repro.machine.decode`) lowers each *static*
instruction to one bound closure; the fast loop still pays one Python
call plus loop bookkeeping per *dynamic* instruction.  This module adds
the next tier: when a control-transfer arrival point (a back-edge or
call target) gets hot, the straight-line run of decoded steps starting
there is compiled into a single **superblock** function — one Python
call per guest basic block — by lowering each step to plain source text
and ``exec``-ing the result with every name pre-bound through a closure.

Exactness contract (the reason this file is mostly checks):

* **Accounting** is batched at block granularity but must land on the
  slow path's values bit-for-bit.  Blocks are only compiled when every
  member step's cycle charge is integral (true for ``dbi_multiplier``
  1.0, where base costs are integers) so the batched float sum is
  exactly associative; DBI schemes (x1.22 / x2.56) simply never JIT.
* **Faults** may stop a block mid-flight.  Generated code maintains a
  block-position marker (``_i``) that is updated *only* before lines
  that can raise, and the block's caller re-creates the exact
  architectural state the step loop would have left: ``rip`` of the
  faulting step, accounting through it (the step loop charges before
  executing), and every register/memory effect of the preceding steps.
* **Side-exits** happen at canary group-leaders, SYNC steps (``rdtsc``,
  calls that can reach natives), block-size caps, and cycle-limit
  proximity; each returns to the generic step loop with architectural
  state indistinguishable from never having JIT-compiled at all.

The peephole pass is deliberately textual and order-preserving, in the
spirit of the mini32 exemplar ("if in doubt, leaves code unchanged"):

* **redundant flag recomputation** — a ``zf``/``sf``/``cf`` store is
  dropped only when the *same* flag is overwritten again before any
  line that can fault, any opaque closure call, or the end of the block
  (flags are architectural state at every one of those points);
* **read-after-write register forwarding** — register reads are
  replaced by the SSA temporary (or constant) last stored to that
  register; writes are never removed, and opaque calls clear the map;
* **push/pop pairing** — a ``pop`` whose value provably comes from a
  preceding ``push`` (no intervening memory write, opaque call, or
  stray ``rsp`` write) forwards the pushed temporary instead of
  re-reading the stack slot; the push's memory store and both ``rsp``
  updates are kept so a fault anywhere in between leaves the exact
  un-fused state.

``REPRO_JIT=0`` disables the tier entirely (the decode-cache fast path
is unchanged); the slow loop remains the semantic oracle either way.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..isa.instructions import Imm, Label, Mem, Reg
from .decode import CONTROL, SYNC, DecodedFunction

WORD_MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63
TWO64 = 1 << 64

#: Environment switch: ``REPRO_JIT=0`` disables superblock compilation.
ENV_FLAG = "REPRO_JIT"

#: Arrivals at a dispatch point before it is compiled.
HOT_THRESHOLD = 16
#: Blocks shorter than this lose to the step loop's own bookkeeping.
MIN_STEPS = 2
#: Cap on steps per superblock (bounds compile time and fault tables).
MAX_STEPS = 128

_ATOM = re.compile(r"^(?:-?\d+|t\d+)$")


def _jmp_target(function, instruction) -> Optional[int]:
    """Resolved index of an unconditional direct ``jmp label``, else None."""
    if instruction.op != "jmp":
        return None
    target = instruction.operands[0]
    if not isinstance(target, Label):
        return None
    return function.labels.get(target.name)


def jit_enabled() -> bool:
    """Whether new CPUs should profile and compile superblocks."""
    return os.environ.get(ENV_FLAG, "1") != "0"


class Superblock:
    """One compiled straight-line run of decoded steps.

    ``run()`` executes every member step (semantics identical to the
    step loop walking them one at a time); the caller then adds
    ``cycles``/``ticks``/``count`` to its batched accounting.  On any
    exception ``fault_index`` holds the block-relative position of the
    faulting step and the prefix arrays give the exact accounting and
    ``rip`` for the recovery path.
    """

    __slots__ = (
        "run", "cycles", "ticks", "count", "terminal", "end_index",
        "fault_index", "prefix_cycles", "prefix_ticks", "rips", "source",
    )

    def __init__(self) -> None:
        self.run = None
        self.cycles = 0
        self.ticks = 0
        self.count = 0
        self.terminal = False
        self.end_index = 0
        self.fault_index = 0
        self.prefix_cycles: List[int] = []
        self.prefix_ticks: List[int] = []
        self.rips: List[Tuple[str, int]] = []
        self.source = ""


class _Line:
    """One generated source line plus the facts the peephole needs."""

    __slots__ = ("code", "pos", "flag", "faultable", "barrier")

    def __init__(self, code, pos, flag=None, faultable=False, barrier=False):
        self.code = code
        self.pos = pos
        self.flag = flag
        self.faultable = faultable
        self.barrier = barrier


class _Lowering:
    """Per-block lowering state: lines, SSA temps, forwarding maps."""

    def __init__(self) -> None:
        self.lines: List[_Line] = []
        self._temp = 0
        #: Register forwarding map: gpr name -> temp/constant expression.
        self.fwd: Dict[str, str] = {}
        #: Pending push records for push/pop pairing:
        #: (slot temp, value expression) — cleared by anything that
        #: writes memory, touches rsp outside push/pop, or is opaque.
        self.push_stack: List[Tuple[str, str]] = []
        #: Closure constants for the generated factory (opaque closures,
        #: the terminal rip tuple).
        self.consts: Dict[str, object] = {}
        self.forwarded = 0

    # -- emission helpers ----------------------------------------------

    def temp(self) -> str:
        self._temp += 1
        return f"t{self._temp}"

    def emit(self, code, pos, flag=None, faultable=False, barrier=False):
        self.lines.append(_Line(code, pos, flag, faultable, barrier))

    def atom(self, expr: str, pos: int) -> str:
        """Bind ``expr`` to a temp unless it is already re-readable."""
        if _ATOM.match(expr):
            return expr
        name = self.temp()
        self.emit(f"{name} = {expr}", pos)
        return name

    def rread(self, name: str) -> str:
        value = self.fwd.get(name)
        if value is not None:
            self.forwarded += 1
            return value
        return f"g[{name!r}]"

    def rwrite(self, name, expr, pos, *, stack_op=False):
        """Store ``expr`` into a register, keeping the forwarding map."""
        if _ATOM.match(expr):
            value = expr
        else:
            value = self.temp()
            self.emit(f"{value} = {expr}", pos)
        self.emit(f"g[{name!r}] = {value}", pos)
        self.fwd[name] = value
        if name == "rsp" and not stack_op:
            self.push_stack.clear()

    def mem_write_barrier(self) -> None:
        """An unpredictable store may alias a pushed slot."""
        self.push_stack.clear()

    def opaque(self, execute, pos: int) -> None:
        """Call the decoded step closure; a full barrier for everything."""
        name = f"e{pos}"
        self.consts[name] = execute
        self.fwd.clear()
        self.push_stack.clear()
        self.emit(f"{name}()", pos, faultable=True, barrier=True)


class _Compiler:
    """Lowers one run of decoded steps to a superblock function."""

    def __init__(self, cpu, decoded: DecodedFunction) -> None:
        self.cpu = cpu
        self.decoded = decoded
        self.registers = cpu.registers
        self.gprs = cpu.registers.gpr

    # ------------------------------------------------------------------
    # operand expression helpers (mirror decode.FunctionDecoder exactly)
    # ------------------------------------------------------------------

    def _gpr_name(self, operand) -> Optional[str]:
        if isinstance(operand, Reg) and operand.name in self.gprs:
            return operand.name
        return None

    def _ea_expr(self, low: _Lowering, m: Mem) -> Optional[str]:
        disp, base, index, scale = m.disp, m.base, m.index, m.scale
        if base is not None and base not in self.gprs:
            return None
        if index is not None and index not in self.gprs:
            return None
        if m.seg is not None:
            if m.seg != "fs":
                return None
            if base is None and index is None:
                return f"(R.fs_base + {disp}) & M"
            if index is None:
                return f"(R.fs_base + {disp} + {low.rread(base)}) & M"
            if base is None:
                return f"(R.fs_base + {disp} + {low.rread(index)} * {scale}) & M"
            return (
                f"(R.fs_base + {disp} + {low.rread(base)}"
                f" + {low.rread(index)} * {scale}) & M"
            )
        if base is not None and index is None:
            if disp == 0:
                return low.rread(base)
            return f"({low.rread(base)} + {disp}) & M"
        if base is not None:
            return f"({low.rread(base)} + {low.rread(index)} * {scale} + {disp}) & M"
        if index is not None:
            return f"({low.rread(index)} * {scale} + {disp}) & M"
        return str(disp & WORD_MASK)

    def _read_expr(self, low: _Lowering, operand, pos, width=8) -> Optional[str]:
        """Value expression for a source operand; may emit a load line."""
        if isinstance(operand, Reg):
            if operand.name in self.gprs:
                return low.rread(operand.name)
            return None  # xmm source: opaque
        if isinstance(operand, Imm):
            value = operand.value & WORD_MASK
            if width == 1:
                value &= 0xFF
            return str(value)
        if isinstance(operand, Mem):
            ea = self._ea_expr(low, operand)
            if ea is None:
                return None
            name = low.temp()
            reader = "rd" if width == 8 else "rb"
            low.emit(f"{name} = {reader}({ea})", pos, faultable=True)
            return name
        return None  # Sym and anything else: opaque

    # ------------------------------------------------------------------
    # per-op lowering (returns False to fall back to the opaque closure)
    # ------------------------------------------------------------------

    def _lower(self, low: _Lowering, instruction, pos: int) -> bool:
        op = instruction.op
        handler = getattr(self, f"_l_{op}", None)
        if handler is None:
            return False
        mark = len(low.lines)
        temp_mark = low._temp
        fwd_mark = dict(low.fwd)
        stack_mark = list(low.push_stack)
        ok = handler(low, instruction, pos)
        if not ok:
            # Drop any partial emission (lines *and* forwarding state);
            # the opaque fallback redoes the step from scratch.
            del low.lines[mark:]
            low._temp = temp_mark
            low.fwd = fwd_mark
            low.push_stack = stack_mark
        return ok

    def _l_nop(self, low, instruction, pos) -> bool:
        return True

    def _l_mov(self, low, instruction, pos) -> bool:
        dst, src = instruction.operands
        if isinstance(dst, Reg) and dst.name.startswith("xmm"):
            return False
        if isinstance(src, Reg) and src.name.startswith("xmm"):
            return False
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is not None:
            value = self._read_expr(low, src, pos)
            if value is None:
                return False
            low.rwrite(dst_gpr, value, pos)
            return True
        if isinstance(dst, Mem):
            ea = self._ea_expr(low, dst)
            if ea is None:
                return False
            value = self._read_expr(low, src, pos)
            if value is None:
                return False
            low.mem_write_barrier()
            low.emit(f"wr({ea}, {value})", pos, faultable=True)
            return True
        return False

    def _l_movb(self, low, instruction, pos) -> bool:
        dst, src = instruction.operands
        value = self._read_expr(low, src, pos, width=1)
        if value is None:
            return False
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is not None:
            old = low.rread(dst_gpr)
            low.rwrite(dst_gpr, f"({old} & -256) | ({value} & 0xFF)", pos)
            return True
        if isinstance(dst, Reg):
            return False  # xmm byte destination: slow handler semantics
        if isinstance(dst, Mem):
            ea = self._ea_expr(low, dst)
            if ea is None:
                return False
            low.mem_write_barrier()
            low.emit(f"wb({ea}, {value} & 0xFF)", pos, faultable=True)
            return True
        return False

    def _l_movzxb(self, low, instruction, pos) -> bool:
        dst, src = instruction.operands
        value = self._read_expr(low, src, pos, width=1)
        if value is None:
            return False
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is not None:
            low.rwrite(dst_gpr, f"{value} & 0xFF", pos)
            return True
        if isinstance(dst, Mem):
            ea = self._ea_expr(low, dst)
            if ea is None:
                return False
            low.mem_write_barrier()
            low.emit(f"wr({ea}, ({value} & 0xFF))", pos, faultable=True)
            return True
        return False

    def _l_lea(self, low, instruction, pos) -> bool:
        dst, src = instruction.operands
        if not isinstance(src, Mem):
            return False  # symbol lea: keep the decode-time resolution
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is None:
            return False
        ea = self._ea_expr(low, src)
        if ea is None:
            return False
        low.rwrite(dst_gpr, ea, pos)
        return True

    # -- stack ----------------------------------------------------------

    def _l_push(self, low, instruction, pos) -> bool:
        src = instruction.operands[0]
        # rsp is decremented *before* the source is read (matters for a
        # memory source addressed off rsp) — mirror _c_push exactly.
        slot = low.temp()
        low.emit(f"{slot} = ({low.rread('rsp')} - 8) & M", pos)
        low.rwrite("rsp", slot, pos, stack_op=True)
        value = self._read_expr(low, src, pos)
        if value is None:
            return False
        value = low.atom(value, pos)
        low.emit(f"wr({slot}, {value})", pos, faultable=True)
        low.push_stack.append((slot, value))
        return True

    def _l_pop(self, low, instruction, pos) -> bool:
        target = instruction.operands[0]
        dst_gpr = self._gpr_name(target)
        if dst_gpr is None:
            return False
        if low.push_stack:
            # Paired with a still-live push: the slot provably holds the
            # pushed temporary (no store/opaque/rsp write intervened), so
            # skip the re-read.  rsp still steps through the same values.
            slot, value = low.push_stack.pop()
            low.rwrite("rsp", f"({slot} + 8) & M", pos, stack_op=True)
            low.rwrite(dst_gpr, value, pos)
            return True
        slot = low.atom(low.rread("rsp"), pos)
        value = low.temp()
        low.emit(f"{value} = rd({slot})", pos, faultable=True)
        low.rwrite("rsp", f"({slot} + 8) & M", pos, stack_op=True)
        low.rwrite(dst_gpr, value, pos)
        return True

    def _l_leave(self, low, instruction, pos) -> bool:
        base = low.atom(low.rread("rbp"), pos)
        value = low.temp()
        low.emit(f"{value} = rd({base})", pos, faultable=True)
        low.rwrite("rbp", value, pos)
        low.rwrite("rsp", f"({base} + 8) & M", pos)
        return True

    # -- ALU -------------------------------------------------------------

    def _alu_operands(self, low, instruction, pos):
        dst, src = instruction.operands
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is None:
            return None
        value = self._read_expr(low, src, pos)
        if value is None:
            return None
        return dst_gpr, value

    def _l_add(self, low, instruction, pos) -> bool:
        ops = self._alu_operands(low, instruction, pos)
        if ops is None:
            return False
        dst, src = ops
        raw = low.temp()
        low.emit(f"{raw} = {low.rread(dst)} + {src}", pos)
        low.emit(f"R.cf = {raw} > M", pos, flag="cf")
        low.rwrite(dst, f"{raw} & M", pos)
        result = low.fwd[dst]
        low.emit(f"R.zf = {result} == 0", pos, flag="zf")
        low.emit(f"R.sf = {result} >= S", pos, flag="sf")
        return True

    def _l_sub(self, low, instruction, pos) -> bool:
        ops = self._alu_operands(low, instruction, pos)
        if ops is None:
            return False
        dst, src = ops
        a = low.atom(low.rread(dst), pos)
        b = low.atom(src, pos)
        low.emit(f"R.cf = {a} < {b}", pos, flag="cf")
        low.rwrite(dst, f"({a} - {b}) & M", pos)
        result = low.fwd[dst]
        low.emit(f"R.zf = {result} == 0", pos, flag="zf")
        low.emit(f"R.sf = {result} >= S", pos, flag="sf")
        return True

    def _l_xor(self, low, instruction, pos) -> bool:
        ops = self._alu_operands(low, instruction, pos)
        if ops is None:
            return False
        dst, src = ops
        low.rwrite(dst, f"{low.rread(dst)} ^ {src}", pos)
        result = low.fwd[dst]
        low.emit(f"R.zf = {result} == 0", pos, flag="zf")
        low.emit(f"R.sf = {result} >= S", pos, flag="sf")
        low.emit("R.cf = False", pos, flag="cf")
        return True

    def _simple_alu(self, low, instruction, pos, template) -> bool:
        """or/and/shl/shr-style ops: masked result, zf/sf only."""
        ops = self._alu_operands(low, instruction, pos)
        if ops is None:
            return False
        dst, src = ops
        a = low.atom(low.rread(dst), pos)
        b = low.atom(src, pos)
        low.rwrite(dst, template.format(a=a, b=b), pos)
        result = low.fwd[dst]
        low.emit(f"R.zf = {result} == 0", pos, flag="zf")
        low.emit(f"R.sf = {result} >= S", pos, flag="sf")
        return True

    def _l_or(self, low, instruction, pos) -> bool:
        return self._simple_alu(low, instruction, pos, "({a} | {b}) & M")

    def _l_and(self, low, instruction, pos) -> bool:
        return self._simple_alu(low, instruction, pos, "({a} & {b}) & M")

    def _l_shl(self, low, instruction, pos) -> bool:
        return self._simple_alu(low, instruction, pos, "({a} << ({b} & 63)) & M")

    def _l_shr(self, low, instruction, pos) -> bool:
        return self._simple_alu(low, instruction, pos, "({a} >> ({b} & 63)) & M")

    def _l_sar(self, low, instruction, pos) -> bool:
        return self._simple_alu(
            low, instruction, pos,
            "(({a} - T if {a} >= S else {a}) >> ({b} & 63)) & M",
        )

    def _l_imul(self, low, instruction, pos) -> bool:
        return self._simple_alu(
            low, instruction, pos,
            "(({a} - T if {a} >= S else {a}) * ({b} - T if {b} >= S else {b})) & M",
        )

    def _unary(self, low, instruction, pos, template, *, flags=True) -> bool:
        target = instruction.operands[0]
        dst_gpr = self._gpr_name(target)
        if dst_gpr is None:
            return False
        a = low.atom(low.rread(dst_gpr), pos)
        low.rwrite(dst_gpr, template.format(a=a), pos)
        if flags:
            result = low.fwd[dst_gpr]
            low.emit(f"R.zf = {result} == 0", pos, flag="zf")
            low.emit(f"R.sf = {result} >= S", pos, flag="sf")
        return True

    def _l_inc(self, low, instruction, pos) -> bool:
        return self._unary(low, instruction, pos, "({a} + 1) & M")

    def _l_dec(self, low, instruction, pos) -> bool:
        return self._unary(low, instruction, pos, "({a} - 1) & M")

    def _l_neg(self, low, instruction, pos) -> bool:
        return self._unary(low, instruction, pos, "(-{a}) & M")

    def _l_not(self, low, instruction, pos) -> bool:
        return self._unary(low, instruction, pos, "(~{a}) & M", flags=False)

    # -- compare / test --------------------------------------------------

    def _l_cmp(self, low, instruction, pos) -> bool:
        a_op, b_op = instruction.operands
        a = self._read_expr(low, a_op, pos)
        if a is None:
            return False
        b = self._read_expr(low, b_op, pos)
        if b is None:
            return False
        a = low.atom(a, pos)
        b = low.atom(b, pos)
        low.emit(f"R.zf = {a} == {b}", pos, flag="zf")
        if isinstance(b_op, Imm):
            value = b_op.value & WORD_MASK
            signed = value - TWO64 if value >= SIGN_BIT else value
            low.emit(
                f"R.sf = ({a} - T if {a} >= S else {a}) < {signed}",
                pos, flag="sf",
            )
        else:
            low.emit(
                f"R.sf = ({a} - T if {a} >= S else {a})"
                f" < ({b} - T if {b} >= S else {b})",
                pos, flag="sf",
            )
        low.emit(f"R.cf = {a} < {b}", pos, flag="cf")
        return True

    def _l_test(self, low, instruction, pos) -> bool:
        a_op, b_op = instruction.operands
        a = self._read_expr(low, a_op, pos)
        if a is None:
            return False
        b = self._read_expr(low, b_op, pos)
        if b is None:
            return False
        result = low.atom(f"{a} & {b}", pos)
        low.emit(f"R.zf = {result} == 0", pos, flag="zf")
        low.emit(f"R.sf = {result} >= S", pos, flag="sf")
        low.emit("R.cf = False", pos, flag="cf")
        return True


def _elide_redundant_flags(lines: List[_Line]) -> int:
    """Peephole rule 1: drop flag stores overwritten before any observer.

    A flag store is dead only when the same flag is written again with
    no possibly-faulting line, opaque call, or block end in between —
    flags are architectural state at every one of those points.
    """
    keep: List[_Line] = []
    elided = 0
    total = len(lines)
    for i, line in enumerate(lines):
        if line.flag is not None:
            dead = False
            for j in range(i + 1, total):
                other = lines[j]
                if other.faultable or other.barrier:
                    break
                if other.flag == line.flag:
                    dead = True
                    break
            if dead:
                elided += 1
                continue
        keep.append(line)
    lines[:] = keep
    return elided


def compile_superblock(cpu, decoded: DecodedFunction, anchor: int):
    """Compile the straight-line run at ``anchor``, or ``None`` to reject.

    Returns a :class:`Superblock` whose execution is observationally
    identical — state, accounting, faults — to the step loop walking
    ``decoded.steps[anchor:anchor + count]``.
    """
    function = decoded.function
    steps = decoded.steps
    body = function.body
    total = len(steps)
    markers = (
        cpu._canary_markers(function)
        if telemetry.canary_hooks() is not None
        else None
    )

    picked: List[int] = []
    picked_set = set()
    inlined = set()  # block positions of followed (not emitted) jmps
    terminal = False
    k = anchor
    while k < total and len(picked) < MAX_STEPS:
        if k in picked_set:
            break  # walked back into the trace: side-exit, re-dispatch
        if markers is not None and k in markers:
            break  # side-exit: canary group leader stays in the step loop
        kind = steps[k][3]
        if kind & SYNC:
            break  # rdtsc / native-charging call need exact accounting
        if kind & CONTROL:
            # Trace formation: follow an unconditional intra-function
            # jmp (it cannot fault once the label resolves and cannot
            # mispredict), stitching the target's run into this block.
            # A jmp to an index already in the trace stays a terminal:
            # the block's own re-dispatch closes the loop.
            target = _jmp_target(function, body[k])
            if target is not None and target < total and target not in picked_set:
                picked.append(k)
                picked_set.add(k)
                inlined.add(len(picked) - 1)
                k = target
                continue
            picked.append(k)
            picked_set.add(k)
            terminal = True
            break
        picked.append(k)
        picked_set.add(k)
        k += 1
    if len(picked) < MIN_STEPS:
        telemetry.count(
            "jit_blocks_rejected_total",
            help="superblock candidates rejected (too short / non-integral)",
        )
        return None
    for index in picked:
        cycles = steps[index][1]
        if cycles != int(cycles):
            # Non-integral (DBI-scaled) step costs: batched float sums
            # would drift off the sequential fold by ULPs.  Reject.
            telemetry.count(
                "jit_blocks_rejected_total",
                help="superblock candidates rejected (too short / non-integral)",
            )
            return None

    sb = Superblock()
    low = _Lowering()
    compiler = _Compiler(cpu, decoded)
    for pos, index in enumerate(picked):
        execute, cycles, ticks, kind, next_rip = steps[index]
        sb.prefix_cycles.append(
            (sb.prefix_cycles[-1] if sb.prefix_cycles else 0) + int(cycles)
        )
        sb.prefix_ticks.append(
            (sb.prefix_ticks[-1] if sb.prefix_ticks else 0) + ticks
        )
        sb.rips.append(next_rip)
        if pos in inlined:
            # Followed jmp: pure control transfer, nothing to execute —
            # the next emitted line *is* its target.  Accounting for the
            # retired jmp is already in the prefix tables above.
            continue
        if kind & CONTROL:
            # Terminal: stage rip exactly as the step loop would before
            # executing (fallthrough for an untaken conditional, the
            # return-address base for a specialised call).
            low.consts["ripT"] = next_rip
            low.fwd.clear()
            low.push_stack.clear()
            low.emit("R.rip = ripT", pos)
            low.opaque(execute, pos)
            continue
        if not compiler._lower(low, body[index], pos):
            low.opaque(execute, pos)

    elided = _elide_redundant_flags(low.lines)

    sb.count = len(picked)
    sb.cycles = sb.prefix_cycles[-1]
    sb.ticks = sb.prefix_ticks[-1]
    sb.terminal = terminal
    sb.end_index = k
    sb.source = _assemble(low)
    sb.run = _bind(cpu, low, sb, function.name, anchor)

    telemetry.count(
        "jit_blocks_compiled_total",
        help="superblocks compiled from hot dispatch points",
    )
    if elided:
        telemetry.count(
            "jit_peephole_flags_elided_total", delta=elided,
            help="redundant flag stores removed by the peephole pass",
        )
    if low.forwarded:
        telemetry.count(
            "jit_peephole_reads_forwarded_total", delta=low.forwarded,
            help="register reads forwarded from prior writes",
        )
    return sb


def _assemble(low: _Lowering) -> str:
    """Render the lowered lines into the factory source."""
    faultable = any(line.faultable for line in low.lines)
    params = ["_sb", "g", "R", "M", "S", "T", "rd", "wr", "rb", "wb"]
    params.extend(sorted(low.consts))
    out = [f"def _factory({', '.join(params)}):", "    def run():"]
    if not low.lines:
        out.append("        pass")
    elif faultable:
        out.append("        _i = 0")
        out.append("        try:")
        marker = 0
        for line in low.lines:
            if line.faultable and line.pos != marker:
                marker = line.pos
                out.append(f"            _i = {marker}")
            out.append(f"            {line.code}")
        out.append("        except BaseException:")
        out.append("            _sb.fault_index = _i")
        out.append("            raise")
    else:
        for line in low.lines:
            out.append(f"        {line.code}")
    out.append("    return run")
    return "\n".join(out) + "\n"


def _bind(cpu, low: _Lowering, sb: Superblock, name: str, anchor: int):
    """Exec the factory and bind every runtime name through its closure."""
    namespace: Dict[str, object] = {}
    exec(  # noqa: S102 - source is generated above from vetted templates
        compile(sb.source, f"<jit {name}+{anchor}>", "exec"), namespace
    )
    memory = cpu.memory
    return namespace["_factory"](
        sb,
        cpu.registers.gpr,
        cpu.registers,
        WORD_MASK,
        SIGN_BIT,
        TWO64,
        memory.read_word,
        memory.write_word,
        memory.read_byte,
        memory.write_byte,
        *(low.consts[key] for key in sorted(low.consts)),
    )
