"""Decode cache: lower :class:`Function` bodies into pre-bound step closures.

The slow interpreter path re-answers the same questions for every dynamic
instruction: which handler implements the mnemonic, what it costs, what
operand kinds it has, and which addresses they resolve to.  For a given
(CPU, Function) pair almost all of those answers are static, so this
module answers them once per *static* instruction and captures the result
in a closure ("step"); the CPU's fast loop then just walks a step list.

Every step is a 5-tuple ``(execute, cycles, ticks, kind, next_rip)``:

* ``execute()`` — the instruction's semantics, with operand accessors
  (register read/write thunks, pre-computed effective-address components,
  pre-masked immediates) resolved at decode time;
* ``cycles``    — the DBI-scaled cycle charge (exactly what
  ``CPU.charge`` would have added to ``CPU.cycles``);
* ``ticks``     — the matching TSC advance (``int(cycles) or 1``),
  pre-computed so batched accounting lands on the slow path's values;
* ``kind``      — bit flags: :data:`CONTROL` (may redirect rip or stop
  the CPU) and :data:`SYNC` (observable accounting: the loop must flush
  pending cycles before executing — ``rdtsc``, and calls that may reach a
  native helper which ``charge()``\\ s);
* ``next_rip``  — the pre-built ``(function_name, index + 1)`` tuple the
  loop stores into ``registers.rip`` before executing, so faults, calls
  and return-address pushes observe exactly the same program counter as
  the slow path.

Closures bind a specific CPU's register dictionaries, memory, and image,
so a :class:`DecodedFunction` is only valid for the CPU that decoded it,
and only until the loaded image changes — the CPU's cache checks
``LoadedImage.code_generation`` and the function object's identity.

Mnemonics without a specialised compiler fall back to a closure over the
slow-path handler, which keeps semantics authoritative in one place: the
fast path can be *faster* but never *different*.  The differential test
(`tests/machine/test_fast_path_differential.py`) enforces that.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .. import telemetry
from ..errors import IllegalInstruction, InvalidJump
from ..isa.costs import step_cost
from ..isa.instructions import (
    CONTROL_TRANSFER_OPS,
    Function,
    Imm,
    Instruction,
    Label,
    Mem,
    Reg,
    Sym,
)
from .memory import EXIT_ADDRESS

WORD_MASK = (1 << 64) - 1
XMM_MASK = (1 << 128) - 1
SIGN_BIT = 1 << 63
TWO64 = 1 << 64

#: Step kind flags (see module docstring).
STRAIGHT = 0
CONTROL = 1
SYNC = 2

Step = Tuple[Callable[[], None], float, int, int, Tuple[str, int]]


class DecodedFunction:
    """A function lowered to a step list for one specific CPU.

    The trace-JIT tier (:mod:`repro.machine.jit`) hangs its per-function
    state off this object — ``jit_blocks`` maps dispatch indices to
    compiled superblocks (or ``None`` for rejected anchors) and
    ``jit_counts`` holds arrival counts for not-yet-hot anchors — so
    every event that invalidates the decode cache (``code_generation``
    bump, telemetry generation flip, decoder rebind, explicit flush)
    drops compiled superblocks along with the steps they index into.
    """

    __slots__ = ("function", "steps", "jit_blocks", "jit_counts")

    def __init__(self, function: Function, steps: List[Step]) -> None:
        self.function = function
        self.steps = steps
        self.jit_blocks: dict = {}
        self.jit_counts: dict = {}


class FunctionDecoder:
    """Compiles :class:`Function` bodies into step lists bound to one CPU.

    The decoder snapshots the CPU's register file, memory, image and DBI
    multiplier; the CPU rebuilds its decoder (and drops every cached
    :class:`DecodedFunction`) if any of those identities change.
    """

    def __init__(self, cpu, dispatch) -> None:
        self.cpu = cpu
        self.registers = cpu.registers
        self.memory = cpu.memory
        self.image = cpu.image
        self.dbi_multiplier = cpu.dbi_multiplier
        self._dispatch = dispatch
        self._compilers = {
            "nop": self._c_nop,
            "hlt": self._c_hlt,
            "mov": self._c_mov,
            "movb": self._c_movb,
            "movzxb": self._c_movzxb,
            "lea": self._c_lea,
            "push": self._c_push,
            "pop": self._c_pop,
            "add": self._c_add,
            "sub": self._c_sub,
            "xor": self._c_xor,
            "or": self._c_or,
            "and": self._c_and,
            "shl": self._c_shl,
            "shr": self._c_shr,
            "sar": self._c_sar,
            "imul": self._c_imul,
            "inc": self._c_inc,
            "dec": self._c_dec,
            "neg": self._c_neg,
            "not": self._c_not,
            "cmp": self._c_cmp,
            "test": self._c_test,
            "jmp": self._c_jmp,
            "je": self._c_je,
            "jne": self._c_jne,
            "jl": self._c_jl,
            "jle": self._c_jle,
            "jg": self._c_jg,
            "jge": self._c_jge,
            "jb": self._c_jb,
            "jae": self._c_jae,
            "call": self._c_call,
            "ret": self._c_ret,
            "leave": self._c_leave,
        }

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def decode(self, function: Function) -> DecodedFunction:
        """Lower ``function`` into a :class:`DecodedFunction`."""
        dbi = self.dbi_multiplier
        name = function.name
        steps: List[Step] = []
        for index, instruction in enumerate(function.body):
            cycles, ticks = step_cost(instruction, dbi)
            compiled = None
            compiler = self._compilers.get(instruction.op)
            if compiler is not None:
                compiled = compiler(function, index, instruction)
            if compiled is None:
                compiled = self._generic(instruction)
            execute, kind = compiled
            steps.append((execute, cycles, ticks, kind, (name, index + 1)))
        hooks = telemetry.canary_hooks()
        if hooks is not None:
            # Telemetry: wrap only canary group-leader steps, so the fast
            # loop pays nothing on any other step.  The CPU's decode cache
            # watches the telemetry generation, re-decoding these away
            # when telemetry is disabled.
            for index, marker in telemetry.canary_markers(function).items():
                execute, cycles, ticks, kind, next_rip = steps[index]
                steps[index] = (
                    hooks.wrap(execute, marker, name, index),
                    cycles, ticks, kind, next_rip,
                )
        return DecodedFunction(function, steps)

    # ------------------------------------------------------------------
    # fallback: wrap the slow-path handler
    # ------------------------------------------------------------------

    def _generic(self, instruction: Instruction):
        cpu = self.cpu
        op = instruction.op
        handler = self._dispatch.get(op)
        if handler is None:

            def missing() -> None:
                raise IllegalInstruction(f"no semantics for {op!r}")

            return missing, STRAIGHT
        kind = STRAIGHT
        if op in CONTROL_TRANSFER_OPS:
            kind |= CONTROL
        if op in ("rdtsc", "call"):
            # rdtsc observes the TSC; an un-specialised call may reach a
            # native helper that charges cycles.  Both need exact state.
            kind |= SYNC

        def execute() -> None:
            handler(cpu, instruction)

        return execute, kind

    # ------------------------------------------------------------------
    # operand accessor compilation
    # ------------------------------------------------------------------

    def _ea(self, m: Mem) -> Optional[Callable[[], int]]:
        """Compile an effective-address thunk, or ``None`` if not possible."""
        registers = self.registers
        gpr = registers.gpr
        disp, base, index, scale = m.disp, m.base, m.index, m.scale
        if base is not None and base not in gpr:
            return None
        if index is not None and index not in gpr:
            return None
        if m.seg is not None:
            if m.seg != "fs":
                return None  # generic path raises IllegalInstruction at exec
            if base is None and index is None:
                return lambda: (registers.fs_base + disp) & WORD_MASK
            if index is None:
                return lambda: (registers.fs_base + disp + gpr[base]) & WORD_MASK
            if base is None:
                return lambda: (
                    registers.fs_base + disp + gpr[index] * scale
                ) & WORD_MASK
            return lambda: (
                registers.fs_base + disp + gpr[base] + gpr[index] * scale
            ) & WORD_MASK
        if base is not None and index is None:
            if disp == 0:
                return lambda: gpr[base]
            return lambda: (gpr[base] + disp) & WORD_MASK
        if base is not None:
            return lambda: (gpr[base] + gpr[index] * scale + disp) & WORD_MASK
        if index is not None:
            return lambda: (gpr[index] * scale + disp) & WORD_MASK
        address = disp & WORD_MASK
        return lambda: address

    def _read(self, operand, width: int = 8) -> Optional[Callable[[], int]]:
        """Compile a read thunk mirroring ``CPU.read_operand``."""
        registers = self.registers
        if isinstance(operand, Reg):
            name = operand.name
            if name in registers.gpr:
                gpr = registers.gpr
                return lambda: gpr[name]
            xmm = registers.xmm
            return lambda: xmm[name]
        if isinstance(operand, Imm):
            value = operand.value & WORD_MASK
            return lambda: value
        if isinstance(operand, Mem):
            ea = self._ea(operand)
            if ea is None:
                return None
            memory = self.memory
            if width == 8:
                read_word = memory.read_word
                return lambda: read_word(ea())
            if width == 1:
                read_byte = memory.read_byte
                return lambda: read_byte(ea())
            if width == 16:
                read_word = memory.read_word

                def read16() -> int:
                    address = ea()
                    return (read_word(address + 8) << 64) | read_word(address)

                return read16
            return None
        if isinstance(operand, Sym):
            image = self.image
            symbol = operand.name
            try:
                value = image.address_of(symbol)
            except Exception:
                # Unresolved now; defer (and fail) at execution time, like
                # the slow path does.
                return lambda: image.address_of(symbol)
            return lambda: value
        return None

    def _write(self, operand, width: int = 8) -> Optional[Callable[[int], None]]:
        """Compile a write thunk mirroring ``CPU.write_operand``."""
        registers = self.registers
        if isinstance(operand, Reg):
            name = operand.name
            if name in registers.gpr:
                gpr = registers.gpr

                def write_gpr(value: int) -> None:
                    gpr[name] = value & WORD_MASK

                return write_gpr
            xmm = registers.xmm

            def write_xmm(value: int) -> None:
                xmm[name] = value & XMM_MASK

            return write_xmm
        if isinstance(operand, Mem):
            ea = self._ea(operand)
            if ea is None:
                return None
            memory = self.memory
            if width == 8:
                write_word = memory.write_word
                return lambda value: write_word(ea(), value & WORD_MASK)
            if width == 1:
                write_byte = memory.write_byte
                return lambda value: write_byte(ea(), value & 0xFF)
            if width == 16:
                write_word = memory.write_word

                def write16(value: int) -> None:
                    address = ea()
                    write_word(address, value & WORD_MASK)
                    write_word(address + 8, (value >> 64) & WORD_MASK)

                return write16
            return None
        return None

    def _gpr_name(self, operand) -> Optional[str]:
        """The GPR name of a register operand, or ``None``."""
        if isinstance(operand, Reg) and operand.name in self.registers.gpr:
            return operand.name
        return None

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------

    def _c_nop(self, function, index, instruction):
        def execute() -> None:
            pass

        return execute, STRAIGHT

    def _c_hlt(self, function, index, instruction):
        cpu = self.cpu
        gpr = self.registers.gpr

        def execute() -> None:
            cpu.running = False
            cpu.exit_status = gpr["rax"] & 0xFF

        return execute, CONTROL

    def _c_mov(self, function, index, instruction):
        dst, src = instruction.operands
        registers = self.registers
        if isinstance(dst, Reg) and dst.name.startswith("xmm"):
            # Mirrors the slow handler: the destination-xmm case wins and
            # takes the *full* source register value (128-bit for xmm src).
            read = self._read(src)
            write = self._write(dst)
            if read is None or write is None:
                return None

            def execute_to_xmm() -> None:
                write(read())

            return execute_to_xmm, STRAIGHT
        if isinstance(src, Reg) and src.name.startswith("xmm"):
            xmm = registers.xmm
            source = src.name
            read = lambda: xmm[source] & WORD_MASK  # noqa: E731
        else:
            read = self._read(src)
        write = self._write(dst)
        if read is None or write is None:
            return None
        # Fuse the hottest shapes: gpr <- imm/gpr/mem and mem <- gpr/imm.
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is not None:
            gpr = registers.gpr
            if isinstance(src, Imm):
                value = src.value & WORD_MASK

                def execute() -> None:
                    gpr[dst_gpr] = value

                return execute, STRAIGHT
            src_gpr = self._gpr_name(src)
            if src_gpr is not None:

                def execute() -> None:
                    gpr[dst_gpr] = gpr[src_gpr]

                return execute, STRAIGHT

            def execute() -> None:
                gpr[dst_gpr] = read()

            return execute, STRAIGHT

        def execute() -> None:
            write(read())

        return execute, STRAIGHT

    def _c_movb(self, function, index, instruction):
        dst, src = instruction.operands
        read = self._read(src, width=1)
        if read is None:
            return None
        dst_gpr = self._gpr_name(dst)
        if dst_gpr is not None:
            gpr = self.registers.gpr

            def execute() -> None:
                gpr[dst_gpr] = (gpr[dst_gpr] & ~0xFF) | (read() & 0xFF)

            return execute, STRAIGHT
        if isinstance(dst, Reg):
            return None  # xmm byte destination: defer to the slow handler
        write = self._write(dst, width=1)
        if write is None:
            return None

        def execute() -> None:
            write(read() & 0xFF)

        return execute, STRAIGHT

    def _c_movzxb(self, function, index, instruction):
        dst, src = instruction.operands
        read = self._read(src, width=1)
        write = self._write(dst)
        if read is None or write is None:
            return None

        def execute() -> None:
            write(read() & 0xFF)

        return execute, STRAIGHT

    def _c_lea(self, function, index, instruction):
        dst, src = instruction.operands
        write = self._write(dst)
        if write is None:
            return None
        if isinstance(src, Mem):
            ea = self._ea(src)
            if ea is None:
                return None
            dst_gpr = self._gpr_name(dst)
            if dst_gpr is not None:
                gpr = self.registers.gpr

                def execute() -> None:
                    gpr[dst_gpr] = ea()

                return execute, STRAIGHT

            def execute() -> None:
                write(ea())

            return execute, STRAIGHT
        if isinstance(src, Sym):
            read = self._read(src)
            if read is None:
                return None

            def execute() -> None:
                write(read())

            return execute, STRAIGHT
        return None  # slow path raises IllegalInstruction

    # ------------------------------------------------------------------
    # stack
    # ------------------------------------------------------------------

    def _c_push(self, function, index, instruction):
        read = self._read(instruction.operands[0])
        if read is None:
            return None
        gpr = self.registers.gpr
        write_word = self.memory.write_word

        def execute() -> None:
            rsp = (gpr["rsp"] - 8) & WORD_MASK
            gpr["rsp"] = rsp
            write_word(rsp, read())

        return execute, STRAIGHT

    def _c_pop(self, function, index, instruction):
        target = instruction.operands[0]
        gpr = self.registers.gpr
        read_word = self.memory.read_word
        dst_gpr = self._gpr_name(target)
        if dst_gpr is not None:

            def execute() -> None:
                rsp = gpr["rsp"]
                value = read_word(rsp)
                gpr["rsp"] = (rsp + 8) & WORD_MASK
                gpr[dst_gpr] = value

            return execute, STRAIGHT
        write = self._write(target)
        if write is None:
            return None

        def execute() -> None:
            rsp = gpr["rsp"]
            value = read_word(rsp)
            gpr["rsp"] = (rsp + 8) & WORD_MASK
            write(value)

        return execute, STRAIGHT

    def _c_leave(self, function, index, instruction):
        gpr = self.registers.gpr
        read_word = self.memory.read_word

        def execute() -> None:
            rbp = gpr["rbp"]
            gpr["rbp"] = read_word(rbp)
            gpr["rsp"] = (rbp + 8) & WORD_MASK

        return execute, STRAIGHT

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------

    def _c_add(self, function, index, instruction):
        dst, src = instruction.operands
        dst_gpr = self._gpr_name(dst)
        read = self._read(src)
        if dst_gpr is None or read is None:
            return None
        registers = self.registers
        gpr = registers.gpr
        if isinstance(src, Imm):
            value = src.value & WORD_MASK

            def execute() -> None:
                result = gpr[dst_gpr] + value
                registers.cf = result > WORD_MASK
                result &= WORD_MASK
                gpr[dst_gpr] = result
                registers.zf = result == 0
                registers.sf = result >= SIGN_BIT

            return execute, STRAIGHT

        def execute() -> None:
            result = gpr[dst_gpr] + read()
            registers.cf = result > WORD_MASK
            result &= WORD_MASK
            gpr[dst_gpr] = result
            registers.zf = result == 0
            registers.sf = result >= SIGN_BIT

        return execute, STRAIGHT

    def _c_sub(self, function, index, instruction):
        dst, src = instruction.operands
        dst_gpr = self._gpr_name(dst)
        read = self._read(src)
        if dst_gpr is None or read is None:
            return None
        registers = self.registers
        gpr = registers.gpr

        def execute() -> None:
            a = gpr[dst_gpr]
            b = read()
            registers.cf = a < b
            result = (a - b) & WORD_MASK
            gpr[dst_gpr] = result
            registers.zf = result == 0
            registers.sf = result >= SIGN_BIT

        return execute, STRAIGHT

    def _c_xor(self, function, index, instruction):
        dst, src = instruction.operands
        dst_gpr = self._gpr_name(dst)
        read = self._read(src)
        if dst_gpr is None or read is None:
            return None
        registers = self.registers
        gpr = registers.gpr

        def execute() -> None:
            result = gpr[dst_gpr] ^ read()
            gpr[dst_gpr] = result
            registers.zf = result == 0
            registers.sf = result >= SIGN_BIT
            registers.cf = False

        return execute, STRAIGHT

    def _alu(self, instruction, combine):
        """Shared compiler for the rarer two-operand ALU ops."""
        dst, src = instruction.operands
        dst_gpr = self._gpr_name(dst)
        read = self._read(src)
        if dst_gpr is None or read is None:
            return None
        registers = self.registers
        gpr = registers.gpr

        def execute() -> None:
            result = combine(gpr[dst_gpr], read()) & WORD_MASK
            gpr[dst_gpr] = result
            registers.zf = result == 0
            registers.sf = result >= SIGN_BIT

        return execute, STRAIGHT

    def _c_or(self, function, index, instruction):
        return self._alu(instruction, lambda a, b: a | b)

    def _c_and(self, function, index, instruction):
        return self._alu(instruction, lambda a, b: a & b)

    def _c_shl(self, function, index, instruction):
        return self._alu(instruction, lambda a, b: a << (b & 63))

    def _c_shr(self, function, index, instruction):
        return self._alu(instruction, lambda a, b: a >> (b & 63))

    def _c_sar(self, function, index, instruction):
        return self._alu(
            instruction,
            lambda a, b: ((a - TWO64 if a >= SIGN_BIT else a) >> (b & 63)) & WORD_MASK,
        )

    def _c_imul(self, function, index, instruction):
        return self._alu(
            instruction,
            lambda a, b: (a - TWO64 if a >= SIGN_BIT else a)
            * (b - TWO64 if b >= SIGN_BIT else b),
        )

    def _unary(self, instruction, transform, *, set_flags: bool = True):
        target = instruction.operands[0]
        dst_gpr = self._gpr_name(target)
        if dst_gpr is None:
            return None
        registers = self.registers
        gpr = registers.gpr
        if set_flags:

            def execute() -> None:
                result = transform(gpr[dst_gpr]) & WORD_MASK
                gpr[dst_gpr] = result
                registers.zf = result == 0
                registers.sf = result >= SIGN_BIT

        else:

            def execute() -> None:
                gpr[dst_gpr] = transform(gpr[dst_gpr]) & WORD_MASK

        return execute, STRAIGHT

    def _c_inc(self, function, index, instruction):
        return self._unary(instruction, lambda a: a + 1)

    def _c_dec(self, function, index, instruction):
        return self._unary(instruction, lambda a: a - 1)

    def _c_neg(self, function, index, instruction):
        return self._unary(instruction, lambda a: -a)

    def _c_not(self, function, index, instruction):
        return self._unary(instruction, lambda a: ~a, set_flags=False)

    # ------------------------------------------------------------------
    # compare / test
    # ------------------------------------------------------------------

    def _c_cmp(self, function, index, instruction):
        a_op, b_op = instruction.operands
        registers = self.registers
        gpr = registers.gpr
        a_gpr = self._gpr_name(a_op)
        if a_gpr is not None and isinstance(b_op, Imm):
            b = b_op.value & WORD_MASK
            b_signed = b - TWO64 if b >= SIGN_BIT else b

            def execute() -> None:
                a = gpr[a_gpr]
                registers.zf = a == b
                registers.sf = (a - TWO64 if a >= SIGN_BIT else a) < b_signed
                registers.cf = a < b

            return execute, STRAIGHT
        read_a = self._read(a_op)
        read_b = self._read(b_op)
        if read_a is None or read_b is None:
            return None

        def execute() -> None:
            a = read_a()
            b = read_b()
            registers.zf = a == b
            registers.sf = (a - TWO64 if a >= SIGN_BIT else a) < (
                b - TWO64 if b >= SIGN_BIT else b
            )
            registers.cf = a < b

        return execute, STRAIGHT

    def _c_test(self, function, index, instruction):
        a_op, b_op = instruction.operands
        read_a = self._read(a_op)
        read_b = self._read(b_op)
        if read_a is None or read_b is None:
            return None
        registers = self.registers

        def execute() -> None:
            result = read_a() & read_b()
            registers.zf = result == 0
            registers.sf = result >= SIGN_BIT
            registers.cf = False

        return execute, STRAIGHT

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------

    def _label_rip(self, function: Function, label: Label):
        """Resolve a label to its rip tuple, or a raising closure."""
        target = function.labels.get(label.name)
        if target is None:

            def missing() -> None:
                raise InvalidJump(f"{function.name}: no label {label.name}")

            return None, missing
        return (function.name, target), None

    def _c_jmp(self, function, index, instruction):
        target = instruction.operands[0]
        registers = self.registers
        if isinstance(target, Label):
            rip, missing = self._label_rip(function, target)
            if missing is not None:
                return missing, CONTROL

            def execute() -> None:
                registers.rip = rip

            return execute, CONTROL
        if isinstance(target, Sym):
            callee = self.image.function(target.name)
            if callee is None:
                return None  # slow path raises InvalidJump at execution
            cpu = self.cpu
            entry_rip = (callee.name, 0)

            def execute() -> None:
                cpu._current = callee
                registers.rip = entry_rip

            return execute, CONTROL
        return None  # indirect jmp: generic handler resolves dynamically

    def _conditional(self, function, instruction, condition):
        """Build a conditional-jump step from a flag-reading closure."""
        target = instruction.operands[0]
        if not isinstance(target, Label):
            return None  # slow path raises InvalidJump when taken
        rip, missing = self._label_rip(function, target)
        registers = self.registers
        if missing is not None:

            def execute_missing() -> None:
                if condition():
                    missing()

            return execute_missing, CONTROL

        def execute() -> None:
            if condition():
                registers.rip = rip

        return execute, CONTROL

    def _c_je(self, function, index, instruction):
        registers = self.registers
        return self._conditional(function, instruction, lambda: registers.zf)

    def _c_jne(self, function, index, instruction):
        registers = self.registers
        return self._conditional(function, instruction, lambda: not registers.zf)

    def _c_jl(self, function, index, instruction):
        registers = self.registers
        return self._conditional(function, instruction, lambda: registers.sf)

    def _c_jle(self, function, index, instruction):
        registers = self.registers
        return self._conditional(
            function, instruction, lambda: registers.sf or registers.zf
        )

    def _c_jg(self, function, index, instruction):
        registers = self.registers
        return self._conditional(
            function, instruction, lambda: not (registers.sf or registers.zf)
        )

    def _c_jge(self, function, index, instruction):
        registers = self.registers
        return self._conditional(function, instruction, lambda: not registers.sf)

    def _c_jb(self, function, index, instruction):
        registers = self.registers
        return self._conditional(function, instruction, lambda: registers.cf)

    def _c_jae(self, function, index, instruction):
        registers = self.registers
        return self._conditional(function, instruction, lambda: not registers.cf)

    def _c_call(self, function, index, instruction):
        target = instruction.operands[0]
        if not isinstance(target, Sym):
            return None  # indirect call: generic handler resolves dynamically
        callee = self.image.function(target.name)
        if callee is None:
            # Native helper, or a symbol loaded later: resolve at runtime
            # through _call_symbol (which also charges native costs, hence
            # SYNC so accounting is exact when the handler observes it).
            cpu = self.cpu
            symbol = target.name

            def execute_native() -> None:
                cpu._call_symbol(symbol)

            return execute_native, CONTROL | SYNC
        cpu = self.cpu
        registers = self.registers
        gpr = registers.gpr
        write_word = self.memory.write_word
        return_address = self.image.address_of(function.name, index + 1)
        entry_rip = (callee.name, 0)

        def execute() -> None:
            rsp = (gpr["rsp"] - 8) & WORD_MASK
            gpr["rsp"] = rsp
            write_word(rsp, return_address)
            cpu._current = callee
            registers.rip = entry_rip

        return execute, CONTROL

    def _c_ret(self, function, index, instruction):
        cpu = self.cpu
        registers = self.registers
        gpr = registers.gpr
        read_word = self.memory.read_word
        resolve = self.image.resolve

        def execute() -> None:
            rsp = gpr["rsp"]
            address = read_word(rsp)
            gpr["rsp"] = (rsp + 8) & WORD_MASK
            if address == EXIT_ADDRESS:
                cpu.running = False
                cpu.exit_status = gpr["rax"] & 0xFF
                return
            callee, target = resolve(address)
            cpu._current = callee
            registers.rip = (callee.name, target)

        return execute, CONTROL
