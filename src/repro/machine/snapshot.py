"""Versioned, deterministic machine images: snapshot/restore + warm spawn.

Two layers share one content-addressed container format:

* **Process snapshots** — :func:`snapshot_process` serializes a quiescent
  process's complete architectural state (registers, CPU accounting,
  devices, entropy stream, kernel bookkeeping, and every memory page)
  into bytes; :func:`restore_process` rebuilds a process that is
  bit-identical per :func:`repro.machine.debug.architectural_snapshot`,
  including across a subsequent fork/re-randomization boundary (the
  kernel's entropy stream and wall-TSC epoch are part of the image).
* **Spawn images** — :func:`prepare_spawn_image` captures the machine
  state right after ``load()`` and *before* any seed-dependent draw, so
  one image serves every seed: :meth:`repro.kernel.kernel.Kernel.spawn`
  can clone the frozen memory (COW, O(1)) and reuse the laid-out code
  instead of re-laying-out the binary per spawn.  This is what the
  campaign workers boot from (:mod:`repro.parallel.snapcache`).

Image format (version :data:`SNAPSHOT_VERSION`)::

    PSSPSNAP <version> <kind>\\n
    <header-length-in-bytes>\\n
    <canonical JSON header>\\n
    <page blob>

The header is ``json.dumps(..., sort_keys=True)`` — deterministic across
CPython 3.10–3.12 — and lists unique pages as ``[sha256, length]`` pairs
in digest order; the blob concatenates each unique page exactly once in
that order.  Content addressing means the hundreds of zero pages in a
fresh address space serialize once, and two segments sharing COW pages
share them in the image too.  Floats are stored as ``float.hex()``
strings so cycle accounting round-trips bit-exactly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from ..binfmt import serialize
from ..binfmt.loader import LoadedImage, load
from ..errors import SnapshotError
from .memory import CODE_BASE, Memory, Segment

#: Bump on any incompatible change to the header layout or page packing.
SNAPSHOT_VERSION = 1

_MAGIC = b"PSSPSNAP"

#: Process states an image can be taken in (a running CPU holds live
#: host-side frames; a crashed process is gone for good).
_QUIESCENT = ("ready", "exited")


# ---------------------------------------------------------------------------
# container packing
# ---------------------------------------------------------------------------

def _pack(kind: str, header: Dict[str, object], pages: Dict[str, bytes]) -> bytes:
    document = dict(header)
    document["version"] = SNAPSHOT_VERSION
    document["kind"] = kind
    ordered = sorted(pages)
    document["pages"] = [[digest, len(pages[digest])] for digest in ordered]
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    prefix = b"%s %d %s\n%d\n" % (
        _MAGIC, SNAPSHOT_VERSION, kind.encode("ascii"), len(body)
    )
    blob = b"".join(pages[digest] for digest in ordered)
    return prefix + body + b"\n" + blob


def _unpack(data: bytes, kind: str) -> Tuple[Dict[str, object], Dict[str, bytes]]:
    try:
        first_end = data.index(b"\n")
        magic, version, found_kind = data[:first_end].split(b" ")
        second_end = data.index(b"\n", first_end + 1)
        body_length = int(data[first_end + 1 : second_end])
    except ValueError:
        raise SnapshotError("not a machine image (bad container framing)") from None
    if magic != _MAGIC:
        raise SnapshotError(f"bad image magic {magic!r}")
    if int(version) != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported image version {int(version)} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if found_kind.decode("ascii") != kind:
        raise SnapshotError(
            f"image kind {found_kind.decode('ascii')!r} is not {kind!r}"
        )
    body_start = second_end + 1
    try:
        header = json.loads(
            data[body_start : body_start + body_length].decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise SnapshotError("truncated or corrupt image header") from None
    cursor = body_start + body_length + 1
    pages: Dict[str, bytes] = {}
    for digest, length in header["pages"]:
        page = data[cursor : cursor + length]
        if len(page) != length:
            raise SnapshotError("truncated image: page blob too short")
        if hashlib.sha256(page).hexdigest() != digest:
            raise SnapshotError(f"corrupt image: page {digest[:12]} digest mismatch")
        pages[digest] = page
        cursor += length
    return header, pages


# ---------------------------------------------------------------------------
# memory <-> page table
# ---------------------------------------------------------------------------

def _collect_segments(
    memory: Memory, pages: Dict[str, bytes]
) -> List[Dict[str, object]]:
    """Freeze ``memory`` and describe its segments against a shared
    content-addressed page store (pages serialize once per content)."""
    memory.freeze()
    segments = []
    for segment in memory.segments():
        digests = []
        for index in range(segment.page_count):
            page = bytes(segment.page(index))
            digest = hashlib.sha256(page).hexdigest()
            pages.setdefault(digest, page)
            digests.append(digest)
        segments.append({
            "name": segment.name,
            "base": segment.base,
            "size": segment.size,
            "readable": segment.readable,
            "writable": segment.writable,
            "executable": segment.executable,
            "pages": digests,
        })
    return segments


def _restore_memory(
    segments: List[Dict[str, object]], pages: Dict[str, bytes]
) -> Memory:
    """Rebuild a memory whose pages alias the image's frozen bytes."""
    memory = Memory()
    for desc in segments:
        segment = Segment.__new__(Segment)
        segment.name = desc["name"]
        segment.base = desc["base"]
        segment.size = desc["size"]
        segment.readable = desc["readable"]
        segment.writable = desc["writable"]
        segment.executable = desc["executable"]
        segment._source = tuple(pages[digest] for digest in desc["pages"])
        segment._private = {}
        memory.map_segment(segment)
    return memory


def _rebuild_image(binary, preloads, segments, code_base: int) -> LoadedImage:
    """Re-run the deterministic loader layout to regain a LoadedImage.

    ``load()`` writes rodata into the data segment as a side effect; the
    restored memory already holds those bytes, so the layout runs against
    a scratch memory with the data segment at the recorded base (the
    cursor walks from the base, making every symbol address come out
    identical to the original load).
    """
    data = next(desc for desc in segments if desc["name"] == "data")
    scratch = Memory()
    scratch.map_segment(Segment("data", data["base"], data["size"]))
    return load(binary, scratch, preloads=preloads, code_base=code_base)


# ---------------------------------------------------------------------------
# scalar state helpers
# ---------------------------------------------------------------------------

def _entropy_state(entropy) -> Dict[str, object]:
    version, internal, gauss = entropy._rng.getstate()
    return {
        "seed": entropy.seed,
        "draws": entropy.draws,
        "state": [
            version,
            list(internal),
            None if gauss is None else float(gauss).hex(),
        ],
    }


def _restore_entropy(doc: Dict[str, object]):
    from ..crypto.random import EntropySource

    entropy = EntropySource(0)
    entropy.seed = doc["seed"]
    entropy.draws = doc["draws"]
    version, internal, gauss = doc["state"]
    entropy._rng.setstate((
        version,
        tuple(internal),
        None if gauss is None else float.fromhex(gauss),
    ))
    return entropy


def _registers_state(registers) -> Dict[str, object]:
    return {
        "gpr": dict(registers.gpr),
        "xmm": dict(registers.xmm),
        "fs_base": registers.fs_base,
        "rip": list(registers.rip),
        "flags": [registers.zf, registers.sf, registers.cf],
    }


def _apply_registers(registers, doc: Dict[str, object]) -> None:
    registers.gpr.update(doc["gpr"])
    registers.xmm.update(doc["xmm"])
    registers.fs_base = doc["fs_base"]
    registers.rip = tuple(doc["rip"])
    registers.zf, registers.sf, registers.cf = doc["flags"]


def _jmp_bufs_state(process) -> Dict[str, object]:
    out = {}
    for buf, state in getattr(process, "jmp_bufs", {}).items():
        out[str(buf)] = {
            "rip": list(state["rip"]),
            "rsp": state["rsp"],
            "rbp": state["rbp"],
            "stack_span": bytes(state["stack_span"]).hex(),
            "callee": dict(state["callee"]),
        }
    return out


def _apply_jmp_bufs(process, doc: Dict[str, object]) -> None:
    if not doc:
        return
    process.jmp_bufs = {
        int(buf): {
            "rip": tuple(state["rip"]),
            "rsp": state["rsp"],
            "rbp": state["rbp"],
            "stack_span": bytes.fromhex(state["stack_span"]),
            "callee": dict(state["callee"]),
        }
        for buf, state in doc.items()
    }


# ---------------------------------------------------------------------------
# process snapshot / restore
# ---------------------------------------------------------------------------

def snapshot_process(process, *, include_kernel: bool = True) -> bytes:
    """Serialize a quiescent process into a deterministic image.

    The image embeds the binary and preload objects (via
    :mod:`repro.binfmt.serialize`), every memory page (content-addressed),
    the full register/CPU/device state, the process entropy stream, and —
    with ``include_kernel`` — the owning kernel's entropy/pid/TSC
    bookkeeping, so forks performed after a restore replay bit-identically
    to forks of the original.
    """
    if process.threads:
        raise SnapshotError(
            f"pid {process.pid} has live threads; thread contexts share the "
            "address space and cannot be captured in a process image"
        )
    if process.state not in _QUIESCENT:
        raise SnapshotError(
            f"pid {process.pid} is {process.state}; only ready/exited "
            "processes can be snapshotted"
        )
    binary = getattr(process, "binary", None)
    if binary is None:
        raise SnapshotError(
            f"pid {process.pid} has no binary (not spawned by a kernel)"
        )
    preloads = list(getattr(process, "preloads", ()))
    cpu = process.cpu
    pages: Dict[str, bytes] = {}
    header: Dict[str, object] = {
        "name": process.name,
        "pid": process.pid,
        "ppid": process.ppid,
        "scheme": getattr(binary, "protection", "") or "none",
        "entry": process.entry,
        "state": process.state,
        "exit_status": process.exit_status,
        "binary": serialize.dumps(binary).decode("utf-8"),
        "preloads": [serialize.dumps(p).decode("utf-8") for p in preloads],
        "code_base": process.image.code_base,
        "segments": _collect_segments(process.memory, pages),
        "registers": _registers_state(process.registers),
        "cpu": {
            "cycles": float(cpu.cycles).hex(),
            "instructions": cpu.instructions_executed,
            "cycle_limit": cpu.cycle_limit,
            "dbi_multiplier": float(cpu.dbi_multiplier).hex(),
            "fast": cpu.fast,
            "tsc": cpu.tsc.value,
            "rdrand": {
                "draws": cpu.rdrand.draws,
                "failure_rate": float(cpu.rdrand.failure_rate).hex(),
                "failure_streak": cpu.rdrand.failure_streak,
                "recovered_streaks": cpu.rdrand.recovered_streaks,
                "quarantined": cpu.rdrand.quarantined,
            },
        },
        "entropy": _entropy_state(process.entropy),
        "brk": process.brk,
        "stdin": bytes(process.stdin).hex(),
        "stdout": bytes(process.stdout).hex(),
        "jmp_bufs": _jmp_bufs_state(process),
    }
    if include_kernel:
        kernel = process.kernel
        header["kernel"] = {
            "entropy": _entropy_state(kernel.entropy),
            "next_pid": kernel._next_pid,
            "fork_count": kernel.fork_count,
            "wall_tsc": kernel._wall_tsc,
        }
    return _pack("process", header, pages)


def restore_process(
    data: bytes,
    *,
    kernel=None,
    natives: Optional[dict] = None,
    adopt_kernel_state: Optional[bool] = None,
):
    """Rebuild a process from :func:`snapshot_process` bytes.

    ``kernel`` receives the process (a fresh one is created when omitted).
    ``adopt_kernel_state`` replays the image's kernel bookkeeping
    (entropy stream, next pid, fork counter, wall-TSC epoch) onto that
    kernel — the default when the kernel was created here, opt-in when
    restoring into a caller's kernel — which is what makes post-restore
    forks bit-identical to post-snapshot forks of the original.
    """
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process

    header, pages = _unpack(data, "process")
    if adopt_kernel_state is None:
        adopt_kernel_state = kernel is None
    if kernel is None:
        kernel = Kernel(0)
    kernel_doc = header.get("kernel")
    if adopt_kernel_state:
        if kernel_doc is None:
            raise SnapshotError(
                "image carries no kernel state (snapshot with include_kernel)"
            )
        kernel.entropy = _restore_entropy(kernel_doc["entropy"])
        kernel._next_pid = kernel_doc["next_pid"]
        kernel.fork_count = kernel_doc["fork_count"]
        kernel._wall_tsc = kernel_doc["wall_tsc"]

    binary = serialize.loads(header["binary"].encode("utf-8"))
    preloads = [serialize.loads(p.encode("utf-8")) for p in header["preloads"]]
    memory = _restore_memory(header["segments"], pages)
    image = _rebuild_image(binary, preloads, header["segments"], header["code_base"])

    if natives is None:
        from ..libc.builtins import build_natives

        natives = build_natives()

    cpu_doc = header["cpu"]
    if adopt_kernel_state:
        # Resuming the image's kernel timeline: the process keeps its
        # original pid and the adopted next_pid stays untouched, so a
        # re-snapshot is bit-identical and later spawns replay exactly.
        pid = header["pid"]
    else:
        # Grafting into a live kernel: allocate a fresh pid (the
        # original may already be taken).
        pid = kernel._next_pid
        kernel._next_pid += 1
    process = Process(
        kernel,
        pid,
        header["name"],
        memory,
        image,
        dict(natives),
        _restore_entropy(header["entropy"]),
        ppid=header["ppid"],
        dbi_multiplier=float.fromhex(cpu_doc["dbi_multiplier"]),
        cycle_limit=cpu_doc["cycle_limit"],
        tsc_base=cpu_doc["tsc"],
        fast=cpu_doc["fast"],
        fault_plane=kernel.fault_plane,
    )
    process.entry = header["entry"]
    process.binary = binary
    process.preloads = preloads
    process.state = header["state"]
    process.exit_status = header["exit_status"]
    process.brk = header["brk"]
    process.stdin = bytearray(bytes.fromhex(header["stdin"]))
    process.stdout = bytearray(bytes.fromhex(header["stdout"]))
    _apply_registers(process.registers, header["registers"])
    cpu = process.cpu
    cpu.cycles = float.fromhex(cpu_doc["cycles"])
    cpu.instructions_executed = cpu_doc["instructions"]
    rdrand_doc = cpu_doc["rdrand"]
    cpu.rdrand.draws = rdrand_doc["draws"]
    cpu.rdrand.failure_rate = float.fromhex(rdrand_doc["failure_rate"])
    cpu.rdrand.failure_streak = rdrand_doc["failure_streak"]
    cpu.rdrand.recovered_streaks = rdrand_doc["recovered_streaks"]
    cpu.rdrand.quarantined = rdrand_doc["quarantined"]
    _apply_jmp_bufs(process, header["jmp_bufs"])
    kernel.processes[pid] = process

    _reattach_runtime(process, header["scheme"])
    return process


def _reattach_runtime(process, scheme: str) -> None:
    """Re-register the scheme runtime's fork/thread hooks.

    Hooks are live callables and cannot be serialized; every runtime
    exposes ``reattach`` — hook registration *without* the install-time
    entropy draws or TLS writes, whose effects are already in the image.
    """
    from ..core.deploy import get_scheme

    runtime = get_scheme(scheme or "none").make_runtime()
    if runtime is not None:
        runtime.reattach(process)


# ---------------------------------------------------------------------------
# spawn images (seed-free warm boot)
# ---------------------------------------------------------------------------

class SpawnImage:
    """A machine image captured after ``load()``, before any entropy draw.

    Everything in it is seed-independent, so one image serves every
    kernel seed: spawning from it clones the frozen memory (COW) and
    shallow-clones the code layout, then proceeds through the exact same
    canary draw and constructor sequence as a cold spawn — bit-identical
    by construction.
    """

    __slots__ = ("binary", "preloads", "memory", "image", "code_base", "stack_size")

    def __init__(self, binary, preloads, memory, image, code_base, stack_size):
        self.binary = binary
        self.preloads = preloads
        self.memory = memory
        self.image = image
        self.code_base = code_base
        self.stack_size = stack_size

    def instantiate(self) -> Tuple[Memory, LoadedImage]:
        """A private (COW) memory and code layout for one new process."""
        return self.memory.clone(eager=False), self.image.clone()


def prepare_spawn_image(
    binary,
    *,
    preloads=(),
    stack_size: int = 0x40000,
    code_base: int = CODE_BASE,
) -> SpawnImage:
    """Lay ``binary`` out once and freeze the result for reuse."""
    from ..machine.tls import TLS_MIN_SIZE
    from .memory import standard_memory

    preloads = list(preloads)
    memory = standard_memory(
        stack_size=stack_size, tls_size=max(TLS_MIN_SIZE, 0x1000)
    )
    image = load(binary, memory, preloads=preloads, code_base=code_base)
    memory.freeze()
    return SpawnImage(binary, preloads, memory, image, code_base, stack_size)


def dump_spawn_image(image: SpawnImage) -> bytes:
    """Serialize a spawn image (for the cross-run warm-image cache)."""
    pages: Dict[str, bytes] = {}
    header = {
        "binary": serialize.dumps(image.binary).decode("utf-8"),
        "preloads": [serialize.dumps(p).decode("utf-8") for p in image.preloads],
        "code_base": image.code_base,
        "stack_size": image.stack_size,
        "segments": _collect_segments(image.memory, pages),
    }
    return _pack("spawn-image", header, pages)


def load_spawn_image(data: bytes) -> SpawnImage:
    """Deserialize :func:`dump_spawn_image` bytes."""
    header, pages = _unpack(data, "spawn-image")
    binary = serialize.loads(header["binary"].encode("utf-8"))
    preloads = [serialize.loads(p.encode("utf-8")) for p in header["preloads"]]
    memory = _restore_memory(header["segments"], pages)
    image = _rebuild_image(
        binary, preloads, header["segments"], header["code_base"]
    )
    return SpawnImage(
        binary, preloads, memory, image, header["code_base"],
        header["stack_size"],
    )


def verify_roundtrip(process) -> List[str]:
    """Snapshot → restore → compare; returns divergence names (ideally [])."""
    from .debug import architectural_snapshot, snapshot_divergences

    image = snapshot_process(process)
    restored = restore_process(image)
    return snapshot_divergences(
        architectural_snapshot(process), architectural_snapshot(restored)
    )
