"""Thread Local Storage layout.

The paper keeps glibc's canary at ``%fs:0x28`` untouched and parks the
P-SSP *shadow canary* pair at ``%fs:0x2a8 .. %fs:0x2b7`` (§V-A).  We mirror
those offsets exactly, and reserve further private slots for the baseline
schemes that need per-thread bookkeeping:

========  =====================================================
offset    contents
========  =====================================================
0x28      TLS canary ``C`` (SSP and every scheme)
0x2a8     P-SSP shadow canary ``C0``
0x2b0     P-SSP shadow canary ``C1``
0x2c0     DynaGuard: canary-address-buffer (CAB) base pointer
0x2c8     DynaGuard: CAB current index
0x2d0     DCR: head of the on-stack canary linked list
0x2d8     global-buffer variant (Fig. 6): side-buffer base
0x2e0     global-buffer variant: side-buffer count
========  =====================================================
"""

from __future__ import annotations

from .memory import Memory

CANARY_OFFSET = 0x28
SHADOW_C0_OFFSET = 0x2A8
SHADOW_C1_OFFSET = 0x2B0
DYNAGUARD_CAB_BASE_OFFSET = 0x2C0
DYNAGUARD_CAB_INDEX_OFFSET = 0x2C8
DCR_LIST_HEAD_OFFSET = 0x2D0
GLOBAL_BUFFER_BASE_OFFSET = 0x2D8
GLOBAL_BUFFER_COUNT_OFFSET = 0x2E0

#: Minimum TLS segment size covering every slot above.
TLS_MIN_SIZE = 0x300


class TlsView:
    """Typed accessor over one thread's TLS block.

    Wraps ``(memory, fs_base)`` so schemes, the preload library, and tests
    all manipulate TLS through the same named fields instead of raw
    offsets.
    """

    def __init__(self, memory: Memory, fs_base: int) -> None:
        self.memory = memory
        self.fs_base = fs_base

    def _get(self, offset: int) -> int:
        return self.memory.read_word(self.fs_base + offset)

    def _set(self, offset: int, value: int) -> None:
        self.memory.write_word(self.fs_base + offset, value)

    # -- the classic SSP canary -------------------------------------------

    @property
    def canary(self) -> int:
        """The TLS canary ``C`` at ``fs:0x28``."""
        return self._get(CANARY_OFFSET)

    @canary.setter
    def canary(self, value: int) -> None:
        self._set(CANARY_OFFSET, value)

    # -- P-SSP shadow canary pair -------------------------------------------

    @property
    def shadow_c0(self) -> int:
        """P-SSP shadow canary ``C0`` at ``fs:0x2a8``."""
        return self._get(SHADOW_C0_OFFSET)

    @shadow_c0.setter
    def shadow_c0(self, value: int) -> None:
        self._set(SHADOW_C0_OFFSET, value)

    @property
    def shadow_c1(self) -> int:
        """P-SSP shadow canary ``C1`` at ``fs:0x2b0``."""
        return self._get(SHADOW_C1_OFFSET)

    @shadow_c1.setter
    def shadow_c1(self, value: int) -> None:
        self._set(SHADOW_C1_OFFSET, value)

    # -- DynaGuard bookkeeping ----------------------------------------------

    @property
    def cab_base(self) -> int:
        """DynaGuard canary-address-buffer base pointer."""
        return self._get(DYNAGUARD_CAB_BASE_OFFSET)

    @cab_base.setter
    def cab_base(self, value: int) -> None:
        self._set(DYNAGUARD_CAB_BASE_OFFSET, value)

    @property
    def cab_index(self) -> int:
        """Number of live entries in the DynaGuard CAB."""
        return self._get(DYNAGUARD_CAB_INDEX_OFFSET)

    @cab_index.setter
    def cab_index(self, value: int) -> None:
        self._set(DYNAGUARD_CAB_INDEX_OFFSET, value)

    # -- DCR bookkeeping ------------------------------------------------------

    @property
    def dcr_head(self) -> int:
        """Address of the newest on-stack canary in DCR's linked list."""
        return self._get(DCR_LIST_HEAD_OFFSET)

    @dcr_head.setter
    def dcr_head(self, value: int) -> None:
        self._set(DCR_LIST_HEAD_OFFSET, value)

    # -- global-buffer variant (paper Fig. 6) --------------------------------

    @property
    def global_buffer_base(self) -> int:
        """Base of the per-thread side buffer holding the C1 halves."""
        return self._get(GLOBAL_BUFFER_BASE_OFFSET)

    @global_buffer_base.setter
    def global_buffer_base(self, value: int) -> None:
        self._set(GLOBAL_BUFFER_BASE_OFFSET, value)

    @property
    def global_buffer_count(self) -> int:
        """Number of live entries in the side buffer."""
        return self._get(GLOBAL_BUFFER_COUNT_OFFSET)

    @global_buffer_count.setter
    def global_buffer_count(self, value: int) -> None:
        self._set(GLOBAL_BUFFER_COUNT_OFFSET, value)
