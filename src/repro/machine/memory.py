"""Byte-addressable segmented process memory.

A process image maps a handful of segments (code, data, heap, stack, TLS)
into a flat 64-bit address space.  Reads and writes honour segment
permissions; touching an unmapped address raises
:class:`~repro.errors.SegmentationFault`, which the kernel converts into a
SIGSEGV crash — exactly the "oracle" signal the byte-by-byte attacker
listens for.

Buffer overflows are *not* prevented here: a write that stays inside a
writable segment succeeds even if it tramples canaries, saved frame
pointers, or return addresses.  Detecting that is the protection schemes'
job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import SegmentationFault

#: Default virtual-address layout (loosely mirrors Linux x86-64).
CODE_BASE = 0x0000_0000_0040_0000
DATA_BASE = 0x0000_0000_0060_0000
HEAP_BASE = 0x0000_0000_0080_0000
TLS_BASE = 0x0000_7FFF_F000_0000
STACK_TOP = 0x0000_7FFF_FFFF_0000

#: Sentinel return address pushed below ``main``; ``ret`` to it exits.
EXIT_ADDRESS = 0x0000_DEAD_0000_0000

WORD_BYTES = 8
WORD_MASK = (1 << 64) - 1

#: A lane that can never match an address: ``base <= addr < limit`` is
#: false for every addr when base > limit.
_EMPTY_LANE = (1, 0, bytearray())


@dataclass
class Segment:
    """One contiguous mapped region."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size)
        elif len(self.data) != self.size:
            raise ValueError(f"segment {self.name}: data/size mismatch")

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address+length)`` lies inside the segment."""
        return self.base <= address and address + length <= self.end

    def clone(self) -> "Segment":
        """Deep copy (fork)."""
        return Segment(
            self.name,
            self.base,
            self.size,
            self.readable,
            self.writable,
            self.executable,
            bytearray(self.data),
        )


class Memory:
    """The full address space of one process."""

    def __init__(self) -> None:
        self._segments: Dict[str, Segment] = {}
        #: Sorted list for address lookup; rebuilt on (rare) mapping changes.
        self._sorted: List[Segment] = []
        #: Most-recently-hit segment (the stack, almost always) — a fast
        #: path that roughly halves simulated-memory lookup cost.
        self._hot: Optional[Segment] = None
        #: Fast lanes: ``(base, end, data)`` of the last segment hit by a
        #: word/byte read (``_rlane``) or write (``_wlane``).  A lane is
        #: only installed after a full ``_locate`` has proven the segment
        #: readable/writable, and segment permissions are immutable after
        #: mapping, so accesses that stay inside the lane can skip the
        #: permission re-check entirely.  Reset whenever the mapping
        #: changes (``map_segment``).
        self._rlane = _EMPTY_LANE
        self._wlane = _EMPTY_LANE

    # -- mapping -----------------------------------------------------------

    def map_segment(self, segment: Segment) -> Segment:
        """Install a segment; overlapping an existing one is an error."""
        for existing in self._segments.values():
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(
                    f"segment {segment.name} overlaps {existing.name}"
                )
        self._segments[segment.name] = segment
        self._sorted = sorted(self._segments.values(), key=lambda s: s.base)
        self._rlane = _EMPTY_LANE
        self._wlane = _EMPTY_LANE
        return segment

    def segment(self, name: str) -> Segment:
        """Look a segment up by name."""
        return self._segments[name]

    def has_segment(self, name: str) -> bool:
        """True if a segment with ``name`` is mapped."""
        return name in self._segments

    def segments(self) -> Iterator[Segment]:
        """Iterate over segments in address order."""
        return iter(self._sorted)

    def find(self, address: int) -> Optional[Segment]:
        """Return the segment containing ``address``, or ``None``."""
        for segment in self._sorted:
            if segment.base <= address < segment.end:
                return segment
        return None

    # -- access ------------------------------------------------------------

    def _locate(self, address: int, length: int, access: str, *, write: bool) -> Segment:
        hot = self._hot
        if hot is not None and hot.contains(address, length):
            segment = hot
        else:
            segment = self.find(address)
            if segment is None or not segment.contains(address, length):
                raise SegmentationFault(address, access)
            self._hot = segment
        if write and not segment.writable:
            raise SegmentationFault(address, "write to read-only segment")
        if not write and not segment.readable:
            raise SegmentationFault(address, "read of unreadable segment")
        return segment

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes."""
        segment = self._locate(address, length, "read", write=False)
        self._rlane = (segment.base, segment.end, segment.data)
        offset = address - segment.base
        return bytes(segment.data[offset : offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes; may freely corrupt stack contents."""
        segment = self._locate(address, len(data), "write", write=True)
        self._wlane = (segment.base, segment.end, segment.data)
        offset = address - segment.base
        segment.data[offset : offset + len(data)] = data

    def read_word(self, address: int) -> int:
        """Read a 64-bit little-endian word."""
        base, end, data = self._rlane
        if base <= address and address + 8 <= end:
            offset = address - base
            return int.from_bytes(data[offset : offset + 8], "little")
        segment = self._locate(address, WORD_BYTES, "read", write=False)
        self._rlane = (segment.base, segment.end, segment.data)
        offset = address - segment.base
        return int.from_bytes(segment.data[offset : offset + 8], "little")

    def write_word(self, address: int, value: int) -> None:
        """Write a 64-bit little-endian word."""
        base, end, data = self._wlane
        if base <= address and address + 8 <= end:
            offset = address - base
            data[offset : offset + 8] = (value & WORD_MASK).to_bytes(8, "little")
            return
        segment = self._locate(address, WORD_BYTES, "write", write=True)
        self._wlane = (segment.base, segment.end, segment.data)
        offset = address - segment.base
        segment.data[offset : offset + 8] = (value & WORD_MASK).to_bytes(8, "little")

    def read_dword(self, address: int) -> int:
        """Read a 32-bit little-endian word (for 32-bit split canaries)."""
        base, end, data = self._rlane
        if base <= address and address + 4 <= end:
            offset = address - base
            return int.from_bytes(data[offset : offset + 4], "little")
        return int.from_bytes(self.read(address, 4), "little")

    def write_dword(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        base, end, data = self._wlane
        if base <= address and address + 4 <= end:
            offset = address - base
            data[offset : offset + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")
            return
        self.write(address, (value & 0xFFFF_FFFF).to_bytes(4, "little"))

    def read_byte(self, address: int) -> int:
        """Read one byte."""
        base, end, data = self._rlane
        if base <= address < end:
            return data[address - base]
        return self.read(address, 1)[0]

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        base, end, data = self._wlane
        if base <= address < end:
            data[address - base] = value & 0xFF
            return
        self.write(address, bytes([value & 0xFF]))

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (not including the NUL)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_byte(address + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        return bytes(out)

    # -- lifecycle ----------------------------------------------------------

    def clone(self) -> "Memory":
        """Deep copy of the whole address space (fork semantics)."""
        copy = Memory()
        for segment in self._segments.values():
            copy.map_segment(segment.clone())
        return copy


#: Maximum ASLR slide per segment: 256 pages — coarse-grained, like the
#: commodity ASLR the paper's §VII-B calls "easily broken" (deliberately),
#: and small enough that no slide can push one segment into its
#: neighbour's 2 MB guard gap.
ASLR_SLIDE_PAGES = 1 << 8
PAGE = 0x1000


def standard_memory(
    *,
    stack_size: int = 0x40000,
    heap_size: int = 0x40000,
    data_size: int = 0x20000,
    tls_size: int = 0x1000,
    aslr=None,
) -> Memory:
    """Build a memory with the conventional segment layout.

    The code segment is not included: the loader maps it from the binary
    image (read+execute, not writable).

    ``aslr`` may be an :class:`~repro.crypto.random.EntropySource`; each
    segment base then slides by an independent page-aligned offset, the
    coarse-grained address-space randomization of §VII-B.  Consumers must
    locate segments by name, never by the layout constants.
    """

    def slide() -> int:
        if aslr is None:
            return 0
        return aslr.randrange(ASLR_SLIDE_PAGES) * PAGE

    memory = Memory()
    memory.map_segment(Segment("data", DATA_BASE + slide(), data_size))
    memory.map_segment(Segment("heap", HEAP_BASE + slide(), heap_size))
    memory.map_segment(Segment("tls", TLS_BASE + slide(), tls_size))
    memory.map_segment(
        Segment("stack", STACK_TOP - slide() - stack_size, stack_size)
    )
    return memory
