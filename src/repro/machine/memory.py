"""Byte-addressable segmented process memory, backed by COW pages.

A process image maps a handful of segments (code, data, heap, stack, TLS)
into a flat 64-bit address space.  Reads and writes honour segment
permissions; touching an unmapped address raises
:class:`~repro.errors.SegmentationFault`, which the kernel converts into a
SIGSEGV crash — exactly the "oracle" signal the byte-by-byte attacker
listens for.

Buffer overflows are *not* prevented here: a write that stays inside a
writable segment succeeds even if it tramples canaries, saved frame
pointers, or return addresses.  Detecting that is the protection schemes'
job.

Page model
----------

Each segment is a run of fixed-size pages (:data:`PAGE` bytes; the last
page of an unaligned segment is short).  A page is either

* **frozen** — an immutable ``bytes`` object that may be shared with any
  number of cloned segments (and, for fresh zero pages, with every other
  zero page in the process), or
* **private** — a ``bytearray`` this segment alone may mutate.

Writes fault a frozen page into a private copy on first store
(``memory_page_faults_total``), so :meth:`Memory.clone` — the kernel's
``fork`` — costs O(pages touched since the last clone) instead of
O(address-space size): cloning freezes the parent's private pages
(O(dirty)) and hands the child references to the shared frozen pages.
Segments that are read-only for life (code, rodata mapped ``writable=
False``) can never own a private page, so their contents are shared
outright across every clone — no copy ever happens.

The word/byte fast lanes cache one *page* (proven readable/writable by a
full ``_locate``) instead of one whole segment; accesses that stay inside
the lane skip segment lookup, permission checks, and the COW fault check
entirely, which keeps both interpreter paths' view of memory bit-identical
to the pre-COW implementation.  Lanes are dropped whenever page ownership
can change under them: mapping, cloning, freezing, or a write fault that
re-materialises the lane's page.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

from .. import telemetry
from ..errors import SegmentationFault

#: Default virtual-address layout (loosely mirrors Linux x86-64).
CODE_BASE = 0x0000_0000_0040_0000
DATA_BASE = 0x0000_0000_0060_0000
HEAP_BASE = 0x0000_0000_0080_0000
TLS_BASE = 0x0000_7FFF_F000_0000
STACK_TOP = 0x0000_7FFF_FFFF_0000

#: Sentinel return address pushed below ``main``; ``ret`` to it exits.
EXIT_ADDRESS = 0x0000_DEAD_0000_0000

WORD_BYTES = 8
WORD_MASK = (1 << 64) - 1

#: COW page granularity.  4 KB mirrors the hardware page the real fork's
#: copy-on-write operates on.
PAGE = 0x1000
PAGE_SHIFT = 12

#: The one all-zero page every freshly mapped full page references.
_ZERO_PAGE = bytes(PAGE)

#: A lane that can never match an address: ``base <= addr < limit`` is
#: false for every addr when base > limit.
_EMPTY_LANE = (1, 0, bytearray())

#: Env knob: ``REPRO_COW_FORK=0`` restores eager deep-copy clones (the
#: pre-page implementation's behaviour) for differential testing.
_COW_ENV = "REPRO_COW_FORK"


def cow_enabled() -> bool:
    """True unless ``REPRO_COW_FORK=0`` forces eager deep-copy clones."""
    return os.environ.get(_COW_ENV, "1") != "0"


class Segment:
    """One contiguous mapped region, stored as COW pages.

    The constructor signature matches the historical dataclass: ``data``
    (when given) must be exactly ``size`` bytes and provides the initial
    contents; otherwise the segment starts zeroed — at page granularity
    that means every full page references the single shared zero page,
    so mapping a large segment allocates almost nothing.
    """

    __slots__ = (
        "name", "base", "size",
        "readable", "writable", "executable",
        "_source", "_private",
    )

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        readable: bool = True,
        writable: bool = True,
        executable: bool = False,
        data: Optional[bytearray] = None,
    ) -> None:
        self.name = name
        self.base = base
        self.size = size
        self.readable = readable
        self.writable = writable
        self.executable = executable
        if data:
            if len(data) != size:
                raise ValueError(f"segment {name}: data/size mismatch")
            pages = []
            view = memoryview(data)
            for start in range(0, size, PAGE):
                chunk = bytes(view[start : start + PAGE])
                pages.append(_ZERO_PAGE if chunk == _ZERO_PAGE else chunk)
            self._source: Tuple[bytes, ...] = tuple(pages)
        else:
            full, tail = divmod(size, PAGE)
            pages = [_ZERO_PAGE] * full
            if tail:
                pages.append(bytes(tail))
            self._source = tuple(pages)
        #: Pages written since construction: ``bytearray`` entries are
        #: exclusively ours; ``bytes`` entries were frozen by a clone and
        #: may be shared with children.
        self._private: Dict[int, "bytes | bytearray"] = {}

    # -- geometry ----------------------------------------------------------

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    @property
    def page_count(self) -> int:
        """Number of pages backing this segment."""
        return len(self._source)

    @property
    def private_pages(self) -> int:
        """Pages materialised (or inherited as frozen overlays) by writes."""
        return len(self._private)

    @property
    def immutable(self) -> bool:
        """True for read-only-for-life segments: every clone shares them
        outright, no page of theirs can ever be copied."""
        return not self.writable

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address+length)`` lies inside the segment."""
        return self.base <= address and address + length <= self.end

    # -- page access -------------------------------------------------------

    def page(self, index: int) -> "bytes | bytearray":
        """Current contents of page ``index`` (frozen or private)."""
        overlay = self._private.get(index)
        return self._source[index] if overlay is None else overlay

    def writable_page(self, index: int) -> bytearray:
        """Page ``index`` as a mutable buffer, faulting a private copy in
        on first store (the COW write fault)."""
        page = self._private.get(index)
        if type(page) is bytearray:
            return page
        # First store since the last freeze: materialise a private copy
        # of whatever the segment currently reads (frozen overlay if one
        # exists, the original source page otherwise).
        page = bytearray(self._source[index] if page is None else page)
        self._private[index] = page
        telemetry.count(
            "memory_page_faults_total",
            help="COW write faults (private page copies materialised)",
        )
        return page

    def freeze(self) -> None:
        """Convert every private page to an immutable shared one.

        O(pages dirtied since the last freeze); a segment with no private
        bytearrays is already fully shareable and this is a no-op.  Any
        cached buffer reference (fast lane) into this segment is stale
        after freezing — the owner must drop its lanes.
        """
        frozen = 0
        for index, page in self._private.items():
            if type(page) is bytearray:
                self._private[index] = bytes(page)
                frozen += 1
        if frozen:
            telemetry.count(
                "memory_pages_frozen_total",
                help="private pages frozen for sharing at clone/snapshot",
            )

    # -- whole-segment views -----------------------------------------------

    def tobytes(self) -> bytes:
        """The full segment contents as one immutable byte string."""
        if not self._private:
            return b"".join(self._source)
        return b"".join(self.page(i) for i in range(len(self._source)))

    @property
    def data(self) -> bytes:
        """Materialised contents (compatibility view; prefer
        :meth:`tobytes`).  Read-only: mutations must go through
        :class:`Memory` so COW faults and fast lanes stay coherent."""
        return self.tobytes()

    # -- span access (page-crossing reads/writes) --------------------------

    def read_span(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at segment ``offset``, across pages."""
        index = offset >> PAGE_SHIFT
        start = offset - (index << PAGE_SHIFT)
        page = self.page(index)
        if start + length <= len(page):
            return bytes(page[start : start + length])
        parts = []
        remaining = length
        while remaining:
            take = min(len(page) - start, remaining)
            parts.append(page[start : start + take])
            remaining -= take
            index += 1
            start = 0
            if remaining:
                page = self.page(index)
        return b"".join(bytes(part) for part in parts)

    def write_span(self, offset: int, data: bytes) -> None:
        """Write ``data`` at segment ``offset``, faulting pages as needed."""
        index = offset >> PAGE_SHIFT
        start = offset - (index << PAGE_SHIFT)
        cursor = 0
        remaining = len(data)
        while remaining:
            page = self.writable_page(index)
            take = min(len(page) - start, remaining)
            page[start : start + take] = data[cursor : cursor + take]
            cursor += take
            remaining -= take
            index += 1
            start = 0

    # -- lifecycle ---------------------------------------------------------

    def clone(self) -> "Segment":
        """COW twin: O(pages dirtied here since the last clone).

        Freezes this segment's private pages so both twins share every
        page; the first write on either side faults in a private copy.
        The caller owning the fast lanes (:class:`Memory`) must drop them
        after cloning — freezing orphans any cached private buffer.
        """
        self.freeze()
        twin = Segment.__new__(Segment)
        twin.name = self.name
        twin.base = self.base
        twin.size = self.size
        twin.readable = self.readable
        twin.writable = self.writable
        twin.executable = self.executable
        twin._source = self._source
        twin._private = dict(self._private)
        telemetry.count(
            "memory_pages_shared_total",
            delta=self.page_count,
            help="pages shared (not copied) across segment clones",
        )
        return twin

    def clone_eager(self) -> "Segment":
        """Deep copy (the pre-COW fork): every page duplicated up front."""
        return Segment(
            self.name,
            self.base,
            self.size,
            self.readable,
            self.writable,
            self.executable,
            bytearray(self.tobytes()),
        )

    def __repr__(self) -> str:
        perms = "".join(
            flag if on else "-"
            for flag, on in (
                ("r", self.readable), ("w", self.writable),
                ("x", self.executable),
            )
        )
        return (
            f"Segment({self.name!r}, base={self.base:#x}, "
            f"size={self.size:#x}, {perms})"
        )


class Memory:
    """The full address space of one process."""

    def __init__(self) -> None:
        self._segments: Dict[str, Segment] = {}
        #: Sorted list for address lookup; rebuilt on (rare) mapping changes.
        self._sorted: List[Segment] = []
        #: Most-recently-hit segment (the stack, almost always) — a fast
        #: path that roughly halves simulated-memory lookup cost.
        self._hot: Optional[Segment] = None
        #: Fast lanes: ``(base, end, page)`` of the last *page* hit by a
        #: word/byte read (``_rlane``) or write (``_wlane``).  A lane is
        #: only installed after a full ``_locate`` has proven the segment
        #: readable/writable (and, for ``_wlane``, after the page was
        #: faulted private), so accesses that stay inside the lane skip
        #: the permission and COW checks entirely.  Dropped whenever page
        #: ownership can change: ``map_segment``, ``clone``, ``freeze``,
        #: or a write fault re-materialising the lane's page.
        self._rlane = _EMPTY_LANE
        self._wlane = _EMPTY_LANE

    # -- mapping -----------------------------------------------------------

    def map_segment(self, segment: Segment) -> Segment:
        """Install a segment; overlapping an existing one is an error."""
        for existing in self._segments.values():
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(
                    f"segment {segment.name} overlaps {existing.name}"
                )
        self._segments[segment.name] = segment
        self._sorted = sorted(self._segments.values(), key=lambda s: s.base)
        self._rlane = _EMPTY_LANE
        self._wlane = _EMPTY_LANE
        return segment

    def segment(self, name: str) -> Segment:
        """Look a segment up by name."""
        return self._segments[name]

    def has_segment(self, name: str) -> bool:
        """True if a segment with ``name`` is mapped."""
        return name in self._segments

    def segments(self) -> Iterator[Segment]:
        """Iterate over segments in address order."""
        return iter(self._sorted)

    def find(self, address: int) -> Optional[Segment]:
        """Return the segment containing ``address``, or ``None``."""
        for segment in self._sorted:
            if segment.base <= address < segment.end:
                return segment
        return None

    # -- access ------------------------------------------------------------

    def _locate(self, address: int, length: int, access: str, *, write: bool) -> Segment:
        hot = self._hot
        if hot is not None and hot.contains(address, length):
            segment = hot
        else:
            segment = self.find(address)
            if segment is None or not segment.contains(address, length):
                raise SegmentationFault(address, access)
            self._hot = segment
        if write and not segment.writable:
            raise SegmentationFault(address, "write to read-only segment")
        if not write and not segment.readable:
            raise SegmentationFault(address, "read of unreadable segment")
        return segment

    def _read_page(self, segment: Segment, address: int):
        """Resolve ``address`` to its page and install the read lane.

        Returns ``(page, lane_base)``; the lane covers exactly the page.
        """
        offset = address - segment.base
        index = offset >> PAGE_SHIFT
        page = segment.page(index)
        lane_base = segment.base + (index << PAGE_SHIFT)
        self._rlane = (lane_base, lane_base + len(page), page)
        return page, lane_base

    def _write_page(self, segment: Segment, address: int):
        """Fault ``address``'s page private and install the write lane.

        Also repoints (or drops) a read lane that cached the now-stale
        frozen copy of the same page.
        """
        offset = address - segment.base
        index = offset >> PAGE_SHIFT
        page = segment.writable_page(index)
        lane_base = segment.base + (index << PAGE_SHIFT)
        lane = (lane_base, lane_base + len(page), page)
        if self._rlane[0] == lane_base and self._rlane[2] is not page:
            self._rlane = lane
        self._wlane = lane
        return page, lane_base

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` raw bytes."""
        segment = self._locate(address, length, "read", write=False)
        offset = address - segment.base
        page, lane_base = self._read_page(segment, address)
        start = address - lane_base
        if start + length <= len(page):
            return bytes(page[start : start + length])
        return segment.read_span(offset, length)

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes; may freely corrupt stack contents."""
        segment = self._locate(address, len(data), "write", write=True)
        page, lane_base = self._write_page(segment, address)
        start = address - lane_base
        if start + len(data) <= len(page):
            page[start : start + len(data)] = data
            return
        # Page-straddling write: span writes fault pages in without the
        # lane fix-up, so any cached lane may now alias a stale frozen
        # page.  Drop both lanes (rare path; the next access re-primes).
        segment.write_span(address - segment.base, data)
        self.drop_lanes()

    def read_word(self, address: int) -> int:
        """Read a 64-bit little-endian word."""
        base, end, data = self._rlane
        if base <= address and address + 8 <= end:
            offset = address - base
            return int.from_bytes(data[offset : offset + 8], "little")
        segment = self._locate(address, WORD_BYTES, "read", write=False)
        page, lane_base = self._read_page(segment, address)
        start = address - lane_base
        if start + 8 <= len(page):
            return int.from_bytes(page[start : start + 8], "little")
        return int.from_bytes(
            segment.read_span(address - segment.base, 8), "little"
        )

    def write_word(self, address: int, value: int) -> None:
        """Write a 64-bit little-endian word."""
        base, end, data = self._wlane
        if base <= address and address + 8 <= end:
            offset = address - base
            data[offset : offset + 8] = (value & WORD_MASK).to_bytes(8, "little")
            return
        segment = self._locate(address, WORD_BYTES, "write", write=True)
        page, lane_base = self._write_page(segment, address)
        start = address - lane_base
        if start + 8 <= len(page):
            page[start : start + 8] = (value & WORD_MASK).to_bytes(8, "little")
            return
        segment.write_span(
            address - segment.base, (value & WORD_MASK).to_bytes(8, "little")
        )
        self.drop_lanes()

    def read_dword(self, address: int) -> int:
        """Read a 32-bit little-endian word (for 32-bit split canaries)."""
        base, end, data = self._rlane
        if base <= address and address + 4 <= end:
            offset = address - base
            return int.from_bytes(data[offset : offset + 4], "little")
        return int.from_bytes(self.read(address, 4), "little")

    def write_dword(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        base, end, data = self._wlane
        if base <= address and address + 4 <= end:
            offset = address - base
            data[offset : offset + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")
            return
        self.write(address, (value & 0xFFFF_FFFF).to_bytes(4, "little"))

    def read_byte(self, address: int) -> int:
        """Read one byte."""
        base, end, data = self._rlane
        if base <= address < end:
            return data[address - base]
        return self.read(address, 1)[0]

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        base, end, data = self._wlane
        if base <= address < end:
            data[address - base] = value & 0xFF
            return
        self.write(address, bytes([value & 0xFF]))

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (not including the NUL)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_byte(address + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        return bytes(out)

    # -- lifecycle ----------------------------------------------------------

    def drop_lanes(self) -> None:
        """Forget the cached fast-lane pages (ownership changed)."""
        self._rlane = _EMPTY_LANE
        self._wlane = _EMPTY_LANE

    def freeze(self) -> None:
        """Freeze every segment's private pages for sharing/serialization."""
        for segment in self._sorted:
            segment.freeze()
        self.drop_lanes()

    def clone(self, *, eager: Optional[bool] = None) -> "Memory":
        """Copy of the whole address space (fork semantics).

        COW by default: O(pages written since the last clone), with all
        untouched pages shared between parent and child.  ``eager=True``
        (or ``REPRO_COW_FORK=0`` in the environment) restores the
        historical deep copy — bit-identical behaviour, linear cost —
        for differential tests.
        """
        if eager is None:
            eager = not cow_enabled()
        copy = Memory()
        for segment in self._segments.values():
            copy.map_segment(
                segment.clone_eager() if eager else segment.clone()
            )
        if not eager:
            # Freezing orphaned any private page a lane may still cache.
            self.drop_lanes()
        return copy

    def page_stats(self) -> Dict[str, int]:
        """Aggregate page accounting (diagnostics, bench_fork gate)."""
        total = sum(segment.page_count for segment in self._sorted)
        private = sum(
            1
            for segment in self._sorted
            for page in segment._private.values()
            if type(page) is bytearray
        )
        overlays = sum(segment.private_pages for segment in self._sorted)
        return {
            "pages": total,
            "private_pages": private,
            "overlay_pages": overlays,
            "shared_pages": total - private,
        }


#: Maximum ASLR slide per segment: 256 pages — coarse-grained, like the
#: commodity ASLR the paper's §VII-B calls "easily broken" (deliberately),
#: and small enough that no slide can push one segment into its
#: neighbour's 2 MB guard gap.
ASLR_SLIDE_PAGES = 1 << 8


def standard_memory(
    *,
    stack_size: int = 0x40000,
    heap_size: int = 0x40000,
    data_size: int = 0x20000,
    tls_size: int = 0x1000,
    aslr=None,
) -> Memory:
    """Build a memory with the conventional segment layout.

    The code segment is not included: the loader maps it from the binary
    image (read+execute, not writable).

    ``aslr`` may be an :class:`~repro.crypto.random.EntropySource`; each
    segment base then slides by an independent page-aligned offset, the
    coarse-grained address-space randomization of §VII-B.  Consumers must
    locate segments by name, never by the layout constants.
    """

    def slide() -> int:
        if aslr is None:
            return 0
        return aslr.randrange(ASLR_SLIDE_PAGES) * PAGE

    memory = Memory()
    memory.map_segment(Segment("data", DATA_BASE + slide(), data_size))
    memory.map_segment(Segment("heap", HEAP_BASE + slide(), heap_size))
    memory.map_segment(Segment("tls", TLS_BASE + slide(), tls_size))
    memory.map_segment(
        Segment("stack", STACK_TOP - slide() - stack_size, stack_size)
    )
    return memory
